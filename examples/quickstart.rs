//! Quickstart: compile a benchmark, run it on a simulated machine, and
//! read the counters — the five-minute tour of the pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use biaslab_core::harness::Harness;
use biaslab_core::setup::ExperimentSetup;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{benchmark_by_name, InputSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick a benchmark from the miniature SPEC suite.
    let bench = benchmark_by_name("perlbench").expect("perlbench is in the suite");
    println!("benchmark: {} — {}", bench.name(), bench.description());

    // The harness compiles, links, loads and simulates, verifying every
    // run against the IR interpreter's reference outcome.
    let harness = Harness::new(bench);

    for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
        let setup = ExperimentSetup::default_on(MachineConfig::core2(), level);
        let m = harness.measure(&setup, InputSize::Test)?;
        println!(
            "\n== {level} on core2 ==\ncycles {:>10}   instructions {:>9}   CPI {:.3}",
            m.counters.cycles,
            m.counters.instructions,
            m.counters.cpi()
        );
        println!(
            "l1d misses {:>6}   mispredicts {:>8}   bank conflicts {:>6}",
            m.counters.l1d_misses, m.counters.mispredicts, m.counters.bank_conflicts
        );
    }

    println!("\nEvery measurement above was checksum-verified against the IR interpreter.");
    Ok(())
}
