//! The paper's story in one program: a researcher asks "is O3 beneficial?",
//! measures carefully in one setup, and gets an answer that another —
//! equally reasonable — setup contradicts. Then the fix: randomized setups
//! with a confidence interval.
//!
//! ```text
//! cargo run --release --example wrong_data
//! ```

use biaslab_core::harness::Harness;
use biaslab_core::randomize::{randomized_eval, RandomizedFactors};
use biaslab_core::report::fmt_speedup;
use biaslab_core::setup::{ExperimentSetup, LinkOrder};
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{benchmark_by_name, InputSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let harness = Harness::new(benchmark_by_name("sjeng").expect("in suite"));
    let machine = MachineConfig::o3cpu();
    let size = InputSize::Ref;

    println!("Question: is O3 beneficial over O2 for sjeng on the o3cpu model?\n");

    // --- The experiment, done "carefully", twice -------------------------
    // Researcher A's Makefile happens to hand the objects to the linker in
    // one order; the shell is nearly bare.
    let setup_a = ExperimentSetup::default_on(machine.clone(), OptLevel::O2)
        .with_link_order(LinkOrder::Random(3));
    // Researcher B keeps a longer $PATH (a ~3 KB environment). Neither
    // would think to report either fact.
    let setup_b = ExperimentSetup::default_on(machine.clone(), OptLevel::O2)
        .with_env(Environment::of_total_size(3000));

    for (who, setup) in [("researcher A", &setup_a), ("researcher B", &setup_b)] {
        let o2 = harness.measure(setup, size)?;
        let o3 = harness.measure(&setup.with_opt(OptLevel::O3), size)?;
        let speedup = o2.cycles() as f64 / o3.cycles() as f64;
        println!(
            "{who:13} measures O3 speedup {}  → concludes O3 {}",
            fmt_speedup(speedup),
            if speedup > 1.0 { "helps" } else { "hurts" },
        );
    }

    println!(
        "\nNeither did anything obviously wrong; the setups differ only in \
         environment size and link order.\n"
    );

    // --- The remedy: setup randomization ----------------------------------
    let eval = randomized_eval(
        &harness,
        &machine,
        OptLevel::O2,
        OptLevel::O3,
        RandomizedFactors::default(),
        24,
        2009,
        size,
    )?;
    println!(
        "randomized evaluation over 24 setups: mean speedup {:.4}, 95% CI [{:.4}, {:.4}]",
        eval.mean_speedup, eval.ci.lo, eval.ci.hi
    );
    println!(
        "verdict: {}",
        match eval.verdict() {
            Some(true) => "O3 helps (the whole interval is above 1)",
            Some(false) => "O3 hurts (the whole interval is below 1)",
            None => "cannot tell — the interval straddles 1, and that is the honest answer",
        }
    );
    Ok(())
}
