use biaslab_core::harness::Harness;
use biaslab_core::setup::{ExperimentSetup, LinkOrder};
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{benchmark_by_name, InputSize};

fn main() {
    for mach in [
        MachineConfig::o3cpu(),
        MachineConfig::core2(),
        MachineConfig::pentium4(),
    ] {
        for bname in ["perlbench", "hmmer", "mcf", "bzip2", "sphinx3"] {
            let h = Harness::new(benchmark_by_name(bname).unwrap());
            let base = ExperimentSetup::default_on(mach.clone(), OptLevel::O2);
            let mut speedups = vec![];
            for env in 0..24 {
                let env = if env == 0 {
                    Environment::new()
                } else {
                    Environment::of_total_size(env * 170)
                };
                let o2 = h
                    .measure(&base.with_env(env.clone()), InputSize::Ref)
                    .unwrap();
                let o3 = h
                    .measure(&base.with_env(env).with_opt(OptLevel::O3), InputSize::Ref)
                    .unwrap();
                speedups.push(o2.cycles() as f64 / o3.cycles() as f64);
            }
            let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
            let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
            let mut ls = vec![];
            for seed in 0..12 {
                let s = base.with_link_order(LinkOrder::Random(seed));
                let o2 = h.measure(&s, InputSize::Ref).unwrap();
                let o3 = h
                    .measure(&s.with_opt(OptLevel::O3), InputSize::Ref)
                    .unwrap();
                ls.push(o2.cycles() as f64 / o3.cycles() as f64);
            }
            let lmin = ls.iter().cloned().fold(f64::MAX, f64::min);
            let lmax = ls.iter().cloned().fold(f64::MIN, f64::max);
            println!(
                "{:9} {:10} env:[{:.4},{:.4}] {:5.2}%   link:[{:.4},{:.4}] {:5.2}%",
                mach.name,
                bname,
                min,
                max,
                100.0 * (max - min) / min,
                lmin,
                lmax,
                100.0 * (lmax - lmin) / lmin
            );
        }
    }
}
