//! Drill into *why* an environment-size effect exists using the causal
//! toolkit: intervene on the suspected mechanism (stack placement), run a
//! placebo (environment contents), and check that a hardware counter
//! mediates the effect.
//!
//! ```text
//! cargo run --release --example causal_analysis
//! ```

use biaslab_core::causal::{CausalExperiment, Intervention, Mediator};
use biaslab_core::report::sparkline;
use biaslab_core::setup::ExperimentSetup;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{benchmark_by_name, InputSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let harness =
        biaslab_core::harness::Harness::new(benchmark_by_name("perlbench").expect("in suite"));
    let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);

    println!("Observation: perlbench cycles change with the environment size.");
    println!("Hypothesis:  the environment moves the stack, and stack placement");
    println!("             decides L1D bank conflicts between the interpreter's");
    println!("             stack buffers and its tables.\n");

    let mut experiment = CausalExperiment::new(base, Intervention::StackShift, 512, 32);
    experiment.mediator = Mediator::BankConflicts;
    let report = experiment.run(&harness, InputSize::Ref)?;

    let cycles: Vec<f64> = report.curve.iter().map(|p| p.cycles as f64).collect();
    let conflicts: Vec<f64> = report
        .curve
        .iter()
        .map(|p| p.counters.bank_conflicts as f64)
        .collect();

    println!("dose-response (stack shift 0..512 bytes, environment untouched):");
    println!("  cycles         {}", sparkline(&cycles));
    println!("  bank conflicts {}", sparkline(&conflicts));
    println!(
        "\n  intervention effect : {:.3}% cycle spread",
        100.0 * report.effect
    );
    println!(
        "  placebo effect      : {:.5}% (same-size environment, different bytes)",
        100.0 * report.placebo_effect
    );
    if let Some(r) = report.mediator_correlation {
        println!("  mediator correlation: {r:.3} (bank conflicts vs cycles)");
    }
    println!(
        "\nVerdict: the stack-placement mechanism is {}.",
        if report.confirmed {
            "CONFIRMED"
        } else {
            "NOT confirmed"
        }
    );
    println!("The environment is innocent; where the loader puts the stack is not.");
    Ok(())
}
