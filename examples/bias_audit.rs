//! Audit an experiment for measurement bias: sweep the two "innocuous"
//! factors on every machine and report how much each one alone moves the
//! measured speedup — the check the paper argues every evaluation should
//! run, packaged as [`biaslab_core::audit::full_audit`].
//!
//! ```text
//! cargo run --release --example bias_audit [benchmark]
//! ```

use biaslab_core::audit::{full_audit, AuditConfig};
use biaslab_core::harness::Harness;
use biaslab_workloads::{benchmark_by_name, InputSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_owned());
    let bench = benchmark_by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}` (try gcc, perlbench, sjeng, …)"));
    let harness = Harness::new(bench);

    let config = AuditConfig {
        // Measurement-scale inputs: this is the audit you would publish.
        size: InputSize::Ref,
        ..AuditConfig::default()
    };
    let report = full_audit(&harness, &config)?;
    println!("{report}");
    println!(
        "Reading: `bias%` is how far the conclusion can move without touching \
         the system under test; `flips` marks factor values on both sides of 1.0."
    );
    Ok(())
}
