//! Where do the cycles go? Exact per-function profiles for every
//! benchmark — the question every performance study starts with, and the
//! numbers the paper warns can be skewed by the setup used to take them.
//!
//! ```text
//! cargo run --release --example profile_hotspots
//! ```

use biaslab_core::harness::Harness;
use biaslab_toolchain::load::Loader;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{Machine, MachineConfig};
use biaslab_workloads::{suite, InputSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<12} {:<16} {:>7}  (O2, core2, test inputs)\n",
        "benchmark", "hottest fn", "share"
    );
    for bench in suite() {
        let name = bench.name();
        let harness = Harness::new(bench);
        let order: Vec<usize> = (0..harness.object_names().len()).collect();
        let exe = harness.executable(OptLevel::O2, &order, 0)?;
        let process = Loader::new().load(
            &exe,
            &biaslab_toolchain::load::Environment::new(),
            harness.benchmark().args(InputSize::Test),
        )?;
        let (result, profile) = Machine::new(MachineConfig::core2()).run_profiled(&exe, process)?;
        let expected = harness.benchmark().expected(InputSize::Test);
        assert_eq!(result.checksum, expected.checksum, "{name}: verification");

        let hottest = profile.entries.first().expect("something executed");
        println!(
            "{:<12} {:<16} {:>6.1}%",
            name,
            hottest.name,
            100.0 * hottest.cycles as f64 / profile.total_cycles() as f64
        );
    }
    println!("\nEach profile is exact (every retired instruction attributed), and each");
    println!("run was checksum-verified. Try `biaslab run <bench> --profile` for detail.");
    Ok(())
}
