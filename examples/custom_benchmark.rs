//! Bring your own workload: build a program against the IR builder API,
//! wrap it in the measurement harness, and audit it for bias — what a
//! downstream user does to test *their* system instead of the bundled
//! miniatures.
//!
//! The program is a toy key-value store doing a zipf-ish mix of gets and
//! puts over an open-addressing table, with a stack-resident write buffer.
//!
//! ```text
//! cargo run --release --example custom_benchmark
//! ```

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::codegen::compile;
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::link::Linker;
use biaslab_toolchain::load::{Environment, Loader};
use biaslab_toolchain::opt::{optimize, OptLevel};
use biaslab_toolchain::{Module, ModuleBuilder};
use biaslab_uarch::{Machine, MachineConfig};

const SLOTS: u64 = 2048;

fn build_kv_store() -> Module {
    let mut mb = ModuleBuilder::new();
    let table = mb.global(Global::zeroed("kv_table", (SLOTS * 16) as u32));

    let put = mb.function("kv_put", 2, false, |fb| {
        let key = fb.param(0);
        let value = fb.param(1);
        let kv = fb.get(key);
        let hashed = fb.mul_imm(kv, 0x9E37_79B9);
        let slot = fb.bin_imm(AluOp::And, hashed, (SLOTS - 1) as i64);
        let off = fb.mul_imm(slot, 16);
        let base = fb.addr_global(table);
        let addr = fb.add(base, off);
        let kv2 = fb.get(key);
        fb.store(Width::B8, addr, 0, kv2);
        let vv = fb.get(value);
        fb.store(Width::B8, addr, 8, vv);
        fb.ret(None);
    });

    let get = mb.function("kv_get", 1, true, |fb| {
        let key = fb.param(0);
        let kv = fb.get(key);
        let hashed = fb.mul_imm(kv, 0x9E37_79B9);
        let slot = fb.bin_imm(AluOp::And, hashed, (SLOTS - 1) as i64);
        let off = fb.mul_imm(slot, 16);
        let base = fb.addr_global(table);
        let addr = fb.add(base, off);
        let stored = fb.load(Width::B8, addr, 0);
        let want = fb.get(key);
        let out = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(out, z);
        fb.if_then(Cond::Eq, stored, want, |fb| {
            let kv3 = fb.get(key);
            let hashed = fb.mul_imm(kv3, 0x9E37_79B9);
            let slot = fb.bin_imm(AluOp::And, hashed, (SLOTS - 1) as i64);
            let off = fb.mul_imm(slot, 16);
            let base = fb.addr_global(table);
            let addr = fb.add(base, off);
            let v = fb.load(Width::B8, addr, 8);
            fb.set(out, v);
        });
        let r = fb.get(out);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let wbuf = fb.local_buffer(512); // stack-resident write combine buffer
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            let key = fb.mul_imm(iv, 7);
            let key = fb.bin_imm(AluOp::And, key, 0xFFFF);
            let a = fb.get(acc);
            let val = fb.bin(AluOp::Xor, a, key);
            fb.call_void(put, &[key, val]);
            // Buffer the write locally too (the stack-hot structure).
            let base = fb.addr(wbuf);
            let slot = fb.bin_imm(AluOp::And, key, 63);
            let off = fb.mul_imm(slot, 8);
            let addr = fb.add(base, off);
            fb.store(Width::B8, addr, 0, val);
            let got = fb.call(get, &[key]);
            let a2 = fb.get(acc);
            let mixed = fb.add(a2, got);
            fb.set(acc, mixed);
            fb.chk(mixed);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("kv module is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = build_kv_store();

    // Reference semantics via the interpreter.
    let mut interp = biaslab_toolchain::interp::Interpreter::new(&module);
    let expected = interp.call_by_name("main", &[5000])?;
    println!(
        "reference: checksum {:#x} over {} IR ops",
        expected.checksum, expected.ops_executed
    );

    // Compile + simulate at both levels, under two environment sizes.
    for level in [OptLevel::O2, OptLevel::O3] {
        let exe = Linker::new().link(&compile(&optimize(&module, level), level), "main")?;
        for env_bytes in [0u32, 1960] {
            let env = if env_bytes == 0 {
                Environment::new()
            } else {
                Environment::of_total_size(env_bytes)
            };
            let process = Loader::new().load(&exe, &env, &[5000])?;
            let result = Machine::new(MachineConfig::core2()).run(&exe, process)?;
            assert_eq!(
                result.checksum, expected.checksum,
                "simulation must match reference"
            );
            println!(
                "{level} env={env_bytes:>5}B  cycles {:>9}  bank conflicts {:>6}",
                result.counters.cycles, result.counters.bank_conflicts
            );
        }
    }
    println!("\nSame binary, same answer, different cycles: audit before you conclude.");
    Ok(())
}
