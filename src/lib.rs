//! Umbrella crate re-exporting the whole `biaslab` workspace.
//!
//! See the individual crates for full documentation;
//! `biaslab_core` is the paper's contribution, the rest are substrates.

pub use biaslab_core as core;
pub use biaslab_isa as isa;
pub use biaslab_survey as survey;
pub use biaslab_toolchain as toolchain;
pub use biaslab_uarch as uarch;
pub use biaslab_workloads as workloads;
