//! IR-building helpers shared by the benchmark kernels.

use biaslab_isa::{AluOp, Width};
use biaslab_toolchain::ir::LocalId;
use biaslab_toolchain::ir::Val;
use biaslab_toolchain::FunctionBuilder;

/// Multiplier of the splitmix-style generator used for in-IR data
/// generation (and by the Rust-side table baker, so both agree).
pub const LCG_MUL: u64 = 6364136223846793005;
/// Increment of the generator.
pub const LCG_INC: u64 = 1442695040888963407;

/// Allocates a scalar local initialized to `value` — the usual way to
/// provide a loop bound to [`FunctionBuilder::counted_loop`].
pub fn const_local(fb: &mut FunctionBuilder<'_>, value: u64) -> LocalId {
    let l = fb.local_scalar();
    let v = fb.const_(value);
    fb.set(l, v);
    l
}

/// `base + idx * elem` — the address of element `idx`.
pub fn array_addr(fb: &mut FunctionBuilder<'_>, base: Val, idx: Val, elem: i64) -> Val {
    let off = fb.mul_imm(idx, elem);
    fb.add(base, off)
}

/// Loads element `idx` of an array of `elem`-byte elements.
pub fn load_idx(fb: &mut FunctionBuilder<'_>, base: Val, idx: Val, elem: i64, width: Width) -> Val {
    let addr = array_addr(fb, base, idx, elem);
    fb.load(width, addr, 0)
}

/// Stores `value` into element `idx` of an array of `elem`-byte elements.
pub fn store_idx(
    fb: &mut FunctionBuilder<'_>,
    base: Val,
    idx: Val,
    elem: i64,
    width: Width,
    value: Val,
) {
    let addr = array_addr(fb, base, idx, elem);
    fb.store(width, addr, 0, value);
}

/// One step of the data generator: returns `state * LCG_MUL + LCG_INC`.
pub fn lcg_step(fb: &mut FunctionBuilder<'_>, state: Val) -> Val {
    let m = fb.const_(LCG_MUL);
    let p = fb.mul(state, m);
    let c = fb.const_(LCG_INC);
    fb.add(p, c)
}

/// The Rust-side twin of [`lcg_step`], used to bake initialized globals.
#[must_use]
pub fn lcg_step_host(state: u64) -> u64 {
    state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

/// Generates `n` pseudo-random words from `seed` (host side).
#[must_use]
pub fn lcg_words(seed: u64, n: usize) -> Vec<u64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = lcg_step_host(s);
            s
        })
        .collect()
}

/// Branch-free signed `min(a, b)`: `b + (a <s b) * (a - b)`.
pub fn emit_min(fb: &mut FunctionBuilder<'_>, a: Val, b: Val) -> Val {
    let lt = fb.bin(AluOp::Slt, a, b);
    let diff = fb.sub(a, b);
    let scaled = fb.mul(lt, diff);
    fb.add(b, scaled)
}

/// Branch-free absolute difference `|a - b|` for unsigned-magnitude inputs
/// below `2^63`: `(a<b ? b-a : a-b)`.
pub fn emit_absdiff(fb: &mut FunctionBuilder<'_>, a: Val, b: Val) -> Val {
    let lt = fb.bin(AluOp::Slt, a, b);
    let ab = fb.sub(a, b);
    let ba = fb.sub(b, a);
    // lt ? ba : ab  →  ab + lt*(ba-ab)
    let d = fb.sub(ba, ab);
    let scaled = fb.mul(lt, d);
    fb.add(ab, scaled)
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;
    use biaslab_toolchain::ModuleBuilder;

    use super::*;

    #[test]
    fn lcg_host_and_ir_agree() {
        let mut mb = ModuleBuilder::new();
        mb.function("g", 1, true, |fb| {
            let s = fb.param(0);
            let sv = fb.get(s);
            let next = lcg_step(fb, sv);
            fb.ret(Some(next));
        });
        let m = mb.finish().unwrap();
        for seed in [0u64, 1, 42, u64::MAX] {
            let got = Interpreter::new(&m).call_by_name("g", &[seed]).unwrap();
            assert_eq!(got.return_value, Some(lcg_step_host(seed)), "seed {seed}");
        }
    }

    #[test]
    fn lcg_words_deterministic_and_seed_sensitive() {
        assert_eq!(lcg_words(7, 5), lcg_words(7, 5));
        assert_ne!(lcg_words(7, 5), lcg_words(8, 5));
        assert_eq!(lcg_words(7, 5).len(), 5);
    }

    #[test]
    fn array_helpers_roundtrip() {
        use biaslab_toolchain::ir::Global;
        let mut mb = ModuleBuilder::new();
        let g = mb.global(Global::zeroed("arr", 64));
        mb.function("t", 0, true, |fb| {
            let base = fb.addr_global(g);
            let idx = fb.const_(3);
            let v = fb.const_(99);
            store_idx(fb, base, idx, 8, Width::B8, v);
            let idx2 = fb.const_(3);
            let r = load_idx(fb, base, idx2, 8, Width::B8);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        assert_eq!(out.return_value, Some(99));
    }

    #[test]
    fn emit_min_selects_smaller_signed() {
        let mut mb = ModuleBuilder::new();
        mb.function("m", 2, true, |fb| {
            let a = fb.param(0);
            let b = fb.param(1);
            let av = fb.get(a);
            let bv = fb.get(b);
            let r = emit_min(fb, av, bv);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        for (a, b, want) in [
            (3u64, 5u64, 3u64),
            (5, 3, 3),
            (7, 7, 7),
            ((-4i64) as u64, 2, (-4i64) as u64),
        ] {
            let out = Interpreter::new(&m).call_by_name("m", &[a, b]).unwrap();
            assert_eq!(out.return_value, Some(want), "min({a},{b})");
        }
    }
}
