//! The benchmark registry.

use std::collections::HashMap;
use std::sync::Mutex;

use biaslab_toolchain::interp::Interpreter;
use biaslab_toolchain::Module;

use crate::kernels;

/// The input scale of a run: `Test` finishes in tens of thousands of
/// simulated instructions (CI-friendly); `Ref` is the measurement size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSize {
    /// Small functional-test input.
    Test,
    /// Measurement-scale input.
    Ref,
}

/// The semantically-required outcome of a benchmark run, computed by the
/// reference interpreter: any compiled configuration must reproduce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expected {
    /// Final checksum.
    pub checksum: u64,
    /// Entry function's return value.
    pub return_value: u64,
    /// IR operations the reference run executed (a toolchain-independent
    /// measure of work).
    pub ir_ops: u64,
}

/// One miniature SPEC benchmark: an IR module plus its inputs and
/// (lazily computed) expected outcomes.
#[derive(Debug)]
pub struct Benchmark {
    name: &'static str,
    description: &'static str,
    module: Module,
    test_args: Vec<u64>,
    ref_args: Vec<u64>,
    expected: Mutex<HashMap<InputSize, Expected>>,
}

impl Benchmark {
    fn new(
        name: &'static str,
        description: &'static str,
        module: Module,
        test_args: Vec<u64>,
        ref_args: Vec<u64>,
    ) -> Benchmark {
        Benchmark {
            name,
            description,
            module,
            test_args,
            ref_args,
            expected: Mutex::new(HashMap::new()),
        }
    }

    /// The SPEC-style benchmark name, e.g. `"perlbench"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the modelled behaviour.
    #[must_use]
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The benchmark's IR module.
    #[must_use]
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The entry function's symbol name.
    #[must_use]
    pub fn entry(&self) -> &'static str {
        "main"
    }

    /// The entry arguments for the given input size.
    #[must_use]
    pub fn args(&self, size: InputSize) -> &[u64] {
        match size {
            InputSize::Test => &self.test_args,
            InputSize::Ref => &self.ref_args,
        }
    }

    /// The reference outcome for the given input size, computed once with
    /// the IR interpreter and cached.
    ///
    /// # Panics
    ///
    /// Panics if the reference interpretation itself fails — that is a bug
    /// in the kernel, not an experimental condition.
    #[must_use]
    pub fn expected(&self, size: InputSize) -> Expected {
        let mut cache = self.expected.lock().expect("expected-cache mutex");
        if let Some(e) = cache.get(&size) {
            return *e;
        }
        let mut interp = Interpreter::new(&self.module);
        let out = interp
            .call_by_name(self.entry(), self.args(size))
            .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", self.name));
        let e = Expected {
            checksum: out.checksum,
            return_value: out.return_value.unwrap_or(0),
            ir_ops: out.ops_executed,
        };
        cache.insert(size, e);
        e
    }
}

/// Builds the full 12-benchmark suite, in the paper's listing order.
#[must_use]
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "perlbench",
            "hash table + bytecode-dispatch interpreter",
            kernels::perlbench(),
            vec![8],
            vec![90],
        ),
        Benchmark::new(
            "bzip2",
            "counting sort + move-to-front transform",
            kernels::bzip2(),
            vec![1],
            vec![3],
        ),
        Benchmark::new(
            "gcc",
            "expression-tree construction and constant folding",
            kernels::gcc(),
            vec![2],
            vec![14],
        ),
        Benchmark::new(
            "mcf",
            "pointer-chasing cost relaxation over a network",
            kernels::mcf(),
            vec![2],
            vec![10],
        ),
        Benchmark::new(
            "milc",
            "fixed-point lattice arithmetic",
            kernels::milc(),
            vec![1],
            vec![5],
        ),
        Benchmark::new(
            "gobmk",
            "board scanning with recursive flood fill",
            kernels::gobmk(),
            vec![1],
            vec![13],
        ),
        Benchmark::new(
            "hmmer",
            "dynamic-programming matrix fill on stack rows",
            kernels::hmmer(),
            vec![5],
            vec![48],
        ),
        Benchmark::new(
            "sjeng",
            "recursive game search + transposition table",
            kernels::sjeng(),
            vec![1],
            vec![8],
        ),
        Benchmark::new(
            "libquantum",
            "streaming bit manipulation over a register file",
            kernels::libquantum(),
            vec![1],
            vec![3],
        ),
        Benchmark::new(
            "h264ref",
            "sum-of-absolute-differences motion search",
            kernels::h264ref(),
            vec![1],
            vec![2],
        ),
        Benchmark::new(
            "lbm",
            "double-buffered stencil relaxation",
            kernels::lbm(),
            vec![1],
            vec![4],
        ),
        Benchmark::new(
            "sphinx3",
            "dot-product scoring against an active list",
            kernels::sphinx3(),
            vec![1],
            vec![6],
        ),
    ]
}

/// Looks up one benchmark by name.
#[must_use]
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name() == name)
}
