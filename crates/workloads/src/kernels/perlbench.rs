//! `perlbench` — a hash table plus a bytecode-dispatch interpreter.
//!
//! The real 400.perlbench spends its time in the Perl VM's opcode dispatch
//! and hash tables. The miniature runs a 128-opcode program repeatedly: an
//! accumulator flows through add/xor/mul/shift opcodes, two opcodes hit an
//! open-addressing hash table in the data segment, and every step spills
//! the accumulator into a ring buffer **on the stack** — the buffer whose
//! cache sets move with the environment size, making this the headline
//! env-bias benchmark (the paper's Figures 1–3 are perlbench).

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{array_addr, const_local, lcg_words, load_idx};

const PROG_LEN: u64 = 256;
const HTAB_SLOTS: u64 = 4096;
const RING_BYTES: u32 = 4096; // 256 × 8-byte slots on the stack

/// Builds the perlbench module.
#[must_use]
pub fn perlbench() -> Module {
    let mut mb = ModuleBuilder::new();

    let prog = mb.global(Global::from_words(
        "prog",
        &lcg_words(0x9E10, PROG_LEN as usize),
    ));
    // Two words per slot: key, value. Key 0 = empty.
    let htab = mb.global(Global::zeroed("htab", (HTAB_SLOTS * 16) as u32));
    // Per-opcode handler weights, read on every dispatch.
    let optable = mb.global(Global::from_words("optable", &lcg_words(0x09, 8)));

    // hash(k) = (k * LCG_MUL) >> 40, folded into the table mask.
    let hash = mb.function("op_hash", 1, true, |fb| {
        let k = fb.param(0);
        let kv = fb.get(k);
        let m = fb.const_(crate::util::LCG_MUL);
        let p = fb.mul(kv, m);
        let s = fb.bin_imm(AluOp::Srl, p, 40);
        let masked = fb.bin_imm(AluOp::And, s, (HTAB_SLOTS - 1) as i64);
        fb.ret(Some(masked));
    });

    // ht_insert(key, value): linear probing; overwrites matching keys.
    let insert = mb.function("ht_insert", 2, false, |fb| {
        let key = fb.param(0);
        let value = fb.param(1);
        let idx = fb.local_scalar();
        let kv = fb.get(key);
        let h = fb.call(hash, &[kv]);
        fb.set(idx, h);
        let done = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(done, z);
        fb.while_loop(
            |fb| {
                let d = fb.get(done);
                let zero = fb.const_(0);
                (Cond::Eq, d, zero)
            },
            |fb| {
                let base = fb.addr_global(htab);
                let i = fb.get(idx);
                let slot = array_addr(fb, base, i, 16);
                let k = fb.load(Width::B8, slot, 0);
                let want = fb.get(key);
                // Empty or matching slot: store and finish.
                let empty = fb.bin_imm(AluOp::Seq, k, 0);
                let matches = fb.bin(AluOp::Seq, k, want);
                let stop = fb.bin(AluOp::Or, empty, matches);
                let zero = fb.const_(0);
                fb.if_then_else(
                    Cond::Ne,
                    stop,
                    zero,
                    |fb| {
                        let base = fb.addr_global(htab);
                        let i = fb.get(idx);
                        let slot = array_addr(fb, base, i, 16);
                        let kk = fb.get(key);
                        fb.store(Width::B8, slot, 0, kk);
                        let vv = fb.get(value);
                        fb.store(Width::B8, slot, 8, vv);
                        let one = fb.const_(1);
                        fb.set(done, one);
                    },
                    |fb| {
                        let i = fb.get(idx);
                        let next = fb.add_imm(i, 1);
                        let wrapped = fb.bin_imm(AluOp::And, next, (HTAB_SLOTS - 1) as i64);
                        fb.set(idx, wrapped);
                    },
                );
            },
        );
        fb.ret(None);
    });

    // ht_lookup(key) -> value (0 when absent).
    let lookup = mb.function("ht_lookup", 1, true, |fb| {
        let key = fb.param(0);
        let idx = fb.local_scalar();
        let kv = fb.get(key);
        let h = fb.call(hash, &[kv]);
        fb.set(idx, h);
        let result = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(result, z);
        let probing = fb.local_scalar();
        let one = fb.const_(1);
        fb.set(probing, one);
        fb.while_loop(
            |fb| {
                let p = fb.get(probing);
                let zero = fb.const_(0);
                (Cond::Ne, p, zero)
            },
            |fb| {
                let base = fb.addr_global(htab);
                let i = fb.get(idx);
                let slot = array_addr(fb, base, i, 16);
                let k = fb.load(Width::B8, slot, 0);
                let zero = fb.const_(0);
                fb.if_then_else(
                    Cond::Eq,
                    k,
                    zero,
                    |fb| {
                        // Empty slot: miss.
                        let z = fb.const_(0);
                        fb.set(probing, z);
                    },
                    |fb| {
                        let base = fb.addr_global(htab);
                        let i = fb.get(idx);
                        let slot = array_addr(fb, base, i, 16);
                        let k = fb.load(Width::B8, slot, 0);
                        let want = fb.get(key);
                        fb.if_then_else(
                            Cond::Eq,
                            k,
                            want,
                            |fb| {
                                let base = fb.addr_global(htab);
                                let i = fb.get(idx);
                                let slot = array_addr(fb, base, i, 16);
                                let v = fb.load(Width::B8, slot, 8);
                                fb.set(result, v);
                                let z = fb.const_(0);
                                fb.set(probing, z);
                            },
                            |fb| {
                                let i = fb.get(idx);
                                let next = fb.add_imm(i, 1);
                                let wrapped = fb.bin_imm(AluOp::And, next, (HTAB_SLOTS - 1) as i64);
                                fb.set(idx, wrapped);
                            },
                        );
                    },
                );
            },
        );
        let r = fb.get(result);
        fb.ret(Some(r));
    });

    // dispatch(op, operand, acc) -> acc'
    let dispatch = mb.function("op_dispatch", 3, true, |fb| {
        let op = fb.param(0);
        let operand = fb.param(1);
        let acc = fb.param(2);
        let out = fb.local_scalar();
        // The VM spills its accumulator to the top of the operand stack
        // and reads the handler-table header on every dispatch — the
        // interpreter idiom whose stack/global pairing is layout-bound.
        let opstack = fb.local_buffer(64);
        let tbase = fb.addr_global(optable);
        let sbase = fb.addr(opstack);
        let w = fb.load(Width::B8, tbase, 0);
        let a0 = fb.get(acc);
        let tagged = fb.bin(AluOp::Xor, a0, w);
        fb.store(Width::B8, sbase, 0, tagged);
        let opv0 = fb.get(op);
        let kind = fb.bin_imm(AluOp::Rem, opv0, 6);
        let sel = fb.local_scalar();
        fb.set(sel, kind);

        let sv = fb.get(sel);
        let zero = fb.const_(0);
        fb.if_then_else(
            Cond::Eq,
            sv,
            zero,
            |fb| {
                let a = fb.get(acc);
                let o = fb.get(operand);
                let r = fb.add(a, o);
                fb.set(out, r);
            },
            |fb| {
                let sv = fb.get(sel);
                let one = fb.const_(1);
                fb.if_then_else(
                    Cond::Eq,
                    sv,
                    one,
                    |fb| {
                        let a = fb.get(acc);
                        let o = fb.get(operand);
                        let r = fb.bin(AluOp::Xor, a, o);
                        fb.set(out, r);
                    },
                    |fb| {
                        let sv = fb.get(sel);
                        let two = fb.const_(2);
                        fb.if_then_else(
                            Cond::Eq,
                            sv,
                            two,
                            |fb| {
                                let a = fb.get(acc);
                                let r0 = fb.mul_imm(a, 3);
                                let o = fb.get(operand);
                                let r = fb.add(r0, o);
                                fb.set(out, r);
                            },
                            |fb| {
                                let sv = fb.get(sel);
                                let three = fb.const_(3);
                                fb.if_then_else(
                                    Cond::Eq,
                                    sv,
                                    three,
                                    |fb| {
                                        // Insert acc under a data-dependent
                                        // key, so the whole table stays hot.
                                        let o = fb.get(operand);
                                        let a = fb.get(acc);
                                        let mixed = fb.bin(AluOp::Xor, o, a);
                                        let masked = fb.bin_imm(AluOp::And, mixed, 0xFFF);
                                        let key = fb.bin_imm(AluOp::Or, masked, 1);
                                        let a2 = fb.get(acc);
                                        fb.call_void(insert, &[key, a2]);
                                        fb.set(out, a2);
                                    },
                                    |fb| {
                                        let sv = fb.get(sel);
                                        let four = fb.const_(4);
                                        fb.if_then_else(
                                            Cond::Eq,
                                            sv,
                                            four,
                                            |fb| {
                                                let o = fb.get(operand);
                                                let a0 = fb.get(acc);
                                                let mixed = fb.bin(AluOp::Xor, o, a0);
                                                let masked = fb.bin_imm(AluOp::And, mixed, 0xFFF);
                                                let key = fb.bin_imm(AluOp::Or, masked, 1);
                                                let v = fb.call(lookup, &[key]);
                                                let a = fb.get(acc);
                                                let r = fb.add(a, v);
                                                fb.set(out, r);
                                            },
                                            |fb| {
                                                let a = fb.get(acc);
                                                let sh = fb.bin_imm(AluOp::Srl, a, 1);
                                                let o = fb.get(operand);
                                                let r = fb.bin(AluOp::Xor, sh, o);
                                                fb.set(out, r);
                                            },
                                        );
                                    },
                                );
                            },
                        );
                    },
                );
            },
        );
        let r0 = fb.get(out);
        let sbase2 = fb.addr(opstack);
        let spilled = fb.load(Width::B8, sbase2, 0);
        let folded = fb.bin_imm(AluOp::Srl, spilled, 61);
        let r = fb.add(r0, folded);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let ring = fb.local_buffer(RING_BYTES);
        let acc = fb.local_scalar();
        let seed = fb.const_(0x5EED);
        fb.set(acc, seed);
        let iter = fb.local_scalar();
        let prog_len = const_local(fb, PROG_LEN);
        let pc = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            let _ = iv;
            fb.counted_loop(pc, 0, prog_len, 1, |fb, pcv| {
                // Fetch the opcode and spill the accumulator into the
                // stack ring back-to-back: the program stream (data
                // segment) and the ring stream (stack) advance one word
                // per step each.
                let base = fb.addr_global(prog);
                let poff = fb.mul_imm(pcv, 8);
                let paddr = fb.add(base, poff);
                let rbase = fb.addr(ring);
                let slot = fb.bin_imm(AluOp::And, pcv, (RING_BYTES as i64 / 8) - 1);
                let roff = fb.mul_imm(slot, 8);
                let raddr = fb.add(rbase, roff);
                let word = fb.load(Width::B8, paddr, 0);
                let a0 = fb.get(acc);
                fb.store(Width::B8, raddr, 0, a0);
                let operand = fb.bin_imm(AluOp::Srl, word, 3);
                let a = fb.get(acc);
                let a2 = fb.call(dispatch, &[word, operand, a]);
                fb.set(acc, a2);
            });
            // Mix the ring back into the accumulator once per program run.
            let rbase = fb.addr(ring);
            let it = fb.get(iter);
            let slot = fb.bin_imm(AluOp::And, it, (RING_BYTES as i64 / 8) - 1);
            let v = load_idx(fb, rbase, slot, 8, Width::B8);
            let a = fb.get(acc);
            let mixed = fb.bin(AluOp::Xor, a, v);
            fb.set(acc, mixed);
            let m = fb.get(acc);
            fb.chk(m);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("perlbench module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn runs_and_checksums_deterministically() {
        let m = perlbench();
        let a = Interpreter::new(&m).call_by_name("main", &[5]).unwrap();
        let b = Interpreter::new(&m).call_by_name("main", &[5]).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_ne!(a.checksum, 0);
    }

    #[test]
    fn hash_table_sees_traffic() {
        let m = perlbench();
        let mut interp = Interpreter::new(&m);
        interp.call_by_name("main", &[8]).unwrap();
        // At least one slot of htab written (key != 0).
        let htab_idx = m.globals.iter().position(|g| g.name == "htab").unwrap();
        let base = interp.global_addr(htab_idx);
        let touched =
            (0..HTAB_SLOTS).any(|i| interp.memory().read_u64(base + (i * 16) as u32) != 0);
        assert!(touched);
    }
}
