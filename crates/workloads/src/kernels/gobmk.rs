//! `gobmk` — Go board analysis: dense 2-D scans plus budget-bounded
//! recursive flood fill over stone groups. Heavily branchy with
//! data-dependent control flow, like the real engine's pattern matchers.

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{array_addr, const_local, lcg_words};

/// Board side (cells are bytes; 32×32 = 1 KiB per plane).
const SIDE: u64 = 32;
const CELLS: u64 = SIDE * SIDE;

/// Builds the gobmk module.
#[must_use]
pub fn gobmk() -> Module {
    let mut mb = ModuleBuilder::new();

    let board = mb.global(Global::zeroed("board", CELLS as u32));
    let marks = mb.global(Global::zeroed("marks", CELLS as u32));
    let rand_tbl = mb.global(Global::from_words(
        "rand_tbl",
        &lcg_words(0x60B, (CELLS / 8) as usize),
    ));

    // reseed(salt): refill the board with ~25% stones derived from the
    // random table and the salt; clears marks.
    let reseed = mb.function("board_reseed", 1, false, |fb| {
        let salt = fb.param(0);
        let i = fb.local_scalar();
        let n = const_local(fb, CELLS);
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            let tbase = fb.addr_global(rand_tbl);
            let word_idx = fb.bin_imm(AluOp::Srl, iv, 3);
            let word = crate::util::load_idx(fb, tbase, word_idx, 8, Width::B8);
            let s = fb.get(salt);
            let mixed0 = fb.bin(AluOp::Xor, word, s);
            let shift = fb.bin_imm(AluOp::And, iv, 7);
            let sh3 = fb.mul_imm(shift, 8);
            let mixed = fb.bin(AluOp::Srl, mixed0, sh3);
            let nib = fb.bin_imm(AluOp::And, mixed, 3);
            // stone iff nib == 0 → 25% density.
            let stone = fb.bin_imm(AluOp::Seq, nib, 0);
            let bbase = fb.addr_global(board);
            crate::util::store_idx(fb, bbase, iv, 1, Width::B1, stone);
            let mbase = fb.addr_global(marks);
            let z = fb.const_(0);
            crate::util::store_idx(fb, mbase, iv, 1, Width::B1, z);
        });
        fb.ret(None);
    });

    // flood(cell, budget) -> region size: recursive 4-neighbour fill over
    // unmarked stones, visiting at most `budget` cells.
    let flood = mb.declare("flood_fill", 2, true);
    mb.define(flood, |fb| {
        let cell = fb.param(0);
        let budget = fb.param(1);
        let out = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(out, z);
        let bv = fb.get(budget);
        let zero = fb.const_(0);
        fb.if_then(Cond::Ne, bv, zero, |fb| {
            let cv = fb.get(cell);
            let limit = fb.const_(CELLS);
            fb.if_then(Cond::Ltu, cv, limit, |fb| {
                let bbase = fb.addr_global(board);
                let cv = fb.get(cell);
                let stone_addr = array_addr(fb, bbase, cv, 1);
                let stone = fb.load(Width::B1, stone_addr, 0);
                let one = fb.const_(1);
                fb.if_then(Cond::Eq, stone, one, |fb| {
                    let mbase = fb.addr_global(marks);
                    let cv = fb.get(cell);
                    let mark_addr = array_addr(fb, mbase, cv, 1);
                    let marked = fb.load(Width::B1, mark_addr, 0);
                    let zero = fb.const_(0);
                    fb.if_then(Cond::Eq, marked, zero, |fb| {
                        // Mark and recurse into the four neighbours.
                        let mbase = fb.addr_global(marks);
                        let cv = fb.get(cell);
                        let mark_addr = array_addr(fb, mbase, cv, 1);
                        let one = fb.const_(1);
                        fb.store(Width::B1, mark_addr, 0, one);
                        let b = fb.get(budget);
                        let b2 = fb.add_imm(b, -1);
                        let quarter = fb.bin_imm(AluOp::Srl, b2, 2);
                        let sub_budget = fb.local_scalar();
                        fb.set(sub_budget, quarter);
                        let total = fb.local_scalar();
                        let one2 = fb.const_(1);
                        fb.set(total, one2);
                        // left
                        let cv = fb.get(cell);
                        let left = fb.add_imm(cv, -1);
                        let sb = fb.get(sub_budget);
                        let r = fb.call(flood, &[left, sb]);
                        let t = fb.get(total);
                        let t2 = fb.add(t, r);
                        fb.set(total, t2);
                        // right
                        let cv = fb.get(cell);
                        let right = fb.add_imm(cv, 1);
                        let sb = fb.get(sub_budget);
                        let r = fb.call(flood, &[right, sb]);
                        let t = fb.get(total);
                        let t2 = fb.add(t, r);
                        fb.set(total, t2);
                        // up
                        let cv = fb.get(cell);
                        let up = fb.add_imm(cv, -(SIDE as i64));
                        let sb = fb.get(sub_budget);
                        let r = fb.call(flood, &[up, sb]);
                        let t = fb.get(total);
                        let t2 = fb.add(t, r);
                        fb.set(total, t2);
                        // down
                        let cv = fb.get(cell);
                        let down = fb.add_imm(cv, SIDE as i64);
                        let sb = fb.get(sub_budget);
                        let r = fb.call(flood, &[down, sb]);
                        let t = fb.get(total);
                        let t2 = fb.add(t, r);
                        fb.set(total, t2);
                        let t3 = fb.get(total);
                        fb.set(out, t3);
                    });
                });
            });
        });
        let r = fb.get(out);
        fb.ret(Some(r));
    });

    // scan(): flood from every cell, summing region sizes.
    let scan = mb.function("board_scan", 0, true, |fb| {
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        let n = const_local(fb, CELLS);
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            let budget = fb.const_(64);
            let r = fb.call(flood, &[iv, budget]);
            let a = fb.get(acc);
            let a2 = fb.add(a, r);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            fb.call_void(reseed, &[iv]);
            let stones = fb.call(scan, &[]);
            fb.chk(stones);
            let a = fb.get(acc);
            let a2 = fb.add(a, stones);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("gobmk module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn scan_counts_marked_stones_once() {
        let m = gobmk();
        let mut interp = Interpreter::new(&m);
        interp.call_by_name("board_reseed", &[1]).unwrap();
        let first = interp.call_by_name("board_scan", &[]).unwrap();
        // All stones are marked now; a second scan finds nothing.
        let second = interp.call_by_name("board_scan", &[]).unwrap();
        assert!(first.return_value.unwrap() > 0);
        assert_eq!(second.return_value, Some(0));
    }

    #[test]
    fn budget_bounds_recursion() {
        // Depth is bounded by budget quartering: budget 64 → depth ≤ ~4
        // levels of full recursion, safely within interpreter limits even
        // on a fully covered board.
        let m = gobmk();
        let out = Interpreter::new(&m).call_by_name("main", &[2]).unwrap();
        assert_ne!(out.checksum, 0);
    }
}
