//! The twelve benchmark kernels, one module per SPEC CPU2006 C program.
//!
//! Each `fn <name>() -> Module` builds a verified IR module with an entry
//! function `main(n)` where `n` scales the work. Kernels are written with
//! several functions each so that link-order permutations have room to act,
//! and most keep at least one hot buffer on the stack so that
//! environment-size changes move it.

mod bzip2;
mod gcc;
mod gobmk;
mod h264ref;
mod hmmer;
mod lbm;
mod libquantum;
mod mcf;
mod milc;
mod perlbench;
mod sjeng;
mod sphinx3;

pub use bzip2::bzip2;
pub use gcc::gcc;
pub use gobmk::gobmk;
pub use h264ref::h264ref;
pub use hmmer::hmmer;
pub use lbm::lbm;
pub use libquantum::libquantum;
pub use mcf::mcf;
pub use milc::milc;
pub use perlbench::perlbench;
pub use sjeng::sjeng;
pub use sphinx3::sphinx3;

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    #[test]
    fn every_kernel_builds_and_runs_under_the_interpreter() {
        for b in crate::suite() {
            let mut interp = Interpreter::new(b.module());
            let out = interp
                .call_by_name(b.entry(), b.args(crate::InputSize::Test))
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(
                out.checksum != 0,
                "{}: checksum should be nonzero",
                b.name()
            );
        }
    }

    #[test]
    fn checksums_depend_on_input_size() {
        for b in crate::suite() {
            let t = b.expected(crate::InputSize::Test);
            let r = b.expected(crate::InputSize::Ref);
            assert_ne!(t.checksum, r.checksum, "{}", b.name());
            assert!(r.ir_ops > t.ir_ops, "{}", b.name());
        }
    }

    #[test]
    fn kernels_have_multiple_link_units() {
        for b in crate::suite() {
            assert!(
                b.module().functions.len() >= 3,
                "{}: needs ≥3 functions for link-order experiments, has {}",
                b.name(),
                b.module().functions.len()
            );
        }
    }

    #[test]
    fn expected_outcomes_are_cached_and_stable() {
        let suite = crate::suite();
        let b = &suite[0];
        let a = b.expected(crate::InputSize::Test);
        let c = b.expected(crate::InputSize::Test);
        assert_eq!(a, c);
    }
}
