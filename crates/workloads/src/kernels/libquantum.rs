//! `libquantum` — streaming bit manipulation over a quantum register file:
//! long, perfectly regular passes of shift/xor gates, the classic
//! bandwidth-bound, branch-light workload (and a strong unrolling target).

use biaslab_isa::{AluOp, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{const_local, lcg_words, load_idx, store_idx};

/// Register file: 2048 amplitudes (16 KiB).
const AMPS: u64 = 8192;

/// Builds the libquantum module.
#[must_use]
pub fn libquantum() -> Module {
    let mut mb = ModuleBuilder::new();

    let qreg = mb.global(Global::from_words(
        "qreg",
        &lcg_words(0x9A27, AMPS as usize),
    ));

    // gate_not(mask): amp[i] ^= mask — one streaming pass.
    let gate_not = mb.function("gate_not", 1, true, |fb| {
        let mask = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        let n = const_local(fb, AMPS);
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            let base = fb.addr_global(qreg);
            let v = load_idx(fb, base, iv, 8, Width::B8);
            let m = fb.get(mask);
            let v2 = fb.bin(AluOp::Xor, v, m);
            let base2 = fb.addr_global(qreg);
            store_idx(fb, base2, iv, 8, Width::B8, v2);
            let a = fb.get(acc);
            let a2 = fb.add(a, v2);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    // gate_cnot(shift): amp[i] ^= (amp[i] >> shift) & 0xFF…, conditional
    // flip driven by the register's own bits.
    let gate_cnot = mb.function("gate_cnot", 1, true, |fb| {
        let shift = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        let n = const_local(fb, AMPS);
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            let base = fb.addr_global(qreg);
            let v = load_idx(fb, base, iv, 8, Width::B8);
            let s = fb.get(shift);
            let ctrl = fb.bin(AluOp::Srl, v, s);
            let bits = fb.bin_imm(AluOp::And, ctrl, 0xFF);
            let v2 = fb.bin(AluOp::Xor, v, bits);
            let base2 = fb.addr_global(qreg);
            store_idx(fb, base2, iv, 8, Width::B8, v2);
            let a = fb.get(acc);
            let a2 = fb.bin(AluOp::Xor, a, v2);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    // gate_swap(): pairwise swap amp[2k] ↔ amp[2k+1] with a twist.
    let gate_swap = mb.function("gate_swap", 0, true, |fb| {
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        let half = const_local(fb, AMPS / 2);
        fb.counted_loop(i, 0, half, 1, |fb, iv| {
            let even = fb.mul_imm(iv, 2);
            let odd = fb.add_imm(even, 1);
            let base = fb.addr_global(qreg);
            let a = load_idx(fb, base, even, 8, Width::B8);
            let base2 = fb.addr_global(qreg);
            let b = load_idx(fb, base2, odd, 8, Width::B8);
            let a_rot = fb.bin_imm(AluOp::Sll, a, 1);
            let base3 = fb.addr_global(qreg);
            store_idx(fb, base3, even, 8, Width::B8, b);
            let base4 = fb.addr_global(qreg);
            store_idx(fb, base4, odd, 8, Width::B8, a_rot);
            let acc_v = fb.get(acc);
            let acc2 = fb.add(acc_v, b);
            fb.set(acc, acc2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            let mask0 = fb.mul_imm(iv, 0x0101);
            let mask = fb.bin_imm(AluOp::Or, mask0, 0xA5);
            let s1 = fb.call(gate_not, &[mask]);
            fb.chk(s1);
            let shift = fb.bin_imm(AluOp::And, iv, 31);
            let s2 = fb.call(gate_cnot, &[shift]);
            fb.chk(s2);
            let s3 = fb.call(gate_swap, &[]);
            fb.chk(s3);
            let a = fb.get(acc);
            let a2 = fb.bin(AluOp::Xor, a, s3);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("libquantum module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn double_not_restores_the_register() {
        let m = libquantum();
        let mut interp = Interpreter::new(&m);
        // A mask-0 pass sums the register without changing it.
        let before = interp
            .call_by_name("gate_not", &[0])
            .unwrap()
            .return_value
            .unwrap();
        // NOT twice with the same mask is the identity…
        interp.call_by_name("gate_not", &[0xABCD]).unwrap();
        interp.call_by_name("gate_not", &[0xABCD]).unwrap();
        // …so a final mask-0 pass sums the original values again.
        let after = interp
            .call_by_name("gate_not", &[0])
            .unwrap()
            .return_value
            .unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn gates_stream_the_whole_register() {
        let m = libquantum();
        let out = Interpreter::new(&m).call_by_name("main", &[3]).unwrap();
        assert_ne!(out.checksum, 0);
        // Each iteration runs three full passes: ≥ 3 × AMPS loads.
        assert!(out.ops_executed > 3 * AMPS);
    }
}
