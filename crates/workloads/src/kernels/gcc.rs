//! `gcc` — expression-tree construction, recursive evaluation and a
//! constant-folding rewrite pass over a node pool: irregular loads,
//! recursion, and data-dependent branches, like a compiler middle end.

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::array_addr;

/// Node pool: 1024 nodes × 32 bytes (kind, lhs, rhs, value).
const POOL_NODES: u64 = 4096;
const NODE_BYTES: i64 = 32;
/// kind 0 = leaf; 1 = add; 2 = mul; 3 = xor.
const KIND_LEAF: u64 = 0;

/// Builds the gcc module.
#[must_use]
pub fn gcc() -> Module {
    let mut mb = ModuleBuilder::new();

    let pool = mb.global(Global::zeroed("pool", (POOL_NODES * 32) as u32));
    let alloc_ptr = mb.global(Global::zeroed("alloc_ptr", 8));

    // node_alloc() -> index (wraps around the pool; fine for rebuilt trees).
    let node_alloc = mb.function("node_alloc", 0, true, |fb| {
        let base = fb.addr_global(alloc_ptr);
        let cur = fb.load(Width::B8, base, 0);
        let next = fb.add_imm(cur, 1);
        let wrapped = fb.bin_imm(AluOp::And, next, (POOL_NODES - 1) as i64);
        fb.store(Width::B8, base, 0, wrapped);
        fb.ret(Some(cur));
    });

    // build(depth, seed) -> node index. Recursive; leaves carry seed-derived
    // values, inner nodes get kind 1..3.
    let build = mb.declare("tree_build", 2, true);
    mb.define(build, |fb| {
        let depth = fb.param(0);
        let seed = fb.param(1);
        let out = fb.local_scalar();
        let idx = fb.call(node_alloc, &[]);
        let idx_l = fb.local_scalar();
        fb.set(idx_l, idx);
        let d = fb.get(depth);
        let zero = fb.const_(0);
        fb.if_then_else(
            Cond::Eq,
            d,
            zero,
            |fb| {
                // Leaf: kind 0, value = mixed seed.
                let pbase = fb.addr_global(pool);
                let i = fb.get(idx_l);
                let node = array_addr(fb, pbase, i, NODE_BYTES);
                let k = fb.const_(KIND_LEAF);
                fb.store(Width::B8, node, 0, k);
                let s = fb.get(seed);
                let v = fb.mul_imm(s, 0x9E37);
                let v2 = fb.bin_imm(AluOp::Xor, v, 0x79B9);
                fb.store(Width::B8, node, 24, v2);
                let i2 = fb.get(idx_l);
                fb.set(out, i2);
            },
            |fb| {
                // Inner node: two children with derived seeds.
                let s = fb.get(seed);
                let s1 = fb.mul_imm(s, 3);
                let d = fb.get(depth);
                let d1 = fb.add_imm(d, -1);
                let lhs = fb.call(build, &[d1, s1]);
                let lhs_l = fb.local_scalar();
                fb.set(lhs_l, lhs);
                let s2v = fb.get(seed);
                let s2 = fb.add_imm(s2v, 0x51);
                let d2v = fb.get(depth);
                let d2 = fb.add_imm(d2v, -1);
                let rhs = fb.call(build, &[d2, s2]);
                let pbase = fb.addr_global(pool);
                let i = fb.get(idx_l);
                let node = array_addr(fb, pbase, i, NODE_BYTES);
                let sv = fb.get(seed);
                let k0 = fb.bin_imm(AluOp::Rem, sv, 3);
                let kind = fb.add_imm(k0, 1);
                fb.store(Width::B8, node, 0, kind);
                let l = fb.get(lhs_l);
                fb.store(Width::B8, node, 8, l);
                fb.store(Width::B8, node, 16, rhs);
                let i2 = fb.get(idx_l);
                fb.set(out, i2);
            },
        );
        let r = fb.get(out);
        fb.ret(Some(r));
    });

    // eval(idx) -> value, recursively.
    let eval = mb.declare("tree_eval", 1, true);
    mb.define(eval, |fb| {
        let idx = fb.param(0);
        let out = fb.local_scalar();
        let pbase = fb.addr_global(pool);
        let i = fb.get(idx);
        let node = array_addr(fb, pbase, i, NODE_BYTES);
        let kind = fb.load(Width::B8, node, 0);
        let kind_l = fb.local_scalar();
        fb.set(kind_l, kind);
        let zero = fb.const_(0);
        fb.if_then_else(
            Cond::Eq,
            kind,
            zero,
            |fb| {
                let pbase = fb.addr_global(pool);
                let i = fb.get(idx);
                let node = array_addr(fb, pbase, i, NODE_BYTES);
                let v = fb.load(Width::B8, node, 24);
                fb.set(out, v);
            },
            |fb| {
                let pbase = fb.addr_global(pool);
                let i = fb.get(idx);
                let node = array_addr(fb, pbase, i, NODE_BYTES);
                let lhs = fb.load(Width::B8, node, 8);
                let lv = fb.call(eval, &[lhs]);
                let lv_l = fb.local_scalar();
                fb.set(lv_l, lv);
                let pbase2 = fb.addr_global(pool);
                let i2 = fb.get(idx);
                let node2 = array_addr(fb, pbase2, i2, NODE_BYTES);
                let rhs = fb.load(Width::B8, node2, 16);
                let rv = fb.call(eval, &[rhs]);
                let k = fb.get(kind_l);
                let one = fb.const_(1);
                let l = fb.get(lv_l);
                let rv_l = fb.local_scalar();
                fb.set(rv_l, rv);
                fb.if_then_else(
                    Cond::Eq,
                    k,
                    one,
                    |fb| {
                        let a = fb.get(lv_l);
                        let b = fb.get(rv_l);
                        let s = fb.add(a, b);
                        fb.set(out, s);
                    },
                    |fb| {
                        let k = fb.get(kind_l);
                        let two = fb.const_(2);
                        fb.if_then_else(
                            Cond::Eq,
                            k,
                            two,
                            |fb| {
                                let a = fb.get(lv_l);
                                let b = fb.get(rv_l);
                                let s = fb.mul(a, b);
                                fb.set(out, s);
                            },
                            |fb| {
                                let a = fb.get(lv_l);
                                let b = fb.get(rv_l);
                                let s = fb.bin(AluOp::Xor, a, b);
                                fb.set(out, s);
                            },
                        );
                    },
                );
                let _ = (l, one);
            },
        );
        let r = fb.get(out);
        fb.ret(Some(r));
    });

    // fold(idx) -> value: like eval, but rewrites inner nodes whose children
    // are leaves into leaves (the "constant folding" pass: store traffic).
    let fold = mb.declare("tree_fold", 1, true);
    mb.define(fold, |fb| {
        let idx = fb.param(0);
        let out = fb.local_scalar();
        let pbase = fb.addr_global(pool);
        let i = fb.get(idx);
        let node = array_addr(fb, pbase, i, NODE_BYTES);
        let kind = fb.load(Width::B8, node, 0);
        let zero = fb.const_(0);
        fb.if_then_else(
            Cond::Eq,
            kind,
            zero,
            |fb| {
                let pbase = fb.addr_global(pool);
                let i = fb.get(idx);
                let node = array_addr(fb, pbase, i, NODE_BYTES);
                let v = fb.load(Width::B8, node, 24);
                fb.set(out, v);
            },
            |fb| {
                let pbase = fb.addr_global(pool);
                let i = fb.get(idx);
                let node = array_addr(fb, pbase, i, NODE_BYTES);
                let lhs = fb.load(Width::B8, node, 8);
                let lv = fb.call(fold, &[lhs]);
                let lv_l = fb.local_scalar();
                fb.set(lv_l, lv);
                let pbase2 = fb.addr_global(pool);
                let i2 = fb.get(idx);
                let node2 = array_addr(fb, pbase2, i2, NODE_BYTES);
                let rhs = fb.load(Width::B8, node2, 16);
                let rv = fb.call(fold, &[rhs]);
                // Rewrite this node as a leaf carrying lv+rv (fold keeps a
                // single combiner so the rewrite is idempotent).
                let a = fb.get(lv_l);
                let s = fb.add(a, rv);
                let pbase3 = fb.addr_global(pool);
                let i3 = fb.get(idx);
                let node3 = array_addr(fb, pbase3, i3, NODE_BYTES);
                let k = fb.const_(KIND_LEAF);
                fb.store(Width::B8, node3, 0, k);
                fb.store(Width::B8, node3, 24, s);
                fb.set(out, s);
            },
        );
        let r = fb.get(out);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            // Fresh tree of depth 7 (~255 nodes).
            let seven = fb.const_(9);
            let seed = fb.add_imm(iv, 11);
            let root = fb.call(build, &[seven, seed]);
            let root_l = fb.local_scalar();
            fb.set(root_l, root);
            let v = fb.call(eval, &[root]);
            fb.chk(v);
            let r2 = fb.get(root_l);
            let folded = fb.call(fold, &[r2]);
            fb.chk(folded);
            let a = fb.get(acc);
            let a2 = fb.bin(AluOp::Xor, a, folded);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("gcc module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn eval_and_fold_agree_on_fresh_identical_trees() {
        let m = gcc();
        let mut interp = Interpreter::new(&m);
        // Build two identical trees back to back: fold's combined value is
        // well-defined, and main folds after eval without crashing.
        let out = interp.call_by_name("main", &[3]).unwrap();
        assert_ne!(out.checksum, 0);
    }

    #[test]
    fn deeper_runs_do_more_work() {
        let m = gcc();
        let small = Interpreter::new(&m).call_by_name("main", &[1]).unwrap();
        let large = Interpreter::new(&m).call_by_name("main", &[4]).unwrap();
        assert!(large.ops_executed > 3 * small.ops_executed / 2);
    }
}
