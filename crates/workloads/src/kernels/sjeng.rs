//! `sjeng` — recursive game-tree search with a transposition table: deep
//! recursion, hash-scattered loads, and highly data-dependent branches,
//! like a chess engine's alpha-beta core.

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::array_addr;

/// Transposition table: 1024 entries × 16 bytes (key, score).
const TT_SLOTS: u64 = 4096;

/// Builds the sjeng module.
#[must_use]
pub fn sjeng() -> Module {
    let mut mb = ModuleBuilder::new();

    let ttable = mb.global(Global::zeroed("ttable", (TT_SLOTS * 16) as u32));

    // evaluate(state) -> static score: bit-mixing "popcount-ish" eval.
    let evaluate = mb.function("evaluate", 1, true, |fb| {
        let state = fb.param(0);
        let s = fb.get(state);
        let x1 = fb.bin_imm(AluOp::Srl, s, 17);
        let m1 = fb.bin(AluOp::Xor, s, x1);
        let m2 = fb.mul_imm(m1, 0x2545);
        let x2 = fb.bin_imm(AluOp::Srl, m2, 9);
        let m3 = fb.bin(AluOp::Xor, m2, x2);
        let score = fb.bin_imm(AluOp::And, m3, 0xFFFF);
        fb.ret(Some(score));
    });

    // search(state, depth) -> score. Tries 3 moves per node, takes the max,
    // and caches results in the transposition table.
    let search = mb.declare("search", 2, true);
    mb.define(search, |fb| {
        let state = fb.param(0);
        let depth = fb.param(1);
        let out = fb.local_scalar();
        let d = fb.get(depth);
        let zero = fb.const_(0);
        fb.if_then_else(
            Cond::Eq,
            d,
            zero,
            |fb| {
                let s = fb.get(state);
                let e = fb.call(evaluate, &[s]);
                fb.set(out, e);
            },
            |fb| {
                // Probe the transposition table.
                let s = fb.get(state);
                let d = fb.get(depth);
                let keyed = fb.mul_imm(s, 31);
                let key0 = fb.add(keyed, d);
                let key = fb.bin_imm(AluOp::Or, key0, 1);
                let key_l = fb.local_scalar();
                fb.set(key_l, key);
                let slot_idx = fb.bin_imm(AluOp::And, key, (TT_SLOTS - 1) as i64);
                let tbase = fb.addr_global(ttable);
                let slot = array_addr(fb, tbase, slot_idx, 16);
                let stored_key = fb.load(Width::B8, slot, 0);
                let want = fb.get(key_l);
                fb.if_then_else(
                    Cond::Eq,
                    stored_key,
                    want,
                    |fb| {
                        // Hit: reuse the cached score.
                        let key = fb.get(key_l);
                        let slot_idx = fb.bin_imm(AluOp::And, key, (TT_SLOTS - 1) as i64);
                        let tbase = fb.addr_global(ttable);
                        let slot = array_addr(fb, tbase, slot_idx, 16);
                        let score = fb.load(Width::B8, slot, 8);
                        fb.set(out, score);
                    },
                    |fb| {
                        // Miss: expand three children.
                        let best = fb.local_scalar();
                        let z = fb.const_(0);
                        fb.set(best, z);
                        let mv = fb.local_scalar();
                        let three = crate::util::const_local(fb, 3);
                        fb.counted_loop(mv, 0, three, 1, |fb, mvv| {
                            let s = fb.get(state);
                            let rolled = fb.mul_imm(s, 6364136223846793005u64 as i64);
                            let child0 = fb.add(rolled, mvv);
                            let child = fb.bin_imm(AluOp::Xor, child0, 0x9E);
                            let d = fb.get(depth);
                            let d1 = fb.add_imm(d, -1);
                            let score = fb.call(search, &[child, d1]);
                            // best = max(best, score) branch-free.
                            let b = fb.get(best);
                            let lt = fb.bin(AluOp::Slt, b, score);
                            let diff = fb.sub(score, b);
                            let sel = fb.mul(lt, diff);
                            let nb = fb.add(b, sel);
                            fb.set(best, nb);
                        });
                        // Store into the table.
                        let key = fb.get(key_l);
                        let slot_idx = fb.bin_imm(AluOp::And, key, (TT_SLOTS - 1) as i64);
                        let tbase = fb.addr_global(ttable);
                        let slot = array_addr(fb, tbase, slot_idx, 16);
                        let k = fb.get(key_l);
                        fb.store(Width::B8, slot, 0, k);
                        let b = fb.get(best);
                        fb.store(Width::B8, slot, 8, b);
                        fb.set(out, b);
                    },
                );
            },
        );
        let r = fb.get(out);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            let seed = fb.add_imm(iv, 0x1234);
            let depth = fb.const_(7);
            let s = fb.call(search, &[seed, depth]);
            fb.chk(s);
            let a = fb.get(acc);
            let a2 = fb.bin(AluOp::Xor, a, s);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("sjeng module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn search_is_deterministic() {
        let m = sjeng();
        let a = Interpreter::new(&m)
            .call_by_name("search", &[42, 5])
            .unwrap();
        let b = Interpreter::new(&m)
            .call_by_name("search", &[42, 5])
            .unwrap();
        assert_eq!(a.return_value, b.return_value);
    }

    #[test]
    fn transposition_table_caches_subtrees() {
        let m = sjeng();
        let mut interp = Interpreter::new(&m);
        let cold = interp.call_by_name("search", &[42, 6]).unwrap();
        let warm_ops_before = cold.ops_executed;
        let warm = interp.call_by_name("search", &[42, 6]).unwrap();
        assert_eq!(warm.return_value, cold.return_value);
        assert!(
            warm.ops_executed - warm_ops_before < warm_ops_before,
            "a warm search should reuse cached results"
        );
    }

    #[test]
    fn evaluate_is_bounded() {
        let m = sjeng();
        for s in [0u64, 1, u64::MAX] {
            let out = Interpreter::new(&m).call_by_name("evaluate", &[s]).unwrap();
            assert!(out.return_value.unwrap() <= 0xFFFF);
        }
    }
}
