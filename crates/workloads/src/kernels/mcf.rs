//! `mcf` — pointer-chasing cost relaxation over an arc network, the memory
//! behaviour that makes 429.mcf famously cache-hostile: serial dependent
//! loads through a linked structure with data-dependent branches.

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{array_addr, const_local, lcg_words};

/// 1536 arcs × 24 bytes (head, cost, next) = 36 KiB.
const ARCS: u64 = 4096;
const ARC_BYTES: i64 = 24;
const NODES: u64 = 64;

/// Builds the mcf module.
#[must_use]
pub fn mcf() -> Module {
    let mut mb = ModuleBuilder::new();

    // Bake the arc network: arc i = { head: random node, cost: random,
    // next: random arc or end }. `next` chains are what we pointer-chase.
    let rnd = lcg_words(0x3CF, ARCS as usize * 3);
    let mut init = Vec::with_capacity(ARCS as usize * 24);
    for i in 0..ARCS as usize {
        let head = rnd[3 * i] % NODES;
        let cost = rnd[3 * i + 1] % 100_000;
        // Mostly-random successor; ~1/8 of arcs end the chain (sentinel).
        let nxt = if rnd[3 * i + 2].is_multiple_of(8) {
            ARCS
        } else {
            rnd[3 * i + 2] % ARCS
        };
        init.extend_from_slice(&head.to_le_bytes());
        init.extend_from_slice(&cost.to_le_bytes());
        init.extend_from_slice(&nxt.to_le_bytes());
    }
    let arcs = mb.global(Global {
        name: "arcs".into(),
        size: (ARCS * 24) as u32,
        align: 8,
        init,
    });
    let potential = mb.global(Global::zeroed("potential", (NODES * 8) as u32));

    // chase(start, limit) -> (sum of costs along the chain).
    let chase = mb.function("arc_chase", 2, true, |fb| {
        let start = fb.param(0);
        let limit = fb.param(1);
        let cur = fb.local_scalar();
        let sv = fb.get(start);
        fb.set(cur, sv);
        let sum = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(sum, z);
        let steps = fb.local_scalar();
        fb.set(steps, z);
        let running = fb.local_scalar();
        let one = fb.const_(1);
        fb.set(running, one);
        fb.while_loop(
            |fb| {
                let r = fb.get(running);
                let zero = fb.const_(0);
                (Cond::Ne, r, zero)
            },
            |fb| {
                let c = fb.get(cur);
                let sentinel = fb.const_(ARCS);
                fb.if_then_else(
                    Cond::Geu,
                    c,
                    sentinel,
                    |fb| {
                        let z = fb.const_(0);
                        fb.set(running, z);
                    },
                    |fb| {
                        let st = fb.get(steps);
                        let lim = fb.get(limit);
                        fb.if_then_else(
                            Cond::Geu,
                            st,
                            lim,
                            |fb| {
                                let z = fb.const_(0);
                                fb.set(running, z);
                            },
                            |fb| {
                                let abase = fb.addr_global(arcs);
                                let c = fb.get(cur);
                                let arc = array_addr(fb, abase, c, ARC_BYTES);
                                let head = fb.load(Width::B8, arc, 0);
                                let cost = fb.load(Width::B8, arc, 8);
                                let next = fb.load(Width::B8, arc, 16);
                                // Relax the head node's potential.
                                let pbase = fb.addr_global(potential);
                                let slot = array_addr(fb, pbase, head, 8);
                                let p = fb.load(Width::B8, slot, 0);
                                let s = fb.get(sum);
                                let s2 = fb.add(s, cost);
                                fb.set(sum, s2);
                                // potential[head] = (p + cost) / 2
                                let pc = fb.add(p, cost);
                                let half = fb.bin_imm(AluOp::Srl, pc, 1);
                                fb.store(Width::B8, slot, 0, half);
                                fb.set(cur, next);
                                let st = fb.get(steps);
                                let st2 = fb.add_imm(st, 1);
                                fb.set(steps, st2);
                            },
                        );
                    },
                );
            },
        );
        let r = fb.get(sum);
        fb.ret(Some(r));
    });

    // sweep(): one relaxation sweep over all arcs, updating costs from the
    // node potentials (regular pass — contrasts with the chase's chaos).
    let sweep = mb.function("arc_sweep", 0, true, |fb| {
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        let n = const_local(fb, ARCS);
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            let abase = fb.addr_global(arcs);
            let arc = array_addr(fb, abase, iv, ARC_BYTES);
            let head = fb.load(Width::B8, arc, 0);
            let cost = fb.load(Width::B8, arc, 8);
            let pbase = fb.addr_global(potential);
            let slot = array_addr(fb, pbase, head, 8);
            let p = fb.load(Width::B8, slot, 0);
            // cost' = (3*cost + p) / 4  (keeps magnitudes bounded)
            let c3 = fb.mul_imm(cost, 3);
            let mixed = fb.add(c3, p);
            let c2 = fb.bin_imm(AluOp::Srl, mixed, 2);
            fb.store(Width::B8, arc, 8, c2);
            let a = fb.get(acc);
            let a2 = fb.add(a, c2);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            // Chase from a rotating set of start arcs.
            let start0 = fb.mul_imm(iv, 37);
            let start = fb.bin_imm(AluOp::Rem, start0, ARCS as i64);
            let limit = fb.const_(512);
            let chased = fb.call(chase, &[start, limit]);
            fb.chk(chased);
            let swept = fb.call(sweep, &[]);
            fb.chk(swept);
            let a = fb.get(acc);
            let a2 = fb.bin(AluOp::Xor, a, swept);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("mcf module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn chase_terminates_and_accumulates() {
        let m = mcf();
        let out = Interpreter::new(&m)
            .call_by_name("arc_chase", &[0, 100_000])
            .unwrap();
        assert!(out.return_value.is_some());
    }

    #[test]
    fn main_is_input_sensitive() {
        let m = mcf();
        let a = Interpreter::new(&m).call_by_name("main", &[2]).unwrap();
        let b = Interpreter::new(&m).call_by_name("main", &[3]).unwrap();
        assert_ne!(a.checksum, b.checksum);
    }
}
