//! `hmmer` — profile-HMM dynamic programming (Viterbi in miniature): a
//! regular O(states × positions) matrix fill with branch-free max
//! selection. The match/insert rows live **on the stack**, so the kernel's
//! hot lines move with the environment size; the single-block inner loop is
//! prime unrolling material.

use biaslab_isa::{AluOp, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{const_local, lcg_words, load_idx, store_idx};

/// Profile states per row.
const STATES: u64 = 512;
/// Emission-score table: STATES × 16 residues.
const RESIDUES: u64 = 16;

/// Builds the hmmer module.
#[must_use]
pub fn hmmer() -> Module {
    let mut mb = ModuleBuilder::new();

    let emis = mb.global(Global::from_words(
        "emis",
        &lcg_words(0x4A3E12, (STATES * RESIDUES) as usize)
            .iter()
            .map(|w| w % 4096)
            .collect::<Vec<_>>(),
    ));
    let seq = mb.global(Global::from_words(
        "seq",
        &lcg_words(0x5E0, 64)
            .iter()
            .map(|w| w % RESIDUES)
            .collect::<Vec<_>>(),
    ));

    // score(state, residue) -> emission score (one load).
    let score = mb.function("emit_score", 2, true, |fb| {
        let state = fb.param(0);
        let residue = fb.param(1);
        let rv = fb.get(residue);
        let base_idx = fb.mul_imm(rv, STATES as i64);
        let sv = fb.get(state);
        let idx = fb.add(base_idx, sv);
        let ebase = fb.addr_global(emis);
        let v = load_idx(fb, ebase, idx, 8, Width::B8);
        fb.ret(Some(v));
    });

    // viterbi_row(mrow, irow, residue) -> best score in the updated row.
    // Both rows are caller-stack buffers passed by pointer.
    let row_fill = mb.function("viterbi_row", 3, true, |fb| {
        let mrow = fb.param(0);
        let irow = fb.param(1);
        let residue = fb.param(2);
        let best = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(best, z);
        let prev = fb.local_scalar();
        fb.set(prev, z);
        let i = fb.local_scalar();
        let n = const_local(fb, STATES);
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            // m' = max(prev_m + emis, i + emis/2), branch-free. The
            // emission table is residue-major, so the emission stream
            // advances in lockstep with the row streams (HMMER's actual
            // memory layout for the inner Viterbi loop).
            let mbase = fb.get(mrow);
            let moff = fb.mul_imm(iv, 8);
            let maddr = fb.add(mbase, moff);
            let rv = fb.get(residue);
            let erow = fb.mul_imm(rv, STATES as i64);
            let eidx = fb.add(erow, iv);
            let ebase = fb.addr_global(emis);
            let eoff = fb.mul_imm(eidx, 8);
            let eaddr = fb.add(ebase, eoff);
            let m_cur = fb.load(Width::B8, maddr, 0);
            let e = fb.load(Width::B8, eaddr, 0);
            let ibase = fb.get(irow);
            let i_cur = load_idx(fb, ibase, iv, 8, Width::B8);
            let p = fb.get(prev);
            let cand_m = fb.add(p, e);
            let e2 = fb.bin_imm(AluOp::Srl, e, 1);
            let cand_i = fb.add(i_cur, e2);
            // max(a,b) = a + (a<b)*(b-a)
            let lt = fb.bin(AluOp::Slt, cand_m, cand_i);
            let diff = fb.sub(cand_i, cand_m);
            let sel = fb.mul(lt, diff);
            let new_m = fb.add(cand_m, sel);
            // i' = (m_cur + i_cur) / 2 decays toward the match row.
            let sum = fb.add(m_cur, i_cur);
            let new_i = fb.bin_imm(AluOp::Srl, sum, 1);
            let mb2 = fb.get(mrow);
            store_idx(fb, mb2, iv, 8, Width::B8, new_m);
            let ib2 = fb.get(irow);
            store_idx(fb, ib2, iv, 8, Width::B8, new_i);
            fb.set(prev, new_m);
            // best = max(best, new_m), branch-free again.
            let b = fb.get(best);
            let lt2 = fb.bin(AluOp::Slt, b, new_m);
            let d2 = fb.sub(new_m, b);
            let s2 = fb.mul(lt2, d2);
            let nb = fb.add(b, s2);
            fb.set(best, nb);
        });
        let r = fb.get(best);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        // The DP rows: 128 states × 8 bytes each, on the stack.
        let mrow = fb.local_buffer((STATES * 8) as u32);
        let irow = fb.local_buffer((STATES * 8) as u32);
        // Zero both rows.
        let i = fb.local_scalar();
        let ns = const_local(fb, STATES);
        fb.counted_loop(i, 0, ns, 1, |fb, iv| {
            let mbase = fb.addr(mrow);
            let z = fb.const_(0);
            store_idx(fb, mbase, iv, 8, Width::B8, z);
            let ibase = fb.addr(irow);
            let z2 = fb.const_(0);
            store_idx(fb, ibase, iv, 8, Width::B8, z2);
        });
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let pos = fb.local_scalar();
        fb.counted_loop(pos, 0, n, 1, |fb, pv| {
            // residue = seq[pos % 64]
            let idx = fb.bin_imm(AluOp::And, pv, 63);
            let sbase = fb.addr_global(seq);
            let residue = load_idx(fb, sbase, idx, 8, Width::B8);
            let mbase = fb.addr(mrow);
            let ibase = fb.addr(irow);
            let best = fb.call(row_fill, &[mbase, ibase, residue]);
            fb.chk(best);
            let a = fb.get(acc);
            let a2 = fb.add(a, best);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        let _ = score;
        fb.ret(Some(r));
    });

    mb.finish().expect("hmmer module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn scores_grow_with_sequence_length() {
        let m = hmmer();
        let short = Interpreter::new(&m).call_by_name("main", &[2]).unwrap();
        let long = Interpreter::new(&m).call_by_name("main", &[8]).unwrap();
        assert!(long.return_value.unwrap() > short.return_value.unwrap());
    }

    #[test]
    fn emission_lookup_matches_table() {
        let m = hmmer();
        let out = Interpreter::new(&m)
            .call_by_name("emit_score", &[3, 5])
            .unwrap();
        let expected =
            lcg_words(0x4A3E12, (STATES * RESIDUES) as usize)[5 * STATES as usize + 3] % 4096;
        assert_eq!(out.return_value, Some(expected));
    }
}
