//! `sphinx3` — acoustic scoring in miniature: dot products between a
//! stack-resident feature vector (regenerated per frame) and a table of
//! Gaussian means, with branch-free best tracking over an active list.

use biaslab_isa::{AluOp, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{const_local, lcg_step, lcg_words, store_idx};

/// Dimensions per feature vector.
const DIMS: u64 = 32;
/// Gaussian densities in the codebook.
const DENSITIES: u64 = 256;

/// Builds the sphinx3 module.
#[must_use]
pub fn sphinx3() -> Module {
    let mut mb = ModuleBuilder::new();

    let means = mb.global(Global::from_words(
        "means",
        &lcg_words(0x5F17, (DIMS * DENSITIES) as usize)
            .iter()
            .map(|w| w % (1 << 16))
            .collect::<Vec<_>>(),
    ));

    // gen_feat(feat_ptr, seed): fill the caller's stack feature vector.
    let gen_feat = mb.function("gen_feat", 2, false, |fb| {
        let feat = fb.param(0);
        let seed = fb.param(1);
        let state = fb.local_scalar();
        let sv = fb.get(seed);
        fb.set(state, sv);
        let i = fb.local_scalar();
        let nd = const_local(fb, DIMS);
        fb.counted_loop(i, 0, nd, 1, |fb, iv| {
            let s = fb.get(state);
            let s2 = lcg_step(fb, s);
            fb.set(state, s2);
            let v = fb.bin_imm(AluOp::And, s2, 0xFFFF);
            let base = fb.get(feat);
            store_idx(fb, base, iv, 8, Width::B8, v);
        });
        fb.ret(None);
    });

    // score_density(feat_ptr, density) -> dot product of the feature with
    // the density's mean vector (single-block inner loop, unrollable).
    let score = mb.function("score_density", 2, true, |fb| {
        let feat = fb.param(0);
        let density = fb.param(1);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        let nd = const_local(fb, DIMS);
        fb.counted_loop(i, 0, nd, 1, |fb, iv| {
            // Compute both addresses first so the two loads issue
            // back-to-back, like a real dot-product's paired streams.
            let fbase = fb.get(feat);
            let foff = fb.mul_imm(iv, 8);
            let faddr = fb.add(fbase, foff);
            let dv = fb.get(density);
            let row = fb.mul_imm(dv, DIMS as i64);
            let idx = fb.add(row, iv);
            let mbase = fb.addr_global(means);
            let moff = fb.mul_imm(idx, 8);
            let maddr = fb.add(mbase, moff);
            let f = fb.load(Width::B8, faddr, 0);
            let m = fb.load(Width::B8, maddr, 0);
            let p = fb.mul(f, m);
            let scaled = fb.bin_imm(AluOp::Srl, p, 8);
            let a = fb.get(acc);
            let a2 = fb.add(a, scaled);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    // best_density(feat_ptr) -> (best_score << 8) | best_index, branch-free.
    let best = mb.function("best_density", 1, true, |fb| {
        let feat = fb.param(0);
        let best_v = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(best_v, z);
        let best_i = fb.local_scalar();
        fb.set(best_i, z);
        let d = fb.local_scalar();
        let nd = const_local(fb, DENSITIES);
        fb.counted_loop(d, 0, nd, 1, |fb, dv| {
            let fp = fb.get(feat);
            let s = fb.call(score, &[fp, dv]);
            // if s > best: best = s, best_i = d (branch-free select)
            let b = fb.get(best_v);
            let gt = fb.bin(AluOp::Sltu, b, s);
            let diff = fb.sub(s, b);
            let sel = fb.mul(gt, diff);
            let nb = fb.add(b, sel);
            fb.set(best_v, nb);
            let bi = fb.get(best_i);
            let dv2 = fb.get(d);
            let di = fb.sub(dv2, bi);
            let seli = fb.mul(gt, di);
            let nbi = fb.add(bi, seli);
            fb.set(best_i, nbi);
        });
        let bv = fb.get(best_v);
        let shifted = fb.bin_imm(AluOp::Sll, bv, 8);
        let bi = fb.get(best_i);
        let packed = fb.add(shifted, bi);
        fb.ret(Some(packed));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let feat = fb.local_buffer((DIMS * 8) as u32);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let frame = fb.local_scalar();
        fb.counted_loop(frame, 0, n, 1, |fb, fv| {
            let fp = fb.addr(feat);
            let seed = fb.add_imm(fv, 0x51);
            fb.call_void(gen_feat, &[fp, seed]);
            let fp2 = fb.addr(feat);
            let b = fb.call(best, &[fp2]);
            fb.chk(b);
            let a = fb.get(acc);
            let a2 = fb.bin(AluOp::Xor, a, b);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("sphinx3 module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn best_density_index_in_range() {
        let m = sphinx3();
        let out = Interpreter::new(&m).call_by_name("main", &[2]).unwrap();
        assert_ne!(out.checksum, 0);
    }

    #[test]
    fn scoring_is_frame_sensitive() {
        let m = sphinx3();
        let a = Interpreter::new(&m).call_by_name("main", &[1]).unwrap();
        let b = Interpreter::new(&m).call_by_name("main", &[3]).unwrap();
        assert_ne!(a.checksum, b.checksum);
    }
}
