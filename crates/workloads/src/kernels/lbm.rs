//! `lbm` — lattice-Boltzmann in miniature: a double-buffered 5-point
//! stencil sweep over a 2-D grid. Streaming loads with spatial reuse and a
//! long single-block inner loop.

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{const_local, lcg_words, load_idx, store_idx};

/// Grid side; two grids of SIDE² u64 cells (18 KiB each).
const SIDE: u64 = 80;

/// Builds the lbm module.
#[must_use]
pub fn lbm() -> Module {
    let mut mb = ModuleBuilder::new();

    let grid0 = mb.global(Global::from_words(
        "grid0",
        &lcg_words(0x1B3, (SIDE * SIDE) as usize)
            .iter()
            .map(|w| w % (1 << 20))
            .collect::<Vec<_>>(),
    ));
    let grid1 = mb.global(Global::zeroed("grid1", (SIDE * SIDE * 8) as u32));

    // sweep(dir): one relaxation step; dir 0 reads grid0→grid1, dir 1 the
    // reverse. Returns the sum over interior cells.
    let sweep = mb.function("stencil_sweep", 1, true, |fb| {
        let dir = fb.param(0);
        let src = fb.local_scalar();
        let dst = fb.local_scalar();
        let d = fb.get(dir);
        let zero = fb.const_(0);
        fb.if_then_else(
            Cond::Eq,
            d,
            zero,
            |fb| {
                let s = fb.addr_global(grid0);
                fb.set(src, s);
                let t = fb.addr_global(grid1);
                fb.set(dst, t);
            },
            |fb| {
                let s = fb.addr_global(grid1);
                fb.set(src, s);
                let t = fb.addr_global(grid0);
                fb.set(dst, t);
            },
        );
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let y = fb.local_scalar();
        let ny = const_local(fb, SIDE - 1);
        let x = fb.local_scalar();
        let nx = const_local(fb, SIDE - 1);
        fb.counted_loop(y, 1, ny, 1, |fb, yv| {
            let _ = yv;
            fb.counted_loop(x, 1, nx, 1, |fb, xv| {
                let yv2 = fb.get(y);
                let row = fb.mul_imm(yv2, SIDE as i64);
                let idx = fb.add(row, xv);
                let sbase = fb.get(src);
                let center = load_idx(fb, sbase, idx, 8, Width::B8);
                let up_i = fb.add_imm(idx, -(SIDE as i64));
                let sbase2 = fb.get(src);
                let up = load_idx(fb, sbase2, up_i, 8, Width::B8);
                let down_i = fb.add_imm(idx, SIDE as i64);
                let sbase3 = fb.get(src);
                let down = load_idx(fb, sbase3, down_i, 8, Width::B8);
                let left_i = fb.add_imm(idx, -1);
                let sbase4 = fb.get(src);
                let left = load_idx(fb, sbase4, left_i, 8, Width::B8);
                let right_i = fb.add_imm(idx, 1);
                let sbase5 = fb.get(src);
                let right = load_idx(fb, sbase5, right_i, 8, Width::B8);
                // new = (4*center + up + down + left + right) / 8 + 1
                let c4 = fb.mul_imm(center, 4);
                let s1 = fb.add(c4, up);
                let s2 = fb.add(s1, down);
                let s3 = fb.add(s2, left);
                let s4 = fb.add(s3, right);
                let avg = fb.bin_imm(AluOp::Srl, s4, 3);
                let new = fb.add_imm(avg, 1);
                let dbase = fb.get(dst);
                store_idx(fb, dbase, idx, 8, Width::B8, new);
                let a = fb.get(acc);
                let a2 = fb.add(a, new);
                fb.set(acc, a2);
            });
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    // inject(iter): stirs the flow by writing a source term along the
    // diagonal of whichever grid is the next sweep's source.
    let inject = mb.function("inject_source", 1, false, |fb| {
        let iter = fb.param(0);
        let base = fb.local_scalar();
        let it = fb.get(iter);
        let one = fb.const_(1);
        let parity = fb.bin(AluOp::And, it, one);
        let zero = fb.const_(0);
        fb.if_then_else(
            Cond::Eq,
            parity,
            zero,
            |fb| {
                let b = fb.addr_global(grid0);
                fb.set(base, b);
            },
            |fb| {
                let b = fb.addr_global(grid1);
                fb.set(base, b);
            },
        );
        let d = fb.local_scalar();
        let nd = const_local(fb, SIDE);
        fb.counted_loop(d, 0, nd, 1, |fb, dv| {
            let row = fb.mul_imm(dv, SIDE as i64);
            let idx = fb.add(row, dv);
            let b = fb.get(base);
            let cur = load_idx(fb, b, idx, 8, Width::B8);
            let it = fb.get(iter);
            let term = fb.mul_imm(it, 1023);
            let mixed = fb.add(cur, term);
            let bounded = fb.bin_imm(AluOp::And, mixed, (1 << 24) - 1);
            let b2 = fb.get(base);
            store_idx(fb, b2, idx, 8, Width::B8, bounded);
        });
        fb.ret(None);
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            fb.call_void(inject, &[iv]);
            let iv2 = fb.get(iter);
            let dir = fb.bin_imm(AluOp::And, iv2, 1);
            let s = fb.call(sweep, &[dir]);
            fb.chk(s);
            let a = fb.get(acc);
            let a2 = fb.add(a, s);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("lbm module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn sweeps_alternate_buffers_and_stay_bounded() {
        let m = lbm();
        let out = Interpreter::new(&m).call_by_name("main", &[4]).unwrap();
        assert_ne!(out.checksum, 0);
    }

    #[test]
    fn sweep_touches_interior_only() {
        let m = lbm();
        let mut interp = Interpreter::new(&m);
        interp.call_by_name("stencil_sweep", &[0]).unwrap();
        let g1 = m.globals.iter().position(|g| g.name == "grid1").unwrap();
        let base = interp.global_addr(g1);
        // Border cells of grid1 remain zero.
        assert_eq!(interp.memory().read_u64(base), 0);
        assert_eq!(interp.memory().read_u64(base + 8 * (SIDE as u32 - 1)), 0);
        // An interior cell was written.
        assert_ne!(interp.memory().read_u64(base + 8 * (SIDE as u32 + 1)), 0);
    }
}
