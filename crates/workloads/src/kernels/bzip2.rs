//! `bzip2` — counting sort and move-to-front, the heart of the BWT
//! compressor: byte-granular loads, data-dependent inner search loops.

use biaslab_isa::{AluOp, Cond, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{array_addr, const_local, lcg_words, load_idx, store_idx};

const INPUT_BYTES: u64 = 1024;

/// Builds the bzip2 module.
#[must_use]
pub fn bzip2() -> Module {
    let mut mb = ModuleBuilder::new();

    // Pseudo-random but compressible-ish input: bytes biased to low values.
    let words = lcg_words(0xB2122, (INPUT_BYTES / 8) as usize);
    let bytes: Vec<u8> = words
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .map(|b| b % 23)
        .collect();
    let input = mb.global(Global {
        name: "input".into(),
        size: INPUT_BYTES as u32,
        align: 8,
        init: bytes,
    });
    let freq = mb.global(Global::zeroed("freq", 256 * 8));

    // count_pass(): histogram of input bytes into freq, returns total.
    let count_pass = mb.function("count_pass", 0, true, |fb| {
        // Clear the histogram.
        let i = fb.local_scalar();
        let n256 = const_local(fb, 256);
        fb.counted_loop(i, 0, n256, 1, |fb, iv| {
            let base = fb.addr_global(freq);
            let z = fb.const_(0);
            store_idx(fb, base, iv, 8, Width::B8, z);
        });
        // Count.
        let j = fb.local_scalar();
        let nin = const_local(fb, INPUT_BYTES);
        fb.counted_loop(j, 0, nin, 1, |fb, jv| {
            let ibase = fb.addr_global(input);
            let b = load_idx(fb, ibase, jv, 1, Width::B1);
            let fbase = fb.addr_global(freq);
            let slot = array_addr(fb, fbase, b, 8);
            let c = fb.load(Width::B8, slot, 0);
            let c2 = fb.add_imm(c, 1);
            fb.store(Width::B8, slot, 0, c2);
        });
        // Prefix sum; return the final total.
        let total = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(total, z);
        let k = fb.local_scalar();
        let n256b = const_local(fb, 256);
        fb.counted_loop(k, 0, n256b, 1, |fb, kv| {
            let fbase = fb.addr_global(freq);
            let slot = array_addr(fb, fbase, kv, 8);
            let c = fb.load(Width::B8, slot, 0);
            let t = fb.get(total);
            let t2 = fb.add(t, c);
            fb.set(total, t2);
            fb.store(Width::B8, slot, 0, t2);
        });
        let r = fb.get(total);
        fb.ret(Some(r));
    });

    // mtf_pass(salt) -> checksum of move-to-front positions. The MTF table
    // lives on the stack (256 bytes), giving the kernel an env-sensitive
    // hot buffer.
    let mtf_pass = mb.function("mtf_pass", 1, true, |fb| {
        let salt = fb.param(0);
        let table = fb.local_buffer(256);
        // Initialize the identity permutation.
        let i = fb.local_scalar();
        let n256 = const_local(fb, 256);
        fb.counted_loop(i, 0, n256, 1, |fb, iv| {
            let tbase = fb.addr(table);
            store_idx(fb, tbase, iv, 1, Width::B1, iv);
        });
        let acc = fb.local_scalar();
        let sv = fb.get(salt);
        fb.set(acc, sv);
        let j = fb.local_scalar();
        let nin = const_local(fb, INPUT_BYTES);
        let pos = fb.local_scalar();
        fb.counted_loop(j, 0, nin, 1, |fb, jv| {
            let _ = jv;
            // b = input[j]
            let jj = fb.get(j);
            let ibase = fb.addr_global(input);
            let b = load_idx(fb, ibase, jj, 1, Width::B1);
            let target = fb.local_scalar();
            fb.set(target, b);
            // Find b in the table (data-dependent search).
            let zp = fb.const_(0);
            fb.set(pos, zp);
            fb.while_loop(
                |fb| {
                    let p = fb.get(pos);
                    let tbase = fb.addr(table);
                    let cur = load_idx(fb, tbase, p, 1, Width::B1);
                    let want = fb.get(target);
                    (Cond::Ne, cur, want)
                },
                |fb| {
                    let p = fb.get(pos);
                    let p2 = fb.add_imm(p, 1);
                    fb.set(pos, p2);
                },
            );
            // Shift table[0..pos] up by one, put b at the front.
            let k = fb.local_scalar();
            fb.counted_loop(k, 0, pos, 1, |fb, kv| {
                // table[pos-kv] = table[pos-kv-1] — walk from the back.
                let p = fb.get(pos);
                let dst = fb.sub(p, kv);
                let src = fb.add_imm(dst, -1);
                let tbase = fb.addr(table);
                let v = load_idx(fb, tbase, src, 1, Width::B1);
                let tbase2 = fb.addr(table);
                store_idx(fb, tbase2, dst, 1, Width::B1, v);
            });
            let tbase = fb.addr(table);
            let zero = fb.const_(0);
            let bv = fb.get(target);
            store_idx(fb, tbase, zero, 1, Width::B1, bv);
            // Fold the position into the checksum accumulator.
            let p = fb.get(pos);
            let a = fb.get(acc);
            let rot = fb.bin_imm(AluOp::Sll, a, 1);
            let hi = fb.bin_imm(AluOp::Srl, a, 63);
            let rotated = fb.bin(AluOp::Or, rot, hi);
            let a2 = fb.bin(AluOp::Xor, rotated, p);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            let total = fb.call(count_pass, &[]);
            fb.chk(total);
            let m = fb.call(mtf_pass, &[iv]);
            fb.chk(m);
            let a = fb.get(acc);
            let a2 = fb.add(a, m);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("bzip2 module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn count_pass_counts_all_input_bytes() {
        let m = bzip2();
        let out = Interpreter::new(&m)
            .call_by_name("count_pass", &[])
            .unwrap();
        assert_eq!(out.return_value, Some(INPUT_BYTES));
    }

    #[test]
    fn main_is_deterministic_and_size_sensitive() {
        let m = bzip2();
        let a = Interpreter::new(&m).call_by_name("main", &[1]).unwrap();
        let b = Interpreter::new(&m).call_by_name("main", &[2]).unwrap();
        assert_ne!(a.checksum, b.checksum);
    }
}
