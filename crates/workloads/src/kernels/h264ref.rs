//! `h264ref` — block motion estimation: sum-of-absolute-differences over
//! 8×8 pixel blocks against nine candidate offsets, with the branch-heavy
//! best-candidate tracking of a real encoder's search loop.
//!
//! Like a real encoder, the current block is first copied into a stack
//! buffer; the SAD inner loop then streams the stack copy against the
//! reference frame in lockstep — the paired stack/global access pattern
//! whose bank alignment moves with the environment size.

use biaslab_isa::{AluOp, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{const_local, emit_absdiff, lcg_words, load_idx};

/// Frame side in pixels (one byte per pixel).
const SIDE: u64 = 32;
const BLOCK: u64 = 8;

fn frame_bytes(seed: u64) -> Vec<u8> {
    lcg_words(seed, (SIDE * SIDE / 8) as usize)
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect()
}

/// Builds the h264ref module.
#[must_use]
pub fn h264ref() -> Module {
    let mut mb = ModuleBuilder::new();

    let cur = mb.global(Global {
        name: "frame_cur".into(),
        size: (SIDE * SIDE) as u32,
        align: 8,
        init: frame_bytes(0x264),
    });
    // The reference frame is the current frame shifted by one pixel plus
    // noise, so motion search has realistic structure to find.
    let mut ref_bytes = frame_bytes(0x264);
    ref_bytes.rotate_right(SIDE as usize + 1);
    for (i, b) in ref_bytes.iter_mut().enumerate() {
        *b = b.wrapping_add((i as u8) & 3);
    }
    let reff = mb.global(Global {
        name: "frame_ref".into(),
        size: (SIDE * SIDE) as u32,
        align: 8,
        init: ref_bytes,
    });

    // copy_block(dst, bx, by): copy the 8×8 current block at (bx,by) into
    // the caller's stack buffer (row-major, 8 bytes per row).
    let copy_block = mb.function("copy_block", 3, false, |fb| {
        let dst = fb.param(0);
        let bx = fb.param(1);
        let by = fb.param(2);
        let row = fb.local_scalar();
        let nb = const_local(fb, BLOCK);
        let col = fb.local_scalar();
        fb.counted_loop(row, 0, nb, 1, |fb, rv| {
            let _ = rv;
            fb.counted_loop(col, 0, nb, 1, |fb, cv| {
                let byv = fb.get(by);
                let rv2 = fb.get(row);
                let y = fb.add(byv, rv2);
                let row_off = fb.mul_imm(y, SIDE as i64);
                let bxv = fb.get(bx);
                let x = fb.add(bxv, cv);
                let idx = fb.add(row_off, x);
                let cbase = fb.addr_global(cur);
                let p = load_idx(fb, cbase, idx, 1, Width::B1);
                let dbase = fb.get(dst);
                let rv3 = fb.get(row);
                let drow = fb.mul_imm(rv3, BLOCK as i64);
                let cv2 = fb.get(col);
                let didx = fb.add(drow, cv2);
                let daddr = fb.add(dbase, didx);
                fb.store(Width::B1, daddr, 0, p);
            });
        });
        fb.ret(None);
    });

    // sad(block, bx, by, ox, oy) -> SAD of the stack block copy against
    // the reference block at (bx+ox, by+oy). The two byte streams advance
    // in lockstep.
    let sad = mb.function("block_sad", 5, true, |fb| {
        let block = fb.param(0);
        let bx = fb.param(1);
        let by = fb.param(2);
        let ox = fb.param(3);
        let oy = fb.param(4);
        let total = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(total, z);
        let row = fb.local_scalar();
        let nb = const_local(fb, BLOCK);
        let col = fb.local_scalar();
        fb.counted_loop(row, 0, nb, 1, |fb, rv| {
            let _ = rv;
            fb.counted_loop(col, 0, nb, 1, |fb, cv| {
                // Stack-block address.
                let bbase = fb.get(block);
                let rv2 = fb.get(row);
                let brow = fb.mul_imm(rv2, BLOCK as i64);
                let bidx = fb.add(brow, cv);
                let baddr = fb.add(bbase, bidx);
                // Reference address: ref[(by+row+oy)&.. * SIDE + (bx+col+ox)&..]
                let byv = fb.get(by);
                let rv3 = fb.get(row);
                let y0 = fb.add(byv, rv3);
                let oyv = fb.get(oy);
                let y1 = fb.add(y0, oyv);
                let y = fb.bin_imm(AluOp::And, y1, (SIDE - 1) as i64);
                let rrow = fb.mul_imm(y, SIDE as i64);
                let bxv = fb.get(bx);
                let cv2 = fb.get(col);
                let x0 = fb.add(bxv, cv2);
                let oxv = fb.get(ox);
                let x1 = fb.add(x0, oxv);
                let x = fb.bin_imm(AluOp::And, x1, (SIDE - 1) as i64);
                let ridx = fb.add(rrow, x);
                let rbase = fb.addr_global(reff);
                let raddr = fb.add(rbase, ridx);
                // Paired loads, back to back.
                let p_cur = fb.load(Width::B1, baddr, 0);
                let p_ref = fb.load(Width::B1, raddr, 0);
                let d = emit_absdiff(fb, p_cur, p_ref);
                let t = fb.get(total);
                let t2 = fb.add(t, d);
                fb.set(total, t2);
            });
        });
        let r = fb.get(total);
        fb.ret(Some(r));
    });

    // search(bx, by) -> best (sad << 8 | candidate) over 9 offsets.
    let search = mb.function("motion_search", 2, true, |fb| {
        let bx = fb.param(0);
        let by = fb.param(1);
        let block = fb.local_buffer((BLOCK * BLOCK) as u32);
        let bp0 = fb.addr(block);
        let bxv0 = fb.get(bx);
        let byv0 = fb.get(by);
        fb.call_void(copy_block, &[bp0, bxv0, byv0]);
        let best = fb.local_scalar();
        let huge = fb.const_(u64::MAX >> 1);
        fb.set(best, huge);
        let cand = fb.local_scalar();
        let nine = const_local(fb, 9);
        fb.counted_loop(cand, 0, nine, 1, |fb, cv| {
            // offsets ox,oy in {-1,0,1}
            let ox0 = fb.bin_imm(AluOp::Rem, cv, 3);
            let ox = fb.add_imm(ox0, -1);
            let oy0 = fb.bin_imm(AluOp::Div, cv, 3);
            let oy = fb.add_imm(oy0, -1);
            let bp = fb.addr(block);
            let bxv = fb.get(bx);
            let byv = fb.get(by);
            let s = fb.call(sad, &[bp, bxv, byv, ox, oy]);
            let scored0 = fb.bin_imm(AluOp::Sll, s, 8);
            let cv2 = fb.get(cand);
            let scored = fb.add(scored0, cv2);
            // Track the minimum branch-free to keep the loop body one
            // block (the branchy version lives in the encoder's caller).
            let b = fb.get(best);
            let lt = fb.bin(AluOp::Sltu, scored, b);
            let diff = fb.sub(scored, b);
            let sel = fb.mul(lt, diff);
            let nb = fb.add(b, sel);
            fb.set(best, nb);
        });
        let r = fb.get(best);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        let blocks_per_side = SIDE / BLOCK;
        let bx = fb.local_scalar();
        let by = fb.local_scalar();
        let nbs = const_local(fb, blocks_per_side);
        let nbs2 = const_local(fb, blocks_per_side);
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            let _ = iv;
            fb.counted_loop(by, 0, nbs, 1, |fb, byv| {
                let _ = byv;
                fb.counted_loop(bx, 0, nbs2, 1, |fb, bxv| {
                    let px = fb.mul_imm(bxv, BLOCK as i64);
                    let byv2 = fb.get(by);
                    let py = fb.mul_imm(byv2, BLOCK as i64);
                    let best = fb.call(search, &[px, py]);
                    let a = fb.get(acc);
                    let a2 = fb.add(a, best);
                    fb.set(acc, a2);
                });
            });
            // Mix the iteration index in so successive (otherwise
            // identical) frames do not cancel under the checksum fold.
            let a = fb.get(acc);
            let scaled = fb.mul_imm(a, 31);
            let it = fb.get(iter);
            let mixed = fb.add(scaled, it);
            fb.set(acc, mixed);
            fb.chk(mixed);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("h264ref module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;

    use super::*;

    #[test]
    fn search_returns_a_candidate_in_range() {
        let m = h264ref();
        let out = Interpreter::new(&m)
            .call_by_name("motion_search", &[16, 16])
            .unwrap();
        let cand = out.return_value.unwrap() & 0xFF;
        assert!(cand < 9, "candidate {cand}");
    }

    #[test]
    fn main_is_deterministic_and_iteration_sensitive() {
        let m = h264ref();
        let a = Interpreter::new(&m).call_by_name("main", &[1]).unwrap();
        let a2 = Interpreter::new(&m).call_by_name("main", &[1]).unwrap();
        let b = Interpreter::new(&m).call_by_name("main", &[2]).unwrap();
        assert_eq!(a.checksum, a2.checksum);
        assert_ne!(a.checksum, b.checksum);
        assert_ne!(b.checksum, 0);
    }
}
