//! `milc` — fixed-point lattice arithmetic: dense, multiply-heavy,
//! perfectly predictable loops (the QCD su3 multiply in miniature). The
//! single-block inner loops are exactly what `O3`'s unroller targets.

use biaslab_isa::{AluOp, Width};
use biaslab_toolchain::ir::Global;
use biaslab_toolchain::{Module, ModuleBuilder};

use crate::util::{const_local, lcg_words, load_idx, store_idx};

/// Lattice sites (three vectors of 1024 u64 = 24 KiB total).
const SITES: u64 = 4096;

/// Builds the milc module.
#[must_use]
pub fn milc() -> Module {
    let mut mb = ModuleBuilder::new();

    let a = mb.global(Global::from_words(
        "lat_a",
        &lcg_words(0x111C, SITES as usize),
    ));
    let b = mb.global(Global::from_words(
        "lat_b",
        &lcg_words(0x222C, SITES as usize),
    ));
    let c = mb.global(Global::zeroed("lat_c", (SITES * 8) as u32));

    // su3_combine(): c[i] = (a[i]*b[i])>>16 + a[i] - (b[i]>>3), elementwise.
    let combine = mb.function("su3_combine", 0, true, |fb| {
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        let n = const_local(fb, SITES);
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            let abase = fb.addr_global(a);
            let av = load_idx(fb, abase, iv, 8, Width::B8);
            let bbase = fb.addr_global(b);
            let bv = load_idx(fb, bbase, iv, 8, Width::B8);
            let prod = fb.mul(av, bv);
            let hi = fb.bin_imm(AluOp::Srl, prod, 16);
            let sum = fb.add(hi, av);
            let b3 = fb.bin_imm(AluOp::Srl, bv, 3);
            let out = fb.sub(sum, b3);
            let cbase = fb.addr_global(c);
            store_idx(fb, cbase, iv, 8, Width::B8, out);
            let acc_v = fb.get(acc);
            let acc2 = fb.add(acc_v, out);
            fb.set(acc, acc2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    // gauge_shift(): a[i] = c[(i+1) mod SITES] ^ rotl(a[i], 7) — a
    // neighbour shift with a twist, still single-block and unrollable.
    let shift = mb.function("gauge_shift", 0, true, |fb| {
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let i = fb.local_scalar();
        let n = const_local(fb, SITES);
        fb.counted_loop(i, 0, n, 1, |fb, iv| {
            let next = fb.add_imm(iv, 1);
            let wrapped = fb.bin_imm(AluOp::And, next, (SITES - 1) as i64);
            let cbase = fb.addr_global(c);
            let cv = load_idx(fb, cbase, wrapped, 8, Width::B8);
            let abase = fb.addr_global(a);
            let av = load_idx(fb, abase, iv, 8, Width::B8);
            let lo = fb.bin_imm(AluOp::Sll, av, 7);
            let hi = fb.bin_imm(AluOp::Srl, av, 57);
            let rot = fb.bin(AluOp::Or, lo, hi);
            let out = fb.bin(AluOp::Xor, cv, rot);
            let abase2 = fb.addr_global(a);
            store_idx(fb, abase2, iv, 8, Width::B8, out);
            let acc_v = fb.get(acc);
            let acc2 = fb.bin(AluOp::Xor, acc_v, out);
            fb.set(acc, acc2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.function("main", 1, true, |fb| {
        let n = fb.param(0);
        let acc = fb.local_scalar();
        let z = fb.const_(0);
        fb.set(acc, z);
        let iter = fb.local_scalar();
        fb.counted_loop(iter, 0, n, 1, |fb, iv| {
            let _ = iv;
            let s1 = fb.call(combine, &[]);
            fb.chk(s1);
            let s2 = fb.call(shift, &[]);
            fb.chk(s2);
            let a_v = fb.get(acc);
            let a2 = fb.add(a_v, s2);
            fb.set(acc, a2);
        });
        let r = fb.get(acc);
        fb.ret(Some(r));
    });

    mb.finish().expect("milc module is valid")
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::interp::Interpreter;
    use biaslab_toolchain::opt::{optimize, OptLevel};

    use super::*;

    #[test]
    fn unrolling_applies_to_the_lattice_loops() {
        let m = milc();
        let o3 = optimize(&m, OptLevel::O3);
        let combine_o0 = m
            .functions
            .iter()
            .find(|f| f.name == "su3_combine")
            .unwrap();
        let combine_o3 = o3
            .functions
            .iter()
            .find(|f| f.name == "su3_combine")
            .unwrap();
        assert!(
            combine_o3.op_count() > combine_o0.op_count(),
            "O3 should replicate the loop body"
        );
    }

    #[test]
    fn lattice_updates_are_deterministic() {
        let m = milc();
        let a = Interpreter::new(&m).call_by_name("main", &[2]).unwrap();
        let b = Interpreter::new(&m).call_by_name("main", &[2]).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_ne!(a.checksum, 0);
    }
}
