//! # biaslab-workloads — a miniature SPEC CPU2006 C suite
//!
//! Twelve benchmarks, one per SPEC CPU2006 C program, written in the
//! `biaslab` IR. Each miniature imitates its namesake's dominant behaviour
//! (the paper evaluates on the real suite, which is proprietary and — more
//! importantly — would be compiled by the *native* toolchain rather than
//! the simulated one this reproduction measures):
//!
//! | name | behaviour |
//! |------|-----------|
//! | `perlbench`  | hash table + bytecode-dispatch interpreter |
//! | `bzip2`      | counting sort + move-to-front transform |
//! | `gcc`        | expression-tree construction and constant folding |
//! | `mcf`        | pointer-chasing cost relaxation over a network |
//! | `milc`       | fixed-point lattice arithmetic (mul-heavy loops) |
//! | `gobmk`      | board scanning with recursive flood fill |
//! | `hmmer`      | dynamic-programming matrix fill on stack rows |
//! | `sjeng`      | recursive game search + transposition table |
//! | `libquantum` | streaming bit manipulation over a register file |
//! | `h264ref`    | sum-of-absolute-differences motion search |
//! | `lbm`        | double-buffered stencil relaxation |
//! | `sphinx3`    | dot-product scoring against an active list |
//!
//! Every benchmark checksums its observable results with the `chk`
//! instruction; [`Benchmark::expected`] computes the reference outcome with
//! the IR interpreter, and the suite's differential tests assert that every
//! optimization level on every machine reproduces it exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod suite;
pub mod util;

pub use suite::{benchmark_by_name, suite, Benchmark, Expected, InputSize};
