//! Deep semantic invariants of individual kernels, checked through the
//! reference interpreter's memory — the workloads must *be* the algorithms
//! they claim to miniaturize, not just produce stable checksums.

use biaslab_toolchain::interp::Interpreter;
use biaslab_workloads::benchmark_by_name;

fn global_addr(interp: &Interpreter<'_>, module: &biaslab_toolchain::Module, name: &str) -> u32 {
    let idx = module
        .globals
        .iter()
        .position(|g| g.name == name)
        .unwrap_or_else(|| panic!("global {name}"));
    interp.global_addr(idx)
}

#[test]
fn bzip2_histogram_is_a_prefix_sum_totalling_the_input() {
    let b = benchmark_by_name("bzip2").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    interp.call_by_name("count_pass", &[]).unwrap();
    let freq = global_addr(&interp, &m, "freq");
    // After the prefix-sum pass, freq must be non-decreasing and end at
    // the input length.
    let mut prev = 0;
    for i in 0..256u32 {
        let v = interp.memory().read_u64(freq + i * 8);
        assert!(v >= prev, "prefix sums must be monotone at {i}");
        prev = v;
    }
    assert_eq!(prev, 1024, "final cumulative count equals the input size");
}

#[test]
fn gobmk_marks_exactly_the_stones() {
    let b = benchmark_by_name("gobmk").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    interp.call_by_name("board_reseed", &[3]).unwrap();
    let board = global_addr(&interp, &m, "board");
    let marks = global_addr(&interp, &m, "marks");
    let stones: u32 = (0..1024)
        .map(|i| u32::from(interp.memory().read_u8(board + i)))
        .sum();
    let scanned = interp
        .call_by_name("board_scan", &[])
        .unwrap()
        .return_value
        .unwrap();
    // Flood fill visits each stone exactly once, so the total region size
    // equals the stone count…
    assert_eq!(scanned, u64::from(stones));
    // …and afterwards marks ⊆ board and cover every stone.
    for i in 0..1024 {
        let s = interp.memory().read_u8(board + i);
        let mk = interp.memory().read_u8(marks + i);
        assert!(mk <= s, "cell {i}: marked non-stone");
        assert_eq!(mk, s, "cell {i}: unmarked stone");
    }
}

#[test]
fn mcf_potentials_stay_bounded_under_relaxation() {
    // The relaxation updates are contraction-like; potentials must not blow
    // up over many iterations (guards against overflow artifacts in the
    // kernel's fixed-point arithmetic).
    let b = benchmark_by_name("mcf").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    interp.call_by_name("main", &[30]).unwrap();
    let pot = global_addr(&interp, &m, "potential");
    for i in 0..64u32 {
        let v = interp.memory().read_u64(pot + i * 8);
        assert!(v < 1 << 40, "potential[{i}] = {v} diverged");
    }
}

#[test]
fn sjeng_table_entries_are_tagged_consistently() {
    let b = benchmark_by_name("sjeng").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    interp.call_by_name("main", &[2]).unwrap();
    let tt = global_addr(&interp, &m, "ttable");
    let mut filled = 0;
    for i in 0..4096u32 {
        let key = interp.memory().read_u64(tt + i * 16);
        if key != 0 {
            filled += 1;
            // Keys are constructed with the low bit set, and must index to
            // their own slot.
            assert_eq!(key & 1, 1, "slot {i}: key {key:#x} untagged");
            assert_eq!(key & 4095, u64::from(i), "slot {i}: key in the wrong slot");
        }
    }
    assert!(
        filled > 100,
        "the search should populate the table, got {filled}"
    );
}

#[test]
fn h264_motion_search_finds_the_planted_shift() {
    // The reference frame is the current frame shifted by (1, 1); the
    // search over ±1 must therefore prefer that offset (candidate 8 is
    // ox=+1, oy=+1... candidate index = (oy+1)*3 + (ox+1)) for most blocks.
    let b = benchmark_by_name("h264ref").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    let mut best_counts = [0u32; 9];
    for by in 0..4u64 {
        for bx in 0..4u64 {
            let packed = interp
                .call_by_name("motion_search", &[bx * 8, by * 8])
                .unwrap()
                .return_value
                .unwrap();
            best_counts[(packed & 0xFF) as usize] += 1;
        }
    }
    // rotate_right(SIDE+1) shifts content down-right; the best candidate
    // should be biased away from uniform.
    let max = *best_counts.iter().max().unwrap();
    assert!(max >= 6, "one offset should dominate, got {best_counts:?}");
}

#[test]
fn libquantum_swap_is_an_involution_up_to_rotation() {
    let b = benchmark_by_name("libquantum").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    let qreg = global_addr(&interp, &m, "qreg");
    let before0 = interp.memory().read_u64(qreg);
    let before1 = interp.memory().read_u64(qreg + 8);
    interp.call_by_name("gate_swap", &[]).unwrap();
    // swap writes amp[even] = old odd, amp[odd] = old even << 1.
    assert_eq!(interp.memory().read_u64(qreg), before1);
    assert_eq!(interp.memory().read_u64(qreg + 8), before0 << 1);
}

#[test]
fn gcc_fold_is_idempotent_per_tree() {
    // Folding rewrites the tree to a leaf; folding a fresh identical tree
    // twice in a row (second fold of the same root) returns the same value.
    let b = benchmark_by_name("gcc").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    let root = interp
        .call_by_name("tree_build", &[5, 42])
        .unwrap()
        .return_value
        .unwrap();
    let first = interp
        .call_by_name("tree_fold", &[root])
        .unwrap()
        .return_value
        .unwrap();
    let second = interp
        .call_by_name("tree_fold", &[root])
        .unwrap()
        .return_value
        .unwrap();
    assert_eq!(first, second, "fold must be idempotent on a folded tree");
}

#[test]
fn sphinx3_best_density_is_in_range_for_many_frames() {
    let b = benchmark_by_name("sphinx3").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    // Drive best_density directly over synthetic feature vectors placed in
    // a global scratch... simpler: run main and decode each chk'd value.
    let out = interp.call_by_name("main", &[6]).unwrap();
    let _ = out;
    // Direct check on one frame via the public functions:
    // gen_feat needs a pointer; reuse the means table's tail as scratch is
    // invasive — instead check score_density bounds for a few densities.
    for d in [0u64, 1, 63, 255] {
        let mut i2 = Interpreter::new(&m);
        // A null feature pointer reads zero-page memory (defined: zeros),
        // so the dot product must be zero.
        let s = i2
            .call_by_name("score_density", &[0, d])
            .unwrap()
            .return_value
            .unwrap();
        assert_eq!(s, 0, "zero features give zero score for density {d}");
    }
}

#[test]
fn perlbench_hash_table_keys_stay_tagged() {
    let b = benchmark_by_name("perlbench").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    interp.call_by_name("main", &[6]).unwrap();
    let htab = global_addr(&interp, &m, "htab");
    let mut filled = 0;
    for i in 0..4096u32 {
        let key = interp.memory().read_u64(htab + i * 16);
        if key != 0 {
            filled += 1;
            assert_eq!(key & 1, 1, "slot {i}: inserted keys carry the low tag bit");
            assert!(
                key <= 0xFFF | 1,
                "slot {i}: key {key:#x} exceeds the masked range"
            );
        }
    }
    assert!(
        filled > 20,
        "the interpreter should populate the table, got {filled}"
    );
}

#[test]
fn lbm_cells_remain_bounded_by_construction() {
    // new = (4c + up + down + left + right)/8 + 1 with a 2^24 injection
    // clamp: cells must stay far below 2^25 over many sweeps.
    let b = benchmark_by_name("lbm").expect("in suite");
    let m = b.module().clone();
    let mut interp = Interpreter::new(&m);
    interp.call_by_name("main", &[12]).unwrap();
    for gname in ["grid0", "grid1"] {
        let g = global_addr(&interp, &m, gname);
        for i in 0..(80 * 80) {
            let v = interp.memory().read_u64(g + i * 8);
            assert!(
                v < 1 << 25,
                "{gname}[{i}] = {v} exceeded the clamp envelope"
            );
        }
    }
}
