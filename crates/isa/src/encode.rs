//! Binary encoding of MRV32 instructions.
//!
//! Instructions are fixed 32-bit words. The top 6 bits hold the opcode; the
//! remaining fields depend on the format:
//!
//! ```text
//! R-type  (ALU):          [31:26] op  [25:21] rd  [20:16] rs1 [15:11] rs2 [10:0] -
//! I-type  (ALUI/mem/...): [31:26] op  [25:21] rd  [20:16] rs1 [15:0]  imm16
//! J-type  (JAL):          [31:26] op  [25:21] rd  [20:0]  imm21 (instruction units)
//! ```
//!
//! Branch and JAL offsets are stored in units of 4 bytes, so a 16-bit branch
//! immediate spans ±128 KiB and the 21-bit JAL immediate spans ±4 MiB —
//! more than the linker ever produces for the workload suite, and checked at
//! encode time.

use std::fmt;

use crate::inst::{AluOp, Cond, Inst, Width};
use crate::reg::Reg;

const OP_ALU: u32 = 0x00;
const OP_LUI: u32 = 0x01;
const OP_LOAD_BASE: u32 = 0x02; // +0 B1, +1 B4, +2 B8
const OP_STORE_BASE: u32 = 0x05; // +0 B1, +1 B4, +2 B8
const OP_BRANCH_BASE: u32 = 0x08; // +cond index, 6 conds
const OP_JAL: u32 = 0x0E;
const OP_JALR: u32 = 0x0F;
const OP_ALUI_BASE: u32 = 0x10; // +AluOp index, 15 ops
const OP_HALT: u32 = 0x30;
const OP_NOP: u32 = 0x31;
const OP_CHK: u32 = 0x32;

/// Error returned by [`decode`] for a word that is not a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
}

impl DecodeError {
    /// The undecodable instruction word.
    #[must_use]
    pub fn word(&self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn field(word: u32, lo: u32, bits: u32) -> u32 {
    (word >> lo) & ((1 << bits) - 1)
}

fn reg_at(word: u32, lo: u32) -> Reg {
    Reg::r(field(word, lo, 5) as u8)
}

fn pack_r(op: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    (op << 26)
        | ((rd.index() as u32) << 21)
        | ((rs1.index() as u32) << 16)
        | ((rs2.index() as u32) << 11)
}

fn pack_i(op: u32, rd: Reg, rs1: Reg, imm: i16) -> u32 {
    (op << 26) | ((rd.index() as u32) << 21) | ((rs1.index() as u32) << 16) | (imm as u16 as u32)
}

fn branch_units(offset: i32) -> u32 {
    assert!(
        offset % 4 == 0,
        "branch offset {offset} not a multiple of 4"
    );
    let units = offset / 4;
    assert!(
        (-(1 << 15)..(1 << 15)).contains(&units),
        "branch offset {offset} out of range"
    );
    (units as i16) as u16 as u32
}

fn jal_units(offset: i32) -> u32 {
    assert!(offset % 4 == 0, "jal offset {offset} not a multiple of 4");
    let units = offset / 4;
    assert!(
        (-(1 << 20)..(1 << 20)).contains(&units),
        "jal offset {offset} out of range"
    );
    (units as u32) & ((1 << 21) - 1)
}

/// Encodes an instruction into its 32-bit binary form.
///
/// # Panics
///
/// Panics if a branch or jump offset is not a multiple of 4 or exceeds the
/// encodable range (±128 KiB for branches, ±4 MiB for `jal`). The toolchain
/// never emits such offsets; hitting this is a linker bug.
///
/// # Examples
///
/// ```
/// use biaslab_isa::{encode, Inst};
///
/// assert_eq!(encode(Inst::Halt) >> 26, 0x30);
/// ```
#[must_use]
pub fn encode(inst: Inst) -> u32 {
    match inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            let funct = AluOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u32;
            pack_r(OP_ALU, rd, rs1, rs2) | funct
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let idx = AluOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u32;
            pack_i(OP_ALUI_BASE + idx, rd, rs1, imm)
        }
        Inst::Lui { rd, imm } => (OP_LUI << 26) | ((rd.index() as u32) << 21) | imm as u32,
        Inst::Load {
            width,
            rd,
            base,
            offset,
        } => {
            let op = OP_LOAD_BASE
                + match width {
                    Width::B1 => 0,
                    Width::B4 => 1,
                    Width::B8 => 2,
                };
            pack_i(op, rd, base, offset)
        }
        Inst::Store {
            width,
            rs,
            base,
            offset,
        } => {
            let op = OP_STORE_BASE
                + match width {
                    Width::B1 => 0,
                    Width::B4 => 1,
                    Width::B8 => 2,
                };
            pack_i(op, rs, base, offset)
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let idx = Cond::ALL
                .iter()
                .position(|&c| c == cond)
                .expect("cond in ALL") as u32;
            ((OP_BRANCH_BASE + idx) << 26)
                | ((rs1.index() as u32) << 21)
                | ((rs2.index() as u32) << 16)
                | branch_units(offset)
        }
        Inst::Jal { rd, offset } => {
            (OP_JAL << 26) | ((rd.index() as u32) << 21) | jal_units(offset)
        }
        Inst::Jalr { rd, rs1, offset } => pack_i(OP_JALR, rd, rs1, offset),
        Inst::Chk { rs } => (OP_CHK << 26) | ((rs.index() as u32) << 21),
        Inst::Halt => OP_HALT << 26,
        Inst::Nop => OP_NOP << 26,
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode is not assigned. Unused fields are
/// ignored, so `decode(encode(i)) == Ok(i)` but decoding is not injective on
/// arbitrary words.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let op = word >> 26;
    let imm16 = word as u16 as i16;
    let inst = match op {
        OP_ALU => {
            let funct = field(word, 0, 11) as usize;
            let alu = *AluOp::ALL.get(funct).ok_or(DecodeError { word })?;
            Inst::Alu {
                op: alu,
                rd: reg_at(word, 21),
                rs1: reg_at(word, 16),
                rs2: reg_at(word, 11),
            }
        }
        OP_LUI => Inst::Lui {
            rd: reg_at(word, 21),
            imm: word as u16,
        },
        op if (OP_LOAD_BASE..OP_LOAD_BASE + 3).contains(&op) => {
            let width = [Width::B1, Width::B4, Width::B8][(op - OP_LOAD_BASE) as usize];
            Inst::Load {
                width,
                rd: reg_at(word, 21),
                base: reg_at(word, 16),
                offset: imm16,
            }
        }
        op if (OP_STORE_BASE..OP_STORE_BASE + 3).contains(&op) => {
            let width = [Width::B1, Width::B4, Width::B8][(op - OP_STORE_BASE) as usize];
            Inst::Store {
                width,
                rs: reg_at(word, 21),
                base: reg_at(word, 16),
                offset: imm16,
            }
        }
        op if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&op) => {
            let cond = Cond::ALL[(op - OP_BRANCH_BASE) as usize];
            Inst::Branch {
                cond,
                rs1: reg_at(word, 21),
                rs2: reg_at(word, 16),
                offset: (imm16 as i32) * 4,
            }
        }
        OP_JAL => {
            let raw = field(word, 0, 21);
            // Sign-extend the 21-bit field.
            let units = ((raw << 11) as i32) >> 11;
            Inst::Jal {
                rd: reg_at(word, 21),
                offset: units * 4,
            }
        }
        OP_JALR => Inst::Jalr {
            rd: reg_at(word, 21),
            rs1: reg_at(word, 16),
            offset: imm16,
        },
        op if (OP_ALUI_BASE..OP_ALUI_BASE + AluOp::ALL.len() as u32).contains(&op) => {
            let alu = AluOp::ALL[(op - OP_ALUI_BASE) as usize];
            Inst::AluImm {
                op: alu,
                rd: reg_at(word, 21),
                rs1: reg_at(word, 16),
                imm: imm16,
            }
        }
        OP_HALT => Inst::Halt,
        OP_NOP => Inst::Nop,
        OP_CHK => Inst::Chk {
            rs: reg_at(word, 21),
        },
        _ => return Err(DecodeError { word }),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst) {
        let word = encode(inst);
        assert_eq!(decode(word), Ok(inst), "word {word:#010x}");
    }

    #[test]
    fn roundtrip_alu_all_ops() {
        for op in AluOp::ALL {
            roundtrip(Inst::Alu {
                op,
                rd: Reg::r(1),
                rs1: Reg::r(2),
                rs2: Reg::r(3),
            });
            roundtrip(Inst::AluImm {
                op,
                rd: Reg::r(4),
                rs1: Reg::r(5),
                imm: -7,
            });
            roundtrip(Inst::AluImm {
                op,
                rd: Reg::r(4),
                rs1: Reg::r(5),
                imm: i16::MAX,
            });
            roundtrip(Inst::AluImm {
                op,
                rd: Reg::r(4),
                rs1: Reg::r(5),
                imm: i16::MIN,
            });
        }
    }

    #[test]
    fn roundtrip_memory_all_widths() {
        for width in [Width::B1, Width::B4, Width::B8] {
            roundtrip(Inst::Load {
                width,
                rd: Reg::r(9),
                base: Reg::SP,
                offset: -32,
            });
            roundtrip(Inst::Store {
                width,
                rs: Reg::r(9),
                base: Reg::GP,
                offset: 1024,
            });
        }
    }

    #[test]
    fn roundtrip_branches_all_conds() {
        for cond in Cond::ALL {
            roundtrip(Inst::Branch {
                cond,
                rs1: Reg::r(6),
                rs2: Reg::r(7),
                offset: -64,
            });
            roundtrip(Inst::Branch {
                cond,
                rs1: Reg::r(6),
                rs2: Reg::r(7),
                offset: 131068,
            });
            roundtrip(Inst::Branch {
                cond,
                rs1: Reg::r(6),
                rs2: Reg::r(7),
                offset: -131072,
            });
        }
    }

    #[test]
    fn roundtrip_jumps_and_misc() {
        roundtrip(Inst::Jal {
            rd: Reg::RA,
            offset: 4 * ((1 << 20) - 1),
        });
        roundtrip(Inst::Jal {
            rd: Reg::RA,
            offset: -4 * (1 << 20),
        });
        roundtrip(Inst::Jal {
            rd: Reg::ZERO,
            offset: -8,
        });
        roundtrip(Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        });
        roundtrip(Inst::Lui {
            rd: Reg::r(12),
            imm: 0xBEEF,
        });
        roundtrip(Inst::Chk { rs: Reg::r(20) });
        roundtrip(Inst::Halt);
        roundtrip(Inst::Nop);
    }

    #[test]
    fn invalid_opcode_is_error() {
        let err = decode(0x3F << 26).unwrap_err();
        assert_eq!(err.word(), 0x3F << 26);
        assert!(err.to_string().contains("invalid instruction"));
    }

    #[test]
    fn invalid_alu_funct_is_error() {
        // ALU opcode with funct beyond AluOp::ALL.
        assert!(decode(AluOp::ALL.len() as u32).is_err());
    }

    #[test]
    #[should_panic(expected = "not a multiple of 4")]
    fn misaligned_branch_offset_panics() {
        let _ = encode(Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            offset: 2,
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_branch_offset_panics() {
        let _ = encode(Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            offset: 1 << 20,
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_jal_offset_panics() {
        let _ = encode(Inst::Jal {
            rd: Reg::RA,
            offset: 4 << 20,
        });
    }
}
