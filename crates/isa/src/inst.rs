//! The instruction model and its disassembly.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::reg::Reg;

/// Integer ALU operation, used by both register and immediate forms.
///
/// All arithmetic is 64-bit two's-complement wrapping. Division follows the
/// RISC-V convention: dividing by zero yields all-ones (`Div`) or the
/// dividend (`Rem`) instead of trapping, which keeps the simulator total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// `rd = rs1 + rs2`
    Add,
    /// `rd = rs1 - rs2`
    Sub,
    /// `rd = rs1 * rs2` (low 64 bits)
    Mul,
    /// `rd = rs1 / rs2` (signed; x/0 = -1)
    Div,
    /// `rd = rs1 % rs2` (signed; x%0 = x)
    Rem,
    /// `rd = rs1 & rs2`
    And,
    /// `rd = rs1 | rs2`
    Or,
    /// `rd = rs1 ^ rs2`
    Xor,
    /// `rd = rs1 << (rs2 & 63)`
    Sll,
    /// `rd = rs1 >> (rs2 & 63)` (logical)
    Srl,
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic)
    Sra,
    /// `rd = (rs1 <s rs2) as u64`
    Slt,
    /// `rd = (rs1 <u rs2) as u64`
    Sltu,
    /// `rd = (rs1 == rs2) as u64`
    Seq,
    /// `rd = (rs1 != rs2) as u64`
    Sne,
}

impl AluOp {
    /// Every ALU operation, in encoding order.
    pub const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
        AluOp::Sne,
    ];

    /// Evaluates the operation on two 64-bit operands.
    ///
    /// # Examples
    ///
    /// ```
    /// use biaslab_isa::AluOp;
    ///
    /// assert_eq!(AluOp::Add.eval(2, 3), 5);
    /// assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0 signed
    /// assert_eq!(AluOp::Div.eval(7, 0), u64::MAX); // divide by zero
    /// ```
    #[must_use]
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b as u32 & 63),
            AluOp::Srl => a.wrapping_shr(b as u32 & 63),
            AluOp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
            AluOp::Seq => u64::from(a == b),
            AluOp::Sne => u64::from(a != b),
        }
    }

    /// The assembler mnemonic, e.g. `"add"`.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
        }
    }

    /// Extends a 16-bit instruction immediate to the 64-bit operand this
    /// operation consumes. Logical operations (`And`, `Or`, `Xor`)
    /// zero-extend, all others sign-extend — the MIPS convention, which
    /// lets `lui`+`ori` materialize any 32-bit constant in two
    /// instructions.
    ///
    /// # Examples
    ///
    /// ```
    /// use biaslab_isa::AluOp;
    ///
    /// assert_eq!(AluOp::Add.extend_imm(-1), u64::MAX);
    /// assert_eq!(AluOp::Or.extend_imm(-1), 0xFFFF);
    /// ```
    #[must_use]
    #[inline]
    pub fn extend_imm(self, imm: i16) -> u64 {
        match self {
            AluOp::And | AluOp::Or | AluOp::Xor => u64::from(imm as u16),
            _ => imm as i64 as u64,
        }
    }

    /// Whether the operation commutes (`op(a, b) == op(b, a)`).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            AluOp::Add | AluOp::Mul | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Seq | AluOp::Sne
        )
    }
}

/// Branch condition for compare-and-branch instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Branch if `rs1 == rs2`.
    Eq,
    /// Branch if `rs1 != rs2`.
    Ne,
    /// Branch if `rs1 < rs2` (signed).
    Lt,
    /// Branch if `rs1 >= rs2` (signed).
    Ge,
    /// Branch if `rs1 < rs2` (unsigned).
    Ltu,
    /// Branch if `rs1 >= rs2` (unsigned).
    Geu,
}

impl Cond {
    /// Every condition, in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// Evaluates the condition on two 64-bit operands.
    #[must_use]
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The condition testing the opposite outcome.
    ///
    /// `cond.eval(a, b) == !cond.negate().eval(a, b)` for all operands.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// The assembler mnemonic suffix, e.g. `"eq"` for `beq`.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Ltu => "ltu",
            Cond::Geu => "geu",
        }
    }
}

/// Memory access width for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Width {
    /// One byte (zero-extended on load).
    B1,
    /// Four bytes (zero-extended on load).
    B4,
    /// Eight bytes.
    B8,
}

impl Width {
    /// The access size in bytes (1, 4 or 8).
    #[must_use]
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            Width::B1 => 1,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// The load/store mnemonic suffix (`"b"`, `"w"`, `"d"`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Width::B1 => "b",
            Width::B4 => "w",
            Width::B8 => "d",
        }
    }
}

/// One MRV32 instruction.
///
/// Branch and jump offsets are in **bytes** relative to the address of the
/// *next* instruction (i.e. `pc + 4`), and must be multiples of 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// Three-register ALU operation: `rd = op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source operand.
        rs1: Reg,
        /// Second source operand.
        rs2: Reg,
    },
    /// Immediate ALU operation: `rd = op(rs1, sign_extend(imm))`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source operand.
        rs1: Reg,
        /// 16-bit signed immediate.
        imm: i16,
    },
    /// Load upper immediate: `rd = (imm as u64) << 16`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Immediate placed in bits 16..32 of `rd`.
        imm: u16,
    },
    /// Load from memory: `rd = mem[rs1 + offset]` (zero-extended).
    Load {
        /// Access width.
        width: Width,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset from `base`.
        offset: i16,
    },
    /// Store to memory: `mem[rs1 + offset] = rs` (truncated to width).
    Store {
        /// Access width.
        width: Width,
        /// Register holding the value to store.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset from `base`.
        offset: i16,
    },
    /// Compare-and-branch: if `cond(rs1, rs2)` then `pc = pc + 4 + offset`.
    Branch {
        /// Condition.
        cond: Cond,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Signed byte offset from the next instruction; multiple of 4.
        offset: i32,
    },
    /// Jump-and-link: `rd = pc + 4; pc = pc + 4 + offset`. Used for calls
    /// (`rd = ra`) and unconditional jumps (`rd = zero`).
    Jal {
        /// Link register (receives the return address).
        rd: Reg,
        /// Signed byte offset from the next instruction; multiple of 4.
        offset: i32,
    },
    /// Indirect jump-and-link: `rd = pc + 4; pc = rs1 + offset`. Used for
    /// returns (`jalr zero, ra, 0`) and indirect calls.
    Jalr {
        /// Link register (receives the return address).
        rd: Reg,
        /// Register holding the target address.
        rs1: Reg,
        /// Signed byte offset added to `rs1`.
        offset: i16,
    },
    /// Fold `rs` into the machine's checksum register
    /// (`chk = rotl(chk, 1) ^ rs`). Semantically observable: the workload
    /// suite uses the final checksum to verify optimization correctness.
    Chk {
        /// Register whose value is folded into the checksum.
        rs: Reg,
    },
    /// Stop execution.
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// Whether this instruction can change control flow.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt
        )
    }

    /// Whether this instruction is a conditional branch.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether this instruction accesses data memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// The destination register written by this instruction, if any.
    #[must_use]
    pub fn def(self) -> Option<Reg> {
        match self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Lui { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. } => (!rd.is_zero()).then_some(rd),
            _ => None,
        }
    }

    /// The source registers read by this instruction (zero register
    /// included), in operand order.
    #[must_use]
    pub fn uses(self) -> Vec<Reg> {
        match self {
            Inst::Alu { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::AluImm { rs1, .. } => vec![rs1],
            Inst::Lui { .. } | Inst::Jal { .. } | Inst::Halt | Inst::Nop => vec![],
            Inst::Load { base, .. } => vec![base],
            Inst::Store { rs, base, .. } => vec![rs, base],
            Inst::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::Jalr { rs1, .. } => vec![rs1],
            Inst::Chk { rs } => vec![rs],
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => {
                write!(f, "l{} {rd}, {offset}({base})", width.mnemonic())
            }
            Inst::Store {
                width,
                rs,
                base,
                offset,
            } => {
                write!(f, "s{} {rs}, {offset}({base})", width.mnemonic())
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                write!(f, "b{} {rs1}, {rs2}, {offset}", cond.mnemonic())
            }
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Chk { rs } => write!(f, "chk {rs}"),
            Inst::Halt => f.write_str("halt"),
            Inst::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basic() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), u64::MAX); // wraps
        assert_eq!(AluOp::Mul.eval(1 << 40, 1 << 40), 0); // low 64 bits
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn alu_eval_shifts_mask_amount() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1); // 64 & 63 == 0
        assert_eq!(AluOp::Sll.eval(1, 3), 8);
        assert_eq!(AluOp::Srl.eval(u64::MAX, 63), 1);
        assert_eq!(AluOp::Sra.eval(u64::MAX, 63), u64::MAX); // sign fill
    }

    #[test]
    fn alu_eval_signed_division() {
        assert_eq!(AluOp::Div.eval(7, 2), 3);
        let minus_seven = (-7i64) as u64;
        assert_eq!(AluOp::Div.eval(minus_seven, 2), (-3i64) as u64);
        assert_eq!(AluOp::Rem.eval(minus_seven, 2), (-1i64) as u64);
        // Division by zero is total, not trapping.
        assert_eq!(AluOp::Div.eval(42, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(42, 0), 42);
        // i64::MIN / -1 must not overflow-panic.
        assert_eq!(AluOp::Div.eval(i64::MIN as u64, u64::MAX), i64::MIN as u64);
    }

    #[test]
    fn alu_eval_comparisons() {
        assert_eq!(AluOp::Slt.eval((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.eval((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Seq.eval(5, 5), 1);
        assert_eq!(AluOp::Sne.eval(5, 5), 0);
    }

    #[test]
    fn cond_negate_is_involution_and_inverts() {
        for cond in Cond::ALL {
            assert_eq!(cond.negate().negate(), cond);
            for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 0), (0, u64::MAX)] {
                assert_eq!(
                    cond.eval(a, b),
                    !cond.negate().eval(a, b),
                    "{cond:?} {a} {b}"
                );
            }
        }
    }

    #[test]
    fn commutativity_flags_match_eval() {
        let samples = [(1u64, 2u64), (u64::MAX, 3), (0, 0), (17, 17), (5, 0)];
        for op in AluOp::ALL {
            if op.is_commutative() {
                for (a, b) in samples {
                    assert_eq!(op.eval(a, b), op.eval(b, a), "{op:?} should commute");
                }
            }
        }
        // And spot-check one that must not.
        assert_ne!(AluOp::Sub.eval(1, 2), AluOp::Sub.eval(2, 1));
    }

    #[test]
    fn def_and_uses() {
        let add = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::r(3),
            rs1: Reg::r(1),
            rs2: Reg::r(2),
        };
        assert_eq!(add.def(), Some(Reg::r(3)));
        assert_eq!(add.uses(), vec![Reg::r(1), Reg::r(2)]);

        // Writes to the zero register define nothing.
        let to_zero = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::r(1),
            imm: 0,
        };
        assert_eq!(to_zero.def(), None);

        let store = Inst::Store {
            width: Width::B8,
            rs: Reg::r(4),
            base: Reg::SP,
            offset: -8,
        };
        assert_eq!(store.def(), None);
        assert_eq!(store.uses(), vec![Reg::r(4), Reg::SP]);
    }

    #[test]
    fn classification() {
        let br = Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg::r(1),
            rs2: Reg::r(2),
            offset: 8,
        };
        assert!(br.is_control());
        assert!(br.is_branch());
        assert!(!br.is_memory());
        assert!(Inst::Halt.is_control());
        assert!(!Inst::Nop.is_control());
        let ld = Inst::Load {
            width: Width::B8,
            rd: Reg::r(1),
            base: Reg::SP,
            offset: 0,
        };
        assert!(ld.is_memory());
        assert!(!ld.is_branch());
    }

    #[test]
    fn disassembly_formats() {
        let ld = Inst::Load {
            width: Width::B4,
            rd: Reg::r(2),
            base: Reg::FP,
            offset: -12,
        };
        assert_eq!(ld.to_string(), "lw r2, -12(fp)");
        let br = Inst::Branch {
            cond: Cond::Ltu,
            rs1: Reg::r(1),
            rs2: Reg::r(2),
            offset: -16,
        };
        assert_eq!(br.to_string(), "bltu r1, r2, -16");
        let ret = Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        };
        assert_eq!(ret.to_string(), "jalr r0, 0(ra)");
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B4.bytes(), 4);
        assert_eq!(Width::B8.bytes(), 8);
    }
}
