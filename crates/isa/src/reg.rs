//! Architectural registers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the 32 MRV32 general-purpose registers.
///
/// The wrapped index is guaranteed to be in `0..32`; use [`Reg::r`] to
/// construct a register (it panics on out-of-range indices, which is always
/// a toolchain bug rather than a user-input condition).
///
/// # Examples
///
/// ```
/// use biaslab_isa::Reg;
///
/// assert_eq!(Reg::r(0), Reg::ZERO);
/// assert_eq!(Reg::SP.to_string(), "sp");
/// assert_eq!(Reg::r(7).index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Register hard-wired to zero: writes are ignored, reads return 0.
    pub const ZERO: Reg = Reg(0);
    /// Global pointer: base address of the linked data segment.
    pub const GP: Reg = Reg(28);
    /// Frame pointer.
    pub const FP: Reg = Reg(29);
    /// Stack pointer.
    pub const SP: Reg = Reg(30);
    /// Return address, written by `jal`/`jalr`.
    pub const RA: Reg = Reg(31);

    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// First register index available to the register allocator.
    ///
    /// `r1..=r27` are allocatable; `r0` is the zero register and
    /// `r28..=r31` have ABI roles.
    pub const FIRST_ALLOCATABLE: u8 = 1;
    /// One past the last register index available to the register allocator.
    pub const LAST_ALLOCATABLE: u8 = 27;

    /// Returns the register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn r(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// Returns the register index in `0..32`.
    #[must_use]
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for the hard-wired zero register.
    #[must_use]
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over every architectural register in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::GP => f.write_str("gp"),
            Reg::FP => f.write_str("fp"),
            Reg::SP => f.write_str("sp"),
            Reg::RA => f.write_str("ra"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_register_zero() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::SP.is_zero());
    }

    #[test]
    fn abi_registers_have_expected_indices() {
        assert_eq!(Reg::GP.index(), 28);
        assert_eq!(Reg::FP.index(), 29);
        assert_eq!(Reg::SP.index(), 30);
        assert_eq!(Reg::RA.index(), 31);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::r(5).to_string(), "r5");
        assert_eq!(Reg::GP.to_string(), "gp");
        assert_eq!(Reg::FP.to_string(), "fp");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::RA.to_string(), "ra");
    }

    #[test]
    fn all_yields_32_unique_registers() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::r(32);
    }

    #[test]
    fn allocatable_window_excludes_abi_registers() {
        let abi = [Reg::ZERO, Reg::GP, Reg::FP, Reg::SP, Reg::RA];
        for idx in Reg::FIRST_ALLOCATABLE..=Reg::LAST_ALLOCATABLE {
            assert!(!abi.contains(&Reg::r(idx)));
        }
    }
}
