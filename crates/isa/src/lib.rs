//! # biaslab-isa — the MRV32 instruction set
//!
//! MRV32 ("mini RISC VM, 32 registers") is the instruction set shared by the
//! `biaslab` toolchain (`biaslab-toolchain`) and simulator (`biaslab-uarch`).
//! It is a classic load/store RISC architecture:
//!
//! * 32 general-purpose 64-bit registers; [`Reg::ZERO`] is hard-wired to 0,
//!   and the ABI reserves [`Reg::RA`] (return address), [`Reg::SP`] (stack
//!   pointer), [`Reg::FP`] (frame pointer) and [`Reg::GP`] (global pointer).
//! * A 32-bit byte-addressed address space; instructions are fixed 4-byte
//!   words, so all code addresses are 4-aligned.
//! * ALU, load/store (1/4/8-byte widths), compare-and-branch, and
//!   call/return instructions, plus [`Inst::Chk`], a checksum instruction
//!   used by the workload suite to validate that optimization levels do not
//!   change program semantics.
//!
//! The crate provides the instruction model ([`Inst`]), a binary encoding
//! ([`encode`]/[`decode`], used by the object format and exercised by
//! round-trip property tests), and a disassembler (`Display` on [`Inst`]).
//!
//! # Examples
//!
//! ```
//! use biaslab_isa::{decode, encode, AluOp, Inst, Reg};
//!
//! let inst = Inst::Alu { op: AluOp::Add, rd: Reg::r(3), rs1: Reg::r(1), rs2: Reg::r(2) };
//! let word = encode(inst);
//! assert_eq!(decode(word).unwrap(), inst);
//! assert_eq!(inst.to_string(), "add r3, r1, r2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod inst;
mod reg;

pub use encode::{decode, encode, DecodeError};
pub use inst::{AluOp, Cond, Inst, Width};
pub use reg::Reg;

/// Size in bytes of one encoded MRV32 instruction.
pub const INST_BYTES: u32 = 4;

/// The architectural checksum fold performed by [`Inst::Chk`]:
/// `chk' = rotate_left(chk, 1) ^ value`.
///
/// Both the IR interpreter and the simulator implement `chk` with this
/// function, so a program's final checksum is identical across every
/// optimization level and machine — the property the workload suite uses to
/// validate toolchain correctness.
///
/// # Examples
///
/// ```
/// use biaslab_isa::checksum_fold;
///
/// let c = checksum_fold(checksum_fold(0, 1), 2);
/// assert_eq!(c, (1u64 << 1) ^ 2);
/// ```
#[must_use]
#[inline]
pub fn checksum_fold(acc: u64, value: u64) -> u64 {
    acc.rotate_left(1) ^ value
}
