//! Property tests: every constructible instruction survives an
//! encode/decode round trip, and decoding never panics on arbitrary words.

use biaslab_isa::{decode, encode, AluOp, Cond, Inst, Reg, Width};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::r)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B1), Just(Width::B4), Just(Width::B8)]
}

fn arb_aluop() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

fn arb_branch_offset() -> impl Strategy<Value = i32> {
    ((-(1 << 15))..(1i32 << 15)).prop_map(|units| units * 4)
}

fn arb_jal_offset() -> impl Strategy<Value = i32> {
    ((-(1 << 20))..(1i32 << 20)).prop_map(|units| units * 4)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_aluop(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_aluop(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (arb_width(), arb_reg(), arb_reg(), any::<i16>()).prop_map(|(width, rd, base, offset)| {
            Inst::Load {
                width,
                rd,
                base,
                offset,
            }
        }),
        (arb_width(), arb_reg(), arb_reg(), any::<i16>()).prop_map(|(width, rs, base, offset)| {
            Inst::Store {
                width,
                rs,
                base,
                offset,
            }
        }),
        (arb_cond(), arb_reg(), arb_reg(), arb_branch_offset()).prop_map(
            |(cond, rs1, rs2, offset)| Inst::Branch {
                cond,
                rs1,
                rs2,
                offset
            }
        ),
        (arb_reg(), arb_jal_offset()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        arb_reg().prop_map(|rs| Inst::Chk { rs }),
        Just(Inst::Halt),
        Just(Inst::Nop),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        prop_assert_eq!(decode(encode(inst)), Ok(inst));
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_reencodes_to_same_semantics(word in any::<u32>()) {
        // Decoding is lossy on junk bits, but decode∘encode must be a
        // projection: once normalized, the instruction is a fixed point.
        if let Ok(inst) = decode(word) {
            prop_assert_eq!(decode(encode(inst)), Ok(inst));
        }
    }

    #[test]
    fn disassembly_is_nonempty_and_stable(inst in arb_inst()) {
        let text = inst.to_string();
        prop_assert!(!text.is_empty());
        prop_assert_eq!(inst.to_string(), text);
    }

    #[test]
    fn alu_eval_total(op in arb_aluop(), a in any::<u64>(), b in any::<u64>()) {
        let _ = op.eval(a, b); // must never panic, for any operands
    }

    #[test]
    fn cond_eval_matches_negation(cond in arb_cond(), a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(cond.eval(a, b), !cond.negate().eval(a, b));
    }
}
