//! Property tests on the basic-block trace cache: decode must be a pure
//! function of (text, entry, parameters), and epoch handling must never
//! leak blocks across images.
//!
//! These are the invariants that let the block path replace the
//! interpreted loop: a stale or non-deterministic decode would produce
//! counters that depend on *which image happened to be cached*, exactly
//! the kind of hidden state the source paper warns about.

use biaslab_isa::{AluOp, Cond, Inst, Reg, Width};
use biaslab_uarch::block::{BlockCache, DecodeParams};
use proptest::prelude::*;

const TEXT_BASE: u32 = 0x0040_0000;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::r)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B1), Just(Width::B4), Just(Width::B8)]
}

fn arb_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

/// Any non-control instruction: what a block body is made of.
fn arb_body_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_op(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (arb_width(), arb_reg(), arb_reg(), any::<i16>()).prop_map(|(width, rd, base, offset)| {
            Inst::Load {
                width,
                rd,
                base,
                offset,
            }
        }),
        (arb_width(), arb_reg(), arb_reg(), any::<i16>()).prop_map(|(width, rs, base, offset)| {
            Inst::Store {
                width,
                rs,
                base,
                offset,
            }
        }),
        arb_reg().prop_map(|rs| Inst::Chk { rs }),
        Just(Inst::Nop),
    ]
}

/// A short text segment: a straight-line body closed by a terminator, so
/// every entry word decodes to a well-formed block.
fn arb_text() -> impl Strategy<Value = Vec<Inst>> {
    (
        proptest::collection::vec(arb_body_inst(), 1..24),
        arb_reg(),
        arb_reg(),
    )
        .prop_map(|(mut body, rs1, rs2)| {
            // A branch in the middle (never past the halt) makes some
            // entries mid-block, exercising overlapping decodes.
            let off = 4 * (body.len() as i32 / 2);
            body.push(Inst::Branch {
                cond: Cond::Eq,
                rs1,
                rs2,
                offset: -off,
            });
            body.push(Inst::Halt);
            body
        })
}

fn arb_params() -> impl Strategy<Value = DecodeParams> {
    (4u32..=6, 0u64..8, 0u64..16).prop_map(|(fetch_shift, mul_extra, div_extra)| DecodeParams {
        text_base: TEXT_BASE,
        fetch_shift,
        mul_extra,
        div_extra,
    })
}

proptest! {
    #[test]
    fn decode_is_deterministic_across_caches(
        text in arb_text(),
        p in arb_params(),
        cuts in proptest::collection::vec(1u32..24, 0..4),
    ) {
        // Two fresh caches over the same image must decode bit-identical
        // blocks (uops, fetch points, terminators — `DecodedBlock: Eq`)
        // at every entry word.
        let starts: Vec<u32> = cuts
            .iter()
            .map(|&w| TEXT_BASE + 4 * (w % text.len() as u32))
            .collect();
        let mut a = BlockCache::new();
        let mut b = BlockCache::new();
        a.sync(1, TEXT_BASE, text.len(), starts.iter().copied());
        b.sync(1, TEXT_BASE, text.len(), starts.iter().copied());
        for word in 0..text.len() as u32 {
            let ba = a.get_or_decode(word, &text, &p).clone();
            let bb = b.get_or_decode(word, &text, &p).clone();
            prop_assert_eq!(&ba, &bb);
            prop_assert_eq!(ba.word, word);
            prop_assert_eq!(ba.entry, TEXT_BASE + 4 * word);
            prop_assert_eq!(ba.next_pc, ba.entry + 4 * ba.len);
            prop_assert_eq!(ba.uops.len() as u32, ba.body_len);
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn generation_bump_invalidates_and_redecode_is_identical(
        text in arb_text(),
        p in arb_params(),
    ) {
        let mut cache = BlockCache::new();
        cache.sync(1, TEXT_BASE, text.len(), std::iter::empty());
        let first: Vec<_> = (0..text.len() as u32)
            .map(|w| cache.get_or_decode(w, &text, &p).clone())
            .collect();
        prop_assert!(cache.blocks_live() > 0);
        prop_assert_eq!(cache.stats().invalidations, 0);

        // A new image generation (same text, as after an identical relink)
        // must still discard everything: the cache keys on the epoch, not
        // on content.
        cache.sync(2, TEXT_BASE, text.len(), std::iter::empty());
        prop_assert_eq!(cache.blocks_live(), 0);
        prop_assert_eq!(cache.stats().invalidations, 1);
        prop_assert_eq!(cache.generation(), 2);

        // Re-decoding the new epoch reproduces the exact same blocks, and
        // a second lookup is a pure hit returning the same block.
        for (w, old) in first.iter().enumerate() {
            let fresh = cache.get_or_decode(w as u32, &text, &p).clone();
            prop_assert_eq!(&fresh, old);
            let hits_before = cache.stats().hits;
            let again = cache.get_or_decode(w as u32, &text, &p).clone();
            prop_assert_eq!(&again, old);
            prop_assert_eq!(cache.stats().hits, hits_before + 1);
        }
    }

    #[test]
    fn same_generation_sync_is_a_noop(
        text in arb_text(),
        p in arb_params(),
    ) {
        let mut cache = BlockCache::new();
        cache.sync(7, TEXT_BASE, text.len(), std::iter::empty());
        let _ = cache.get_or_decode(0, &text, &p);
        let live = cache.blocks_live();
        let stats = cache.stats();
        // Re-adopting the same epoch (every warm repetition does this)
        // must keep every decoded block and count nothing.
        cache.sync(7, TEXT_BASE, text.len(), std::iter::empty());
        prop_assert_eq!(cache.blocks_live(), live);
        prop_assert_eq!(cache.stats(), stats);
    }
}
