//! Property tests on the event kernel: the determinism guarantees the
//! bit-identical counters rest on must hold for arbitrary event streams,
//! not just the schedules the machine happens to produce.

use biaslab_uarch::kernel::{ClockDivider, ComponentId, EventScheduler};
use proptest::prelude::*;

proptest! {
    #[test]
    fn equal_time_events_pop_in_schedule_order(
        // Arbitrary times drawn from a small range so collisions are the
        // common case, across an arbitrary interleaving of components.
        times in proptest::collection::vec(0u64..8, 1..64),
    ) {
        let mut s = EventScheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(t, ComponentId(i as u32));
        }
        let popped: Vec<(u64, u32)> =
            std::iter::from_fn(|| s.pop()).map(|(t, id)| (t, id.0)).collect();
        prop_assert_eq!(popped.len(), times.len());
        // Non-decreasing in time; FIFO (ascending insertion index) within
        // each time — i.e. exactly a stable sort of the schedule calls.
        let mut expected: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        expected.sort_by_key(|&(t, _)| t); // sort_by_key is stable
        prop_assert_eq!(popped, expected);
    }

    #[test]
    fn pop_order_is_independent_of_interleaved_pops(
        times in proptest::collection::vec(0u64..6, 2..32),
        split in 1usize..31,
    ) {
        // Scheduling everything up front and draining must agree with
        // draining part-way through (as the machine's core loop does),
        // modulo past-clamping: once `now` has advanced, earlier times
        // collapse onto `now` in FIFO order. Keep every later time ≥ the
        // prefix maximum so no clamping occurs and the orders must match
        // exactly.
        let split = split.min(times.len() - 1);
        let prefix_max = times[..split].iter().copied().max().unwrap_or(0);
        let times: Vec<u64> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| if i < split { t } else { prefix_max + t })
            .collect();
        let mut all = EventScheduler::new();
        for (i, &t) in times.iter().enumerate() {
            all.schedule(t, ComponentId(i as u32));
        }
        let reference: Vec<u32> =
            std::iter::from_fn(|| all.pop()).map(|(_, id)| id.0).collect();

        let mut s = EventScheduler::new();
        for (i, &t) in times.iter().enumerate().take(split) {
            s.schedule(t, ComponentId(i as u32));
        }
        let mut interleaved: Vec<u32> = (0..split)
            .map(|_| s.pop().expect("prefix event").1 .0)
            .collect();
        for (i, &t) in times.iter().enumerate().skip(split) {
            s.schedule(t, ComponentId(i as u32));
        }
        interleaved.extend(std::iter::from_fn(|| s.pop()).map(|(_, id)| id.0));
        prop_assert_eq!(interleaved, reference);
    }

    #[test]
    fn divider_edges_are_ordered_and_aligned(
        divisor in 1u64..1000,
        now in any::<u64>(),
    ) {
        let d = ClockDivider::new(divisor);
        let edge = d.next_edge(now);
        prop_assert!(edge > now || edge == u64::MAX, "edges advance");
        if edge != u64::MAX {
            prop_assert_eq!(edge % divisor, 0, "edges sit on divisor multiples");
            prop_assert!(edge - now <= divisor, "never skips an edge");
        }
    }

    #[test]
    fn base_and_local_ticks_round_trip(divisor in 1u64..1000, local in 0u64..1_000_000) {
        let d = ClockDivider::new(divisor);
        prop_assert_eq!(d.local_ticks(d.base_ticks(local)), local);
    }
}
