//! Property tests on the micro-architectural structures: the invariants
//! the bias mechanisms depend on must hold for arbitrary access streams.

use biaslab_uarch::branch::{BranchConfig, BranchPredictor};
use biaslab_uarch::cache::{Cache, CacheConfig};
use biaslab_uarch::tlb::{Tlb, TlbConfig};
use proptest::prelude::*;

fn small_cache() -> Cache {
    // 8 sets × 2 ways × 64 B.
    Cache::new(CacheConfig {
        size: 1024,
        ways: 2,
        line: 64,
        hit_latency: 1,
    })
}

proptest! {
    #[test]
    fn immediate_reaccess_always_hits(addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut c = small_cache();
        for a in addrs {
            c.access(a);
            prop_assert!(c.access(a), "re-access of {a:#x} must hit");
        }
    }

    #[test]
    fn working_set_within_ways_never_misses_after_warmup(
        base in any::<u32>(),
        reps in 2usize..8,
    ) {
        // Two lines in the same set (ways = 2) must coexist.
        let mut c = small_cache();
        let a = base & !63;
        let b = a.wrapping_add(1024); // same set, different tag
        c.access(a);
        c.access(b);
        for _ in 0..reps {
            prop_assert!(c.access(a));
            prop_assert!(c.access(b));
        }
    }

    #[test]
    fn three_way_conflict_always_thrashes_lru(base in any::<u32>()) {
        // Three lines in one 2-way set, accessed round-robin: LRU evicts
        // the next one every time, so every access misses after warmup.
        let mut c = small_cache();
        let a = base & !63;
        let lines = [a, a.wrapping_add(1024), a.wrapping_add(2048)];
        for &l in &lines {
            c.access(l);
        }
        for _ in 0..3 {
            for &l in &lines {
                prop_assert!(!c.access(l), "round-robin over ways+1 lines must thrash");
            }
        }
    }

    #[test]
    fn translation_invariance_of_total_hits(
        offsets in proptest::collection::vec(0u32..4096, 1..100),
        shift_lines in 0u32..64,
    ) {
        // Shifting an entire access pattern by whole cache lines cannot
        // change its hit/miss sequence — conflicts depend only on relative
        // line structure when everything moves together. (This is exactly
        // why the *stack-only* component of the env shift is invisible and
        // the stack-vs-global interaction is what matters.)
        let run = |base: u32| -> Vec<bool> {
            let mut c = small_cache();
            offsets.iter().map(|&o| c.access(base.wrapping_add(o))).collect()
        };
        prop_assert_eq!(run(0x10000), run(0x10000 + shift_lines * 64));
    }

    #[test]
    fn tlb_page_locality_hits(pages in proptest::collection::vec(0u32..16, 1..50)) {
        let mut t = Tlb::new(TlbConfig { entries: 32, ways: 4, miss_penalty: 10 });
        for p in pages {
            let addr = p * 4096;
            t.access(addr);
            prop_assert!(t.access(addr + 4095), "same page must hit");
        }
    }

    #[test]
    fn predictor_learns_any_fixed_direction(pc in any::<u32>(), taken in any::<bool>()) {
        let mut p = BranchPredictor::new(BranchConfig {
            gshare_bits: 8,
            btb_entries: 64,
            ras_depth: 8,
            mispredict_penalty: 10,
            btb_miss_penalty: 1,
        });
        // With a constant outcome the global history becomes constant, so
        // the indexed counter saturates; after training, prediction holds.
        for _ in 0..128 {
            p.update(pc, taken);
        }
        prop_assert_eq!(p.predict(pc).taken, taken);
    }

    #[test]
    fn btb_caches_last_target(pc in any::<u32>(), t1 in any::<u32>(), t2 in any::<u32>()) {
        let mut p = BranchPredictor::new(BranchConfig {
            gshare_bits: 8,
            btb_entries: 64,
            ras_depth: 8,
            mispredict_penalty: 10,
            btb_miss_penalty: 1,
        });
        p.btb_lookup(pc, t1);
        prop_assert!(p.btb_lookup(pc, t1), "same target hits");
        if t1 != t2 {
            prop_assert!(!p.btb_lookup(pc, t2), "changed target misses");
            prop_assert!(p.btb_lookup(pc, t2), "then installs");
        }
    }
}
