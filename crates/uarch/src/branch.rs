//! Branch prediction: a gshare direction predictor, a direct-mapped branch
//! target buffer, and a return-address stack.
//!
//! Both tables are indexed by *code address bits*, so permuting the link
//! order re-aliases branches onto different counters and BTB slots — the
//! paper's link-order bias channel on real front ends.

use serde::{Deserialize, Serialize};

/// Predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// log2 of the gshare pattern-history table size.
    pub gshare_bits: u32,
    /// BTB entries (power of two, direct-mapped).
    pub btb_entries: u32,
    /// Return-address stack depth.
    pub ras_depth: u32,
    /// Pipeline refill penalty for a mispredicted direction or return.
    pub mispredict_penalty: u32,
    /// Front-end bubble for a taken transfer that missed in the BTB.
    pub btb_miss_penalty: u32,
}

impl BranchConfig {
    /// Number of pattern-history-table entries.
    #[must_use]
    pub fn pht_entries(&self) -> u32 {
        1 << self.gshare_bits
    }

    /// The gshare PHT index for a branch at `pc` under global history
    /// `ghr` — the same mapping the predictor applies. Two branch
    /// addresses alias for *every* history value iff their `ghr = 0`
    /// indices are equal, which is what static collision detection
    /// checks.
    #[must_use]
    pub fn gshare_index(&self, pc: u32, ghr: u64) -> u32 {
        let mask = (1u64 << self.gshare_bits) - 1;
        ((u64::from(pc >> 2) ^ ghr) & mask) as u32
    }

    /// The direct-mapped BTB slot for a transfer at `pc` — the same
    /// mapping [`BranchPredictor::btb_lookup`] applies.
    #[must_use]
    pub fn btb_index(&self, pc: u32) -> u32 {
        (pc >> 2) & (self.btb_entries - 1)
    }
}

/// The outcome of consulting the predictor for one conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectionPrediction {
    /// Predicted taken?
    pub taken: bool,
}

/// A gshare + BTB + RAS branch prediction unit.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchConfig,
    /// 2-bit saturating counters.
    pht: Vec<u8>,
    /// Global history register.
    ghr: u64,
    /// BTB: (tag, target) per direct-mapped entry; tag `u32::MAX` invalid.
    btb: Vec<(u32, u32)>,
    ras: Vec<u32>,
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters and empty tables.
    ///
    /// # Panics
    ///
    /// Panics if `btb_entries` is not a power of two.
    #[must_use]
    pub fn new(config: BranchConfig) -> BranchPredictor {
        assert!(config.btb_entries.is_power_of_two());
        BranchPredictor {
            config,
            pht: vec![1; 1 << config.gshare_bits],
            ghr: 0,
            btb: vec![(u32::MAX, 0); config.btb_entries as usize],
            ras: Vec::with_capacity(config.ras_depth as usize),
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> BranchConfig {
        self.config
    }

    #[inline]
    fn pht_index(&self, pc: u32) -> usize {
        self.config.gshare_index(pc, self.ghr) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    #[must_use]
    #[inline]
    pub fn predict(&self, pc: u32) -> DirectionPrediction {
        DirectionPrediction {
            taken: self.pht[self.pht_index(pc)] >= 2,
        }
    }

    /// Trains the predictor with the branch's actual direction.
    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool) {
        let idx = self.pht_index(pc);
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.ghr = (self.ghr << 1) | u64::from(taken);
    }

    /// Looks up the BTB for the taken transfer at `pc`; returns `true` when
    /// the target was present (and correct). Installs/updates the entry.
    #[inline]
    pub fn btb_lookup(&mut self, pc: u32, target: u32) -> bool {
        let idx = self.config.btb_index(pc) as usize;
        let hit = self.btb[idx] == (pc, target);
        self.btb[idx] = (pc, target);
        hit
    }

    /// Pushes a return address (on calls).
    #[inline]
    pub fn push_return(&mut self, addr: u32) {
        if self.ras.len() == self.config.ras_depth as usize {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    /// Pops the predicted return address (on returns); `None` when empty.
    #[inline]
    pub fn pop_return(&mut self) -> Option<u32> {
        self.ras.pop()
    }

    /// Resets all state (between measurement repetitions).
    pub fn flush(&mut self) {
        self.pht.fill(1);
        self.ghr = 0;
        self.btb.fill((u32::MAX, 0));
        self.ras.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(BranchConfig {
            gshare_bits: 6,
            btb_entries: 16,
            ras_depth: 4,
            mispredict_penalty: 12,
            btb_miss_penalty: 2,
        })
    }

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = predictor();
        let pc = 0x40_0000;
        // Initially weakly not-taken.
        assert!(!p.predict(pc).taken);
        p.update(pc, true);
        p.update(pc, true);
        // Note: ghr changed, so the trained index differs; train a few more
        // times along the same history to saturate the reachable entries.
        for _ in 0..64 {
            p.update(pc, true);
        }
        assert!(p.predict(pc).taken);
    }

    #[test]
    fn btb_conflicts_depend_on_address_bits() {
        let mut p = predictor();
        let a = 0x40_0000;
        let b = a + 16 * 4; // same BTB index (16 entries, pc>>2)
        assert!(!p.btb_lookup(a, 0x1111));
        assert!(p.btb_lookup(a, 0x1111));
        assert!(!p.btb_lookup(b, 0x2222)); // evicts a
        assert!(!p.btb_lookup(a, 0x1111)); // a must re-install
                                           // A branch at a non-conflicting address does not evict.
        let c = a + 4;
        assert!(!p.btb_lookup(c, 0x3333));
        assert!(p.btb_lookup(a, 0x1111));
    }

    #[test]
    fn config_geometry_matches_btb_conflicts() {
        // The static index predicts exactly the conflict pattern the
        // dynamic test above observes: +16*4 aliases, +4 does not.
        let cfg = predictor().config();
        let a = 0x40_0000u32;
        assert_eq!(cfg.btb_index(a), cfg.btb_index(a + 16 * 4));
        assert_ne!(cfg.btb_index(a), cfg.btb_index(a + 4));
        assert_eq!(cfg.pht_entries(), 64);
        // Equal ghr=0 indices alias under every history value.
        let b = a + 64 * 4;
        assert_eq!(cfg.gshare_index(a, 0), cfg.gshare_index(b, 0));
        assert_eq!(cfg.gshare_index(a, 0x35), cfg.gshare_index(b, 0x35));
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut p = predictor();
        p.push_return(100);
        p.push_return(200);
        assert_eq!(p.pop_return(), Some(200));
        assert_eq!(p.pop_return(), Some(100));
        assert_eq!(p.pop_return(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut p = predictor();
        for i in 0..5 {
            p.push_return(i);
        }
        assert_eq!(p.pop_return(), Some(4));
        assert_eq!(p.pop_return(), Some(3));
        assert_eq!(p.pop_return(), Some(2));
        assert_eq!(p.pop_return(), Some(1));
        assert_eq!(p.pop_return(), None, "entry 0 was dropped on overflow");
    }

    #[test]
    fn flush_resets_learning() {
        let mut p = predictor();
        for _ in 0..64 {
            p.update(0x40_0000, true);
        }
        p.flush();
        assert!(!p.predict(0x40_0000).taken);
    }
}
