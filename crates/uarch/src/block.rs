//! The decoded basic-block trace cache behind [`crate::KernelMode::Block`].
//!
//! The interpreted loop pays a decode, a budget check, a window computation
//! and a fetch-state probe for every retired instruction, even though the
//! instruction stream re-executes the same straight-line runs millions of
//! times. This module decodes each run **once** into a [`DecodedBlock`] —
//! a flat slice of body instructions terminated at the first control
//! transfer (branch, call, return, halt) — together with everything about
//! the block that is a pure function of its addresses: the fetch windows it
//! touches (and at which instruction index it crosses into each), its
//! load/store counts, its summed multiply/divide stall cycles, and its
//! terminator with precomputed targets. The block executor replays those
//! summaries into [`crate::Counters`] at block edges; dynamic effects
//! (cache/TLB/predictor state, bank conflicts, data-dependent targets)
//! still fire per event, *in the interpreted loop's exact order*, so every
//! counter stays bit-identical — the invariant `tests/block_differential.rs`
//! and the 72 golden rows pin.
//!
//! Blocks are keyed by entry word within one `(image generation,
//! text base)` epoch: [`BlockCache::sync`] invalidates the whole cache when
//! the generation stamped at link time bumps, because a relink moves code
//! and every precomputed window/target would silently be wrong. Blocks are
//! also cut (without a terminator — [`BlockEnd::FallThrough`]) at function
//! symbol starts, which keeps each block inside one profile-attribution
//! bucket, and at a length cap so a pathological straight-line run cannot
//! decode unbounded memory.

use biaslab_isa::{AluOp, Cond, Inst, Reg};

/// Hard cap on instructions per decoded block. Runs longer than this are
/// split with a [`BlockEnd::FallThrough`] cut; execution is unaffected
/// (the next block starts at the cut).
pub const MAX_BLOCK_LEN: u32 = 4096;

/// Sentinel for an un-decoded entry in the block index.
const EMPTY: u32 = u32::MAX;

/// Address-derived constants the decoder needs; a pure function of the
/// machine configuration and the loaded image, hoisted once per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeParams {
    /// Base address of the text segment.
    pub text_base: u32,
    /// `log2(fetch_bytes)` — validated configurations always have a
    /// power-of-two fetch window.
    pub fetch_shift: u32,
    /// Extra cycles for a multiply.
    pub mul_extra: u64,
    /// Extra cycles for a divide/remainder.
    pub div_extra: u64,
}

/// One precomputed fetch-window crossing inside a block: executing the
/// instruction at `idx` moves the front end into `window`. The executor
/// replays these through [`crate::front::FrontEnd::fetch`] at exactly the
/// interpreted instruction positions, so I-side and D-side accesses keep
/// their relative order into the shared L2 (whose LRU state makes that
/// order observable in the counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchPoint {
    /// Instruction index within the block (0-based; the entry is 0).
    pub idx: u32,
    /// The instruction's address.
    pub pc: u32,
    /// Its fetch window (`pc >> fetch_shift`).
    pub window: u32,
}

/// Register-file slot that pre-decoded writes to [`Reg::ZERO`] are
/// remapped onto, so the executor writes every destination unconditionally
/// instead of re-testing the zero register per instruction. The slot is
/// never read: reads of `ZERO` still load slot 0, which nothing writes.
pub const SCRATCH_REG: u8 = 32;

/// Size of the uop executor's register file: the 32 architectural
/// registers, the write scratch slot, padded to a power of two so a
/// masked index (`& (REG_SLOTS - 1)`) replaces the bounds check.
pub const REG_SLOTS: usize = 64;

/// Fused operation selector of a [`Uop`]: the instruction kind and (for
/// ALU forms) the operation collapsed into one discriminant, so the
/// executor dispatches each body instruction through a single match
/// instead of an `Inst` match nesting an [`AluOp`] match.
///
/// Register/register ALU forms read `rs1 op rs2`; the `*I` forms read
/// `rs1 op imm` with the immediate already extended at decode time
/// (`AluOp::extend_imm` is a pure function of the encoding). Each arm of
/// the executor's match mirrors [`AluOp::eval`] exactly; the kernel
/// differential tests and the golden counter rows pin the equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopKind {
    /// `rd = rs1 + rs2` (wrapping).
    Add,
    /// `rd = rs1 - rs2` (wrapping).
    Sub,
    /// `rd = rs1 * rs2` (low 64 bits).
    Mul,
    /// `rd = rs1 / rs2` (signed; x/0 = -1).
    Div,
    /// `rd = rs1 % rs2` (signed; x%0 = x).
    Rem,
    /// `rd = rs1 & rs2`.
    And,
    /// `rd = rs1 | rs2`.
    Or,
    /// `rd = rs1 ^ rs2`.
    Xor,
    /// `rd = rs1 << (rs2 & 63)`.
    Sll,
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Srl,
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic).
    Sra,
    /// `rd = (rs1 <s rs2) as u64`.
    Slt,
    /// `rd = (rs1 <u rs2) as u64`.
    Sltu,
    /// `rd = (rs1 == rs2) as u64`.
    Seq,
    /// `rd = (rs1 != rs2) as u64`.
    Sne,
    /// `rd = rs1 + imm`.
    AddI,
    /// `rd = rs1 - imm`.
    SubI,
    /// `rd = rs1 * imm`.
    MulI,
    /// `rd = rs1 / imm`.
    DivI,
    /// `rd = rs1 % imm`.
    RemI,
    /// `rd = rs1 & imm`.
    AndI,
    /// `rd = rs1 | imm`.
    OrI,
    /// `rd = rs1 ^ imm`.
    XorI,
    /// `rd = rs1 << (imm & 63)`.
    SllI,
    /// `rd = rs1 >> (imm & 63)` (logical).
    SrlI,
    /// `rd = rs1 >> (imm & 63)` (arithmetic).
    SraI,
    /// `rd = (rs1 <s imm) as u64`.
    SltI,
    /// `rd = (rs1 <u imm) as u64`.
    SltuI,
    /// `rd = (rs1 == imm) as u64`.
    SeqI,
    /// `rd = (rs1 != imm) as u64`.
    SneI,
    /// `rd = imm` (the `imm << 16` shift happened at decode).
    Lui,
    /// `rd = mem[rs1 + imm]`, `width` bytes zero-extended.
    Load,
    /// `mem[rs1 + imm] = rs2`, `width` bytes.
    Store,
    /// Fold `rs1` into the run checksum.
    Chk,
    /// No architectural effect.
    Nop,
}

/// One pre-decoded body instruction: flat fields, destination already
/// remapped through [`SCRATCH_REG`], immediate already extended. 16 bytes,
/// so a block body streams through the executor at two words per uop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uop {
    /// Fused operation selector.
    pub kind: UopKind,
    /// Destination slot (`SCRATCH_REG` for writes to `ZERO`).
    pub rd: u8,
    /// First source register (ALU operand a, memory base, `Chk` source).
    pub rs1: u8,
    /// Second source register (ALU operand b, store value).
    pub rs2: u8,
    /// Access width in bytes for `Load`/`Store`, 0 otherwise.
    pub width: u8,
    /// Pre-extended immediate: `AluOp::extend_imm(imm)` for ALU-immediate
    /// forms, `imm << 16` for `Lui`, the sign-extended offset (as u64) for
    /// `Load`/`Store`, 0 otherwise.
    pub imm: u64,
}

impl Uop {
    fn rd_slot(rd: Reg) -> u8 {
        if rd.is_zero() {
            SCRATCH_REG
        } else {
            rd.index()
        }
    }

    fn alu_kind(op: AluOp, imm_form: bool) -> UopKind {
        use UopKind as K;
        match op {
            AluOp::Add => {
                if imm_form {
                    K::AddI
                } else {
                    K::Add
                }
            }
            AluOp::Sub => {
                if imm_form {
                    K::SubI
                } else {
                    K::Sub
                }
            }
            AluOp::Mul => {
                if imm_form {
                    K::MulI
                } else {
                    K::Mul
                }
            }
            AluOp::Div => {
                if imm_form {
                    K::DivI
                } else {
                    K::Div
                }
            }
            AluOp::Rem => {
                if imm_form {
                    K::RemI
                } else {
                    K::Rem
                }
            }
            AluOp::And => {
                if imm_form {
                    K::AndI
                } else {
                    K::And
                }
            }
            AluOp::Or => {
                if imm_form {
                    K::OrI
                } else {
                    K::Or
                }
            }
            AluOp::Xor => {
                if imm_form {
                    K::XorI
                } else {
                    K::Xor
                }
            }
            AluOp::Sll => {
                if imm_form {
                    K::SllI
                } else {
                    K::Sll
                }
            }
            AluOp::Srl => {
                if imm_form {
                    K::SrlI
                } else {
                    K::Srl
                }
            }
            AluOp::Sra => {
                if imm_form {
                    K::SraI
                } else {
                    K::Sra
                }
            }
            AluOp::Slt => {
                if imm_form {
                    K::SltI
                } else {
                    K::Slt
                }
            }
            AluOp::Sltu => {
                if imm_form {
                    K::SltuI
                } else {
                    K::Sltu
                }
            }
            AluOp::Seq => {
                if imm_form {
                    K::SeqI
                } else {
                    K::Seq
                }
            }
            AluOp::Sne => {
                if imm_form {
                    K::SneI
                } else {
                    K::Sne
                }
            }
        }
    }

    /// Pre-decodes one body instruction.
    ///
    /// # Panics
    ///
    /// Panics on control instructions — decode terminates blocks at them,
    /// so none can appear in a body.
    #[must_use]
    pub fn from_inst(inst: Inst) -> Uop {
        let nop = Uop {
            kind: UopKind::Nop,
            rd: SCRATCH_REG,
            rs1: 0,
            rs2: 0,
            width: 0,
            imm: 0,
        };
        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => Uop {
                kind: Uop::alu_kind(op, false),
                rd: Uop::rd_slot(rd),
                rs1: rs1.index(),
                rs2: rs2.index(),
                ..nop
            },
            Inst::AluImm { op, rd, rs1, imm } => Uop {
                kind: Uop::alu_kind(op, true),
                rd: Uop::rd_slot(rd),
                rs1: rs1.index(),
                imm: op.extend_imm(imm),
                ..nop
            },
            Inst::Lui { rd, imm } => Uop {
                kind: UopKind::Lui,
                rd: Uop::rd_slot(rd),
                imm: u64::from(imm) << 16,
                ..nop
            },
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => Uop {
                kind: UopKind::Load,
                rd: Uop::rd_slot(rd),
                rs1: base.index(),
                width: width.bytes() as u8,
                imm: offset as i64 as u64,
                ..nop
            },
            Inst::Store {
                width,
                rs,
                base,
                offset,
            } => Uop {
                kind: UopKind::Store,
                rs1: base.index(),
                rs2: rs.index(),
                width: width.bytes() as u8,
                imm: offset as i64 as u64,
                ..nop
            },
            Inst::Chk { rs } => Uop {
                kind: UopKind::Chk,
                rs1: rs.index(),
                ..nop
            },
            Inst::Nop => nop,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt => {
                unreachable!("control instruction in block body")
            }
        }
    }
}

/// How a decoded block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEnd {
    /// A conditional branch; `taken_target` is precomputed from the static
    /// offset, the not-taken side is the block's `next_pc`.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Target when taken.
        taken_target: u32,
    },
    /// A direct jump-and-link (call or unconditional jump).
    Jal {
        /// Link register.
        rd: Reg,
        /// Precomputed target.
        target: u32,
    },
    /// An indirect jump-and-link; the target is data-dependent and
    /// computed at execution time.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Register holding the target base.
        rs1: Reg,
        /// Signed offset added to `rs1`.
        offset: i16,
    },
    /// The program's halt.
    Halt,
    /// No terminator: the block was cut at a function-symbol boundary, the
    /// length cap, or the end of text, and control falls through to
    /// `next_pc`. (Falling past the end of text reproduces the interpreted
    /// loop's `InvalidPc` at the same address.)
    FallThrough,
}

/// A basic block decoded once and dispatched many times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBlock {
    /// Entry address.
    pub entry: u32,
    /// Entry word index into the text segment (`(entry - text_base) / 4`).
    pub word: u32,
    /// Total instructions, terminator included (cut blocks have none).
    pub len: u32,
    /// Instructions before the terminator (`len` for cut blocks).
    pub body_len: u32,
    /// Static load count (replayed into `Counters::loads` at block entry).
    pub loads: u32,
    /// Static store count.
    pub stores: u32,
    /// Summed multiply/divide extra cycles across the body (replayed into
    /// `cycles` and `stall_compute` at block entry).
    pub extra_cycles: u64,
    /// Pre-decoded body instructions (`body_len` of them), the executor's
    /// fast-path form; the budget-fallback and profiled paths execute the
    /// raw text instead.
    pub uops: Box<[Uop]>,
    /// Fetch-window crossings, ascending by `idx`; index 0 is always
    /// present (whether it fires depends on the front end's current
    /// window, exactly as in the interpreted loop).
    pub fetches: Box<[FetchPoint]>,
    /// The terminator.
    pub end: BlockEnd,
    /// Address of the terminator instruction (meaningless for cut blocks).
    pub term_pc: u32,
    /// Address immediately after the block (`entry + 4 * len`): the
    /// fall-through / not-taken / link target.
    pub next_pc: u32,
}

/// Hit/miss/invalidation counts for one [`BlockCache`]. Monotonic over the
/// cache's lifetime; the harness exports them as `uarch.blockcache.*`
/// metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Dispatches served by an already-decoded block.
    pub hits: u64,
    /// Dispatches that had to decode.
    pub misses: u64,
    /// Wholesale invalidations: a [`BlockCache::sync`] that discarded live
    /// blocks because the image generation (or text placement) changed.
    pub invalidations: u64,
}

/// The per-machine cache of decoded blocks for one image epoch.
///
/// The index is a dense word-indexed table over the text segment
/// (`u32::MAX` = not yet decoded), so a block lookup on the hot path is
/// one bounds-checked load. Decoded blocks are timing-free *decode* state,
/// not *machine* state: [`crate::Machine::reset`] deliberately keeps them
/// (a cold-cache repetition re-measures the caches, not the decoder).
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    /// Image generation of the currently cached text (0 = nothing cached;
    /// link-time generations start at 1).
    generation: u64,
    text_base: u32,
    /// Entry word → block id, `EMPTY` when not decoded.
    index: Vec<u32>,
    blocks: Vec<DecodedBlock>,
    /// Function-symbol starts inside text (sorted, deduped): decode cuts
    /// blocks at these so a block never spans two attribution buckets.
    boundaries: Vec<u32>,
    stats: BlockCacheStats,
}

impl BlockCache {
    /// An empty cache (generation 0: the first [`BlockCache::sync`] always
    /// adopts the image).
    #[must_use]
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Adopts an image epoch, invalidating every cached block if the
    /// generation, base or size changed. `symbol_starts` are the
    /// function-symbol addresses used as block cut points; addresses
    /// outside `(text_base, text_end)` are ignored.
    pub fn sync(
        &mut self,
        generation: u64,
        text_base: u32,
        text_words: usize,
        symbol_starts: impl IntoIterator<Item = u32>,
    ) {
        if self.generation == generation
            && self.text_base == text_base
            && self.index.len() == text_words
        {
            return;
        }
        if !self.blocks.is_empty() {
            self.stats.invalidations += 1;
        }
        self.blocks.clear();
        self.index.clear();
        self.index.resize(text_words, EMPTY);
        self.generation = generation;
        self.text_base = text_base;
        let text_end = text_base + 4 * text_words as u32;
        let mut bounds: Vec<u32> = symbol_starts
            .into_iter()
            .filter(|&a| a > text_base && a < text_end)
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        self.boundaries = bounds;
    }

    /// The block entered at text word `word`, decoding it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or the cache was not [`synced`]
    /// to a text of `text.len()` words ([`crate::Machine`] bounds-checks
    /// the pc first).
    ///
    /// [`synced`]: BlockCache::sync
    pub fn get_or_decode(&mut self, word: u32, text: &[Inst], p: &DecodeParams) -> &DecodedBlock {
        debug_assert_eq!(self.index.len(), text.len(), "cache not synced to text");
        debug_assert_eq!(self.text_base, p.text_base);
        let slot = self.index[word as usize];
        let id = if slot == EMPTY {
            self.stats.misses += 1;
            let block = decode(text, word, p, &self.boundaries);
            let id = u32::try_from(self.blocks.len()).expect("block id space");
            self.blocks.push(block);
            self.index[word as usize] = id;
            id
        } else {
            self.stats.hits += 1;
            slot
        };
        &self.blocks[id as usize]
    }

    /// Lifetime hit/miss/invalidation counts.
    #[must_use]
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// Number of blocks currently decoded.
    #[must_use]
    pub fn blocks_live(&self) -> usize {
        self.blocks.len()
    }

    /// The image generation this cache is synced to (0 = empty).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

fn alu_extra(op: AluOp, p: &DecodeParams) -> u64 {
    match op {
        AluOp::Mul => p.mul_extra,
        AluOp::Div | AluOp::Rem => p.div_extra,
        _ => 0,
    }
}

/// Decodes the block entered at text word `word`.
///
/// Formation rules: extend from the entry until the first control transfer
/// (inclusive — it becomes the terminator), cutting early *without* a
/// terminator at the next function-symbol start in `boundaries`, at
/// [`MAX_BLOCK_LEN`], or at the end of text. Deterministic: the same text,
/// parameters and boundaries always produce an identical block (the
/// re-decode property test pins this).
///
/// # Panics
///
/// Panics if `word` is out of range of `text`.
#[must_use]
pub fn decode(text: &[Inst], word: u32, p: &DecodeParams, boundaries: &[u32]) -> DecodedBlock {
    let entry = p.text_base + 4 * word;
    // First function-symbol start strictly after the entry bounds the
    // block; symbol starts are 4-aligned so the division is exact.
    let next_boundary = boundaries.partition_point(|&b| b <= entry);
    let mut limit = (text.len() as u32 - word).min(MAX_BLOCK_LEN);
    if let Some(&b) = boundaries.get(next_boundary) {
        limit = limit.min((b - entry) / 4);
    }
    debug_assert!(limit >= 1, "a block holds at least its entry instruction");

    let mut len = 0u32;
    let mut loads = 0u32;
    let mut stores = 0u32;
    let mut extra_cycles = 0u64;
    let mut end = None;
    let mut uops = Vec::new();
    while len < limit {
        let inst = text[(word + len) as usize];
        len += 1;
        match inst {
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let taken_target = (entry + 4 * len).wrapping_add(offset as u32);
                end = Some(BlockEnd::Branch {
                    cond,
                    rs1,
                    rs2,
                    taken_target,
                });
                break;
            }
            Inst::Jal { rd, offset } => {
                let target = (entry + 4 * len).wrapping_add(offset as u32);
                end = Some(BlockEnd::Jal { rd, target });
                break;
            }
            Inst::Jalr { rd, rs1, offset } => {
                end = Some(BlockEnd::Jalr { rd, rs1, offset });
                break;
            }
            Inst::Halt => {
                end = Some(BlockEnd::Halt);
                break;
            }
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => {
                extra_cycles += alu_extra(op, p);
                uops.push(Uop::from_inst(inst));
            }
            Inst::Load { .. } => {
                loads += 1;
                uops.push(Uop::from_inst(inst));
            }
            Inst::Store { .. } => {
                stores += 1;
                uops.push(Uop::from_inst(inst));
            }
            Inst::Lui { .. } | Inst::Chk { .. } | Inst::Nop => uops.push(Uop::from_inst(inst)),
        }
    }
    let body_len = if end.is_some() { len - 1 } else { len };
    debug_assert_eq!(uops.len() as u32, body_len);

    let mut fetches = Vec::new();
    let mut prev_window = u32::MAX;
    for i in 0..len {
        let pc = entry + 4 * i;
        let window = pc >> p.fetch_shift;
        if window != prev_window {
            fetches.push(FetchPoint { idx: i, pc, window });
            prev_window = window;
        }
    }

    DecodedBlock {
        entry,
        word,
        len,
        body_len,
        loads,
        stores,
        extra_cycles,
        uops: uops.into_boxed_slice(),
        fetches: fetches.into_boxed_slice(),
        end: end.unwrap_or(BlockEnd::FallThrough),
        term_pc: entry + 4 * (len - 1),
        next_pc: entry + 4 * len,
    }
}

#[cfg(test)]
mod tests {
    use biaslab_isa::Width;

    use super::*;

    fn params() -> DecodeParams {
        DecodeParams {
            text_base: 0x1000,
            fetch_shift: 4, // 16-byte windows
            mul_extra: 2,
            div_extra: 21,
        }
    }

    fn nopjal(n: usize) -> Vec<Inst> {
        let mut t = vec![Inst::Nop; n];
        t.push(Inst::Jal {
            rd: Reg::ZERO,
            offset: -4 * (n as i32 + 2),
        });
        t
    }

    #[test]
    fn body_uops_match_text() {
        // Every decoded block's uops are exactly `Uop::from_inst` of its
        // body text: the executor's fast path sees the same operations,
        // pre-extended immediates included.
        let mut text = nopjal(3);
        text.insert(
            0,
            Inst::AluImm {
                op: AluOp::And,
                rd: Reg::r(7),
                rs1: Reg::r(7),
                imm: -2, // zero-extends for And: decode must pre-extend
            },
        );
        text.insert(
            1,
            Inst::Load {
                width: Width::B8,
                rd: Reg::ZERO, // write remaps to the scratch slot
                base: Reg::SP,
                offset: -16,
            },
        );
        let b = decode(&text, 0, &params(), &[]);
        assert_eq!(b.uops.len() as u32, b.body_len);
        for (u, &inst) in b.uops.iter().zip(&text[..b.body_len as usize]) {
            assert_eq!(*u, Uop::from_inst(inst));
        }
        assert_eq!(b.uops[0].imm, AluOp::And.extend_imm(-2));
        assert_eq!(b.uops[0].kind, UopKind::AndI);
        assert_eq!(b.uops[1].rd, SCRATCH_REG);
        assert_eq!(b.uops[1].imm as u32, (-16i32) as u32);
    }

    #[test]
    fn decode_terminates_at_first_control_transfer() {
        let text = vec![
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::r(5),
                rs1: Reg::ZERO,
                imm: 7,
            },
            Inst::Alu {
                op: AluOp::Mul,
                rd: Reg::r(5),
                rs1: Reg::r(5),
                rs2: Reg::r(5),
            },
            Inst::Load {
                width: Width::B8,
                rd: Reg::r(6),
                base: Reg::SP,
                offset: 0,
            },
            Inst::Store {
                width: Width::B8,
                rs: Reg::r(6),
                base: Reg::SP,
                offset: 8,
            },
            Inst::Branch {
                cond: Cond::Eq,
                rs1: Reg::r(5),
                rs2: Reg::r(6),
                offset: 8,
            },
            Inst::Halt,
        ];
        let b = decode(&text, 0, &params(), &[]);
        assert_eq!(b.len, 5);
        assert_eq!(b.body_len, 4);
        assert_eq!(b.loads, 1);
        assert_eq!(b.stores, 1);
        assert_eq!(b.extra_cycles, 2, "one multiply");
        assert_eq!(b.term_pc, 0x1010);
        assert_eq!(b.next_pc, 0x1014);
        // Branch target: next_pc + offset.
        assert!(matches!(
            b.end,
            BlockEnd::Branch {
                taken_target: 0x101c,
                ..
            }
        ));
        // 5 instructions over 16-byte windows from 0x1000: crossings at
        // idx 0 (0x1000) and idx 4 (0x1010).
        let idxs: Vec<u32> = b.fetches.iter().map(|f| f.idx).collect();
        assert_eq!(idxs, vec![0, 4]);
        assert_eq!(b.fetches[1].window, 0x1010 >> 4);
    }

    #[test]
    fn decode_cuts_at_symbol_boundaries_without_terminator() {
        let text = nopjal(7);
        // A symbol starts at word 4 (0x1010): the entry block must stop
        // there and fall through.
        let b = decode(&text, 0, &params(), &[0x1010]);
        assert_eq!(b.len, 4);
        assert_eq!(b.body_len, 4, "cut blocks have no terminator");
        assert_eq!(b.end, BlockEnd::FallThrough);
        assert_eq!(b.next_pc, 0x1010);
        // The block entered at the boundary proceeds to the jal.
        let c = decode(&text, 4, &params(), &[0x1010]);
        assert_eq!(c.len, 4);
        assert!(matches!(c.end, BlockEnd::Jal { .. }));
    }

    #[test]
    fn decode_cuts_at_end_of_text() {
        let text = vec![Inst::Nop; 3];
        let b = decode(&text, 1, &params(), &[]);
        assert_eq!(b.len, 2);
        assert_eq!(b.end, BlockEnd::FallThrough);
        // Falling through lands one past the end — the executor reports
        // InvalidPc there, as the interpreter would.
        assert_eq!(b.next_pc, 0x1000 + 3 * 4);
    }

    #[test]
    fn decode_respects_the_length_cap() {
        let text = vec![Inst::Nop; MAX_BLOCK_LEN as usize + 10];
        let b = decode(&text, 0, &params(), &[]);
        assert_eq!(b.len, MAX_BLOCK_LEN);
        assert_eq!(b.end, BlockEnd::FallThrough);
    }

    #[test]
    fn cache_counts_hits_misses_and_invalidations() {
        let text = nopjal(3);
        let p = params();
        let mut cache = BlockCache::new();
        cache.sync(1, p.text_base, text.len(), []);
        assert_eq!(cache.generation(), 1);
        cache.get_or_decode(0, &text, &p);
        cache.get_or_decode(0, &text, &p);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.blocks_live(), 1);
        // Same epoch: sync is a no-op.
        cache.sync(1, p.text_base, text.len(), []);
        assert_eq!(cache.blocks_live(), 1);
        assert_eq!(cache.stats().invalidations, 0);
        // New generation: wholesale invalidation.
        cache.sync(2, p.text_base, text.len(), []);
        assert_eq!(cache.blocks_live(), 0);
        assert_eq!(cache.stats().invalidations, 1);
        let b = cache.get_or_decode(0, &text, &p).clone();
        assert_eq!(cache.stats().misses, 2);
        // Re-decode after invalidation reproduces the identical block.
        let fresh = decode(&text, 0, &p, &[]);
        assert_eq!(b, fresh);
    }

    #[test]
    fn sync_ignores_out_of_text_symbols() {
        let text = nopjal(3);
        let p = params();
        let mut cache = BlockCache::new();
        // Boundaries at the base itself and outside text are ignored; the
        // block decodes to the full run.
        cache.sync(1, p.text_base, text.len(), [p.text_base, 0x9999_0000]);
        let b = cache.get_or_decode(0, &text, &p);
        assert_eq!(b.len, 4);
    }
}
