//! Set-associative caches with true-LRU replacement.
//!
//! The cache's address → set mapping is the central transmission channel of
//! the paper's biases: moving a data structure (with the environment size)
//! or a function (with the link order) changes which sets its lines occupy,
//! and therefore which other lines they evict.
//!
//! Geometry is validated **once**, at construction ([`Cache::try_new`] /
//! [`crate::MachineConfig::validate`]); the access path never re-checks it.
//! Line validity is an explicit per-set bit mask, not a tag sentinel: an
//! address whose real tag happens to equal a sentinel value can never
//! alias an invalid way into a spurious hit.

use serde::{Deserialize, Serialize};

use crate::geometry::GeometryError;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets, if the geometry is consistent.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: line size and set count must
    /// be powers of two, ways and size non-zero, and the associativity
    /// within the packed valid-mask width.
    pub fn try_sets(&self) -> Result<u32, GeometryError> {
        if !self.line.is_power_of_two() {
            return Err(GeometryError::LineNotPowerOfTwo { line: self.line });
        }
        if self.ways == 0 || self.size == 0 {
            return Err(GeometryError::ZeroSizeOrWays);
        }
        if self.ways > 64 {
            return Err(GeometryError::WaysUnsupported { ways: self.ways });
        }
        let span = self.ways * self.line;
        if !self.size.is_multiple_of(span) || !(self.size / span).is_power_of_two() {
            return Err(GeometryError::SetsNotPowerOfTwo {
                size: self.size,
                ways: self.ways,
                line: self.line,
            });
        }
        Ok(self.size / span)
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; prefer [`CacheConfig::try_sets`]
    /// when the configuration comes from user input.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.try_sets().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The set count, computed without validation. Correct only for a
    /// geometry that [`CacheConfig::try_sets`] accepts — which every
    /// constructed [`Cache`] and validated [`crate::MachineConfig`]
    /// guarantees — so the per-access mapping helpers below never pay for
    /// (or panic on) re-validation.
    #[inline]
    fn sets_unchecked(&self) -> u32 {
        self.size / (self.ways * self.line)
    }

    /// The set index `addr` maps to — the same mapping [`Cache::set_of`]
    /// applies on every simulated access, exposed on the configuration so
    /// static analyses can reason about conflicts without instantiating
    /// a cache. Requires a validated geometry (see [`CacheConfig::try_sets`]).
    #[must_use]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr / self.line) & (self.sets_unchecked() - 1)
    }

    /// The tag stored for `addr`: two addresses conflict in a set iff
    /// they share a set index but not a tag. Requires a validated geometry
    /// (see [`CacheConfig::try_sets`]).
    #[must_use]
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr / self.line / self.sets_unchecked()
    }
}

/// One level of set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: u32,
    /// `log2(line)`: the geometry is validated power-of-two, so the access
    /// path divides by shifting instead of paying a hardware `div` per
    /// access (the same hoist the front end applies to its fetch window).
    line_shift: u32,
    /// `log2(sets)`, for the tag extraction.
    set_shift: u32,
    /// `tags[set * ways + way]`: line tag. Meaningful only where the
    /// corresponding bit of `valid[set]` is set.
    tags: Vec<u32>,
    /// Per-set packed valid mask: bit `way` set ⇔ that way holds a line.
    valid: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    /// Per-set MRU filter: `mru[set]` is the line number
    /// (`addr >> line_shift`, widened; `u64::MAX` = none — a `u32` line
    /// number can never equal it, so no sentinel aliasing) of the set's
    /// most-recently-used way. An access to that line is *elided
    /// entirely*: it would hit (the line is resident — the only eviction
    /// path, the miss path, repoints the filter at the filled line), it
    /// would charge nothing, and the stamp write it skips is
    /// LRU-equivalent — the line's stamp is already the newest in its
    /// set, only the *relative order* of stamps within a set is ever
    /// compared (victim selection slices one set), stamps are unique so
    /// there are no ties, and the clock values later accesses observe are
    /// merely shifted, preserving that order.
    mru: Vec<u64>,
}

impl Cache {
    /// Creates an empty (all-invalid) cache, validating the geometry once.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint (see [`CacheConfig::try_sets`]).
    pub fn try_new(config: CacheConfig) -> Result<Cache, GeometryError> {
        let sets = config.try_sets()?;
        let entries = (sets * config.ways) as usize;
        Ok(Cache {
            config,
            sets,
            line_shift: config.line.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            tags: vec![0; entries],
            valid: vec![0; sets as usize],
            stamps: vec![0; entries],
            clock: 0,
            mru: vec![u64::MAX; sets as usize],
        })
    }

    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; prefer [`Cache::try_new`]
    /// when the configuration comes from user input.
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        Cache::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The set index for an address.
    #[must_use]
    #[inline]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr >> self.line_shift) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: u32) -> u32 {
        addr >> (self.line_shift + self.set_shift)
    }

    /// Accesses the line containing `addr`, updating LRU state. Returns
    /// `true` on hit; on a miss the line is filled (evicting the LRU way).
    ///
    /// `inline(always)` so the MRU-elision check — the overwhelmingly
    /// common outcome on the simulator's hot loop — costs a shift, a mask
    /// and one compare at the call site; the way scan stays outlined.
    #[inline(always)]
    pub fn access(&mut self, addr: u32) -> bool {
        let line_no = addr >> self.line_shift;
        let set = line_no & (self.sets - 1);
        if u64::from(line_no) == self.mru[set as usize] {
            return true;
        }
        self.access_scan(addr, line_no, set)
    }

    /// Read-only probe: is the line containing `addr` its set's MRU line?
    /// `true` means [`Cache::access`] would hit and change nothing, so the
    /// caller may elide the access entirely.
    #[inline(always)]
    #[must_use]
    pub fn mru_hit(&self, addr: u32) -> bool {
        let line_no = addr >> self.line_shift;
        let set = line_no & (self.sets - 1);
        u64::from(line_no) == self.mru[set as usize]
    }

    /// The way scan behind the MRU filter: LRU bookkeeping, and fill on
    /// a miss.
    fn access_scan(&mut self, addr: u32, line_no: u32, set: u32) -> bool {
        self.clock += 1;
        let tag = self.tag_of(addr);
        let base = (set * self.config.ways) as usize;
        let ways = self.config.ways as usize;
        let valid = self.valid[set as usize];
        // Slice the set once so the way scan is bounds-checked once.
        let set_tags = &mut self.tags[base..base + ways];

        if let Some(way) = (0..ways).find(|&w| valid >> w & 1 == 1 && set_tags[w] == tag) {
            self.stamps[base + way] = self.clock;
            self.mru[set as usize] = u64::from(line_no);
            return true;
        }
        // Miss: evict LRU. Invalid ways carry stamp 0 and are always older
        // than any filled way (the clock starts at 1), so they fill first.
        let set_stamps = &self.stamps[base..base + ways];
        let victim = (0..ways)
            .min_by_key(|&w| set_stamps[w])
            .expect("cache has at least one way");
        set_tags[victim] = tag;
        self.valid[set as usize] = valid | 1 << victim;
        self.stamps[base + victim] = self.clock;
        self.mru[set as usize] = u64::from(line_no);
        false
    }

    /// Invalidates all lines (used between measurement repetitions).
    pub fn flush(&mut self) {
        self.valid.fill(0);
        self.stamps.fill(0);
        self.clock = 0;
        self.mru.fill(u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(CacheConfig {
            size: 512,
            ways: 2,
            line: 64,
            hit_latency: 3,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(64), 1);
        assert_eq!(c.set_of(256), 0); // wraps after 4 sets
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1038)); // same 64-byte line
        assert!(!c.access(0x1040)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 in a 2-way cache.
        let (a, b, d) = (0, 256, 512);
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a now MRU
        assert!(!c.access(d)); // evicts b (LRU)
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4u32 {
            assert!(!c.access(i * 64));
        }
        for i in 0..4u32 {
            assert!(c.access(i * 64), "set {i} retained");
        }
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0x42);
        c.flush();
        assert!(!c.access(0x42));
    }

    #[test]
    fn moving_a_buffer_changes_its_sets() {
        // The bias mechanism in miniature: the same 128-byte buffer at two
        // different base addresses occupies different sets.
        let c = tiny();
        let sets_at = |base: u32| -> Vec<u32> { (0..2).map(|i| c.set_of(base + i * 64)).collect() };
        assert_ne!(sets_at(0), sets_at(128));
    }

    #[test]
    fn config_geometry_agrees_with_the_simulated_cache() {
        let c = tiny();
        for addr in (0..4096u32).step_by(40) {
            assert_eq!(c.set_of(addr), c.config().set_of(addr));
        }
        // Distinct tags at the same set index are exactly the conflicts.
        let cfg = c.config();
        assert_eq!(cfg.set_of(0), cfg.set_of(256));
        assert_ne!(cfg.tag_of(0), cfg.tag_of(256));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_is_rejected() {
        let _ = Cache::new(CacheConfig {
            size: 384,
            ways: 2,
            line: 64,
            hit_latency: 1,
        });
    }

    #[test]
    fn bad_geometry_is_a_typed_error_at_construction() {
        let bad = CacheConfig {
            size: 384,
            ways: 2,
            line: 64,
            hit_latency: 1,
        };
        assert!(matches!(
            Cache::try_new(bad),
            Err(GeometryError::SetsNotPowerOfTwo { size: 384, .. })
        ));
        let zero = CacheConfig {
            size: 0,
            ways: 0,
            line: 64,
            hit_latency: 1,
        };
        assert_eq!(zero.try_sets(), Err(GeometryError::ZeroSizeOrWays));
        let line = CacheConfig {
            size: 512,
            ways: 2,
            line: 48,
            hit_latency: 1,
        };
        assert_eq!(
            line.try_sets(),
            Err(GeometryError::LineNotPowerOfTwo { line: 48 })
        );
        let wide = CacheConfig {
            size: 1 << 20,
            ways: 128,
            line: 64,
            hit_latency: 1,
        };
        assert_eq!(
            wide.try_sets(),
            Err(GeometryError::WaysUnsupported { ways: 128 })
        );
    }

    #[test]
    fn tag_equal_to_old_sentinel_does_not_hit_an_invalid_way() {
        // Regression: with `u32::MAX` as the invalid-tag sentinel, the
        // aliasing geometry is line = 1, sets = 1, where
        // `tag_of(u32::MAX) == u32::MAX` — a cold cache claimed a hit on
        // its never-filled way. Explicit valid bits make the first access
        // a miss like any other.
        let mut c = Cache::new(CacheConfig {
            size: 1,
            ways: 1,
            line: 1,
            hit_latency: 1,
        });
        assert_eq!(c.config().tag_of(u32::MAX), u32::MAX);
        assert!(!c.access(u32::MAX), "cold cache must miss");
        assert!(c.access(u32::MAX), "then hit once filled");
        c.flush();
        assert!(!c.access(u32::MAX), "flush invalidates the way again");
    }
}
