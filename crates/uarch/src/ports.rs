//! Explicit ports between components.
//!
//! A port is a narrow, borrowed view of a shared resource that one
//! component hands another for the duration of a single operation — the
//! wiring that replaced the monolithic loop's inline field accesses. In a
//! collapsed single-chain configuration the port calls inline to exactly
//! the code the old loop contained; under the event kernel the same ports
//! are how front end and memory hierarchy reach the shared L2.

use crate::cache::Cache;
use crate::counters::Counters;

/// A demand-miss port into the shared unified L2.
///
/// Both the front end (I-side refills) and the memory hierarchy (D-side
/// refills) own one of these per operation; the L2 itself stays a single
/// shared structure on the machine, which is what makes I/D interference
/// through L2 sets a transmissible bias channel.
#[derive(Debug)]
pub struct L2Port<'a> {
    cache: &'a mut Cache,
    stall_hit: u64,
    stall_miss: u64,
}

impl<'a> L2Port<'a> {
    /// Wires a port to the shared L2 with the machine's overlap-scaled
    /// refill stalls (an L1 miss that hits L2, and a miss to memory).
    #[inline]
    pub fn new(cache: &'a mut Cache, stall_hit: u64, stall_miss: u64) -> L2Port<'a> {
        L2Port {
            cache,
            stall_hit,
            stall_miss,
        }
    }

    /// Services an L1 demand miss for the line containing `addr`: returns
    /// the stall to charge, counting an L2 miss when the line was not
    /// present.
    #[inline]
    pub fn refill(&mut self, addr: u32, c: &mut Counters) -> u64 {
        if self.cache.access(addr) {
            self.stall_hit
        } else {
            c.l2_misses += 1;
            self.stall_miss
        }
    }

    /// Trains the L2 with a non-demand (prefetch) access: no counters, no
    /// stall — the fill happens off the critical path.
    #[inline]
    pub fn touch(&mut self, addr: u32) {
        let _ = self.cache.access(addr);
    }
}
