//! The data memory hierarchy component: L1D, D-TLB, banks and split
//! penalties.
//!
//! Everything address-indexed on the data side lives here, which is why
//! the environment size (which moves the stack) transmits bias through
//! this component: L1D and D-TLB set mappings, bank selection bits, and
//! line/page straddles. The core drives it through [`MemSystem::access`];
//! under the event kernel it is registered as a (demand-driven, never
//! self-ticking) [`Component`].

use biaslab_toolchain::layout::PAGE_SIZE;

use crate::cache::{Cache, CacheConfig};
use crate::counters::Counters;
use crate::kernel::Component;
use crate::ports::L2Port;
use crate::tlb::{Tlb, TlbConfig};

/// The data-side timing component.
#[derive(Debug, Clone)]
pub struct MemSystem {
    dtlb: Tlb,
    l1d: Cache,
    /// (retired-instruction index, bank, line) of the last two data
    /// accesses, for the bank-conflict model. Deliberately *not* reset per
    /// run: like cache contents, it is machine state that persists across
    /// warm repetitions and clears on [`MemSystem::flush`].
    last_access: [Option<(u64, u32, u32)>; 2],
    dtlb_penalty: u64,
    /// Load-use latency charged on an L1D load hit.
    load_use: u64,
    line: u32,
    banks: u32,
    bank_window: u64,
    bank_conflict_penalty: u64,
    next_line_prefetch: bool,
}

/// The slice of [`crate::MachineConfig`] the data side consumes.
#[derive(Debug, Clone, Copy)]
pub struct MemParams {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
    /// Bank count (power of two; 8-byte interleave) or ≤ 1 to disable.
    pub banks: u32,
    /// Retired-instruction window within which two accesses share an
    /// issue group for the bank model.
    pub bank_window: u32,
    /// Stall charged per bank conflict.
    pub bank_conflict_penalty: u32,
    /// Next-line prefetch on L1D demand misses.
    pub next_line_prefetch: bool,
}

impl MemSystem {
    /// Builds the memory hierarchy from validated geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry; [`crate::Machine::try_new`]
    /// validates the whole configuration first.
    #[must_use]
    pub fn new(p: MemParams) -> MemSystem {
        MemSystem {
            dtlb_penalty: u64::from(p.dtlb.miss_penalty),
            load_use: u64::from(p.l1d.hit_latency.saturating_sub(1)),
            line: p.l1d.line,
            banks: p.banks,
            bank_window: u64::from(p.bank_window),
            bank_conflict_penalty: u64::from(p.bank_conflict_penalty),
            next_line_prefetch: p.next_line_prefetch,
            dtlb: Tlb::new(p.dtlb),
            l1d: Cache::new(p.l1d),
            last_access: [None, None],
        }
    }

    /// Port: charge the timing cost of a data access (possibly split
    /// across cache lines and pages).
    ///
    /// `inst_index` is the retiring instruction's ordinal, used by the
    /// bank model: two accesses within `bank_window` instructions of each
    /// other issue in the same group on these wide cores, and conflict
    /// when they touch the same L1D bank in different lines — the
    /// structural hazard whose dependence on *address bits 3..6* gives
    /// memory layout its fine-grained performance texture.
    #[inline]
    pub fn access(
        &mut self,
        c: &mut Counters,
        addr: u32,
        size: u32,
        is_store: bool,
        inst_index: u64,
        l2: &mut L2Port<'_>,
    ) {
        if self.banks > 1 {
            let bank = (addr / 8) & (self.banks - 1);
            let line_no = addr / self.line;
            for prev in self.last_access.into_iter().flatten() {
                let (prev_idx, prev_bank, prev_line) = prev;
                if inst_index.saturating_sub(prev_idx) <= self.bank_window
                    && prev_bank == bank
                    && prev_line != line_no
                {
                    c.bank_conflicts += 1;
                    c.cycles += self.bank_conflict_penalty;
                    c.stall_memory += self.bank_conflict_penalty;
                    break;
                }
            }
            self.last_access = [Some((inst_index, bank, line_no)), self.last_access[0]];
        }
        let line = self.line;
        let first_line = addr / line;
        let last_line = (addr + size - 1) / line;
        if last_line != first_line {
            c.line_splits += 1;
        }
        if (addr + size - 1) / PAGE_SIZE != addr / PAGE_SIZE {
            c.page_splits += 1;
        }
        let mut a = addr;
        loop {
            self.one_line(c, a, is_store, l2);
            let next = (a / line + 1) * line;
            if next > addr + size - 1 {
                break;
            }
            a = next;
        }
    }

    #[inline]
    fn one_line(&mut self, c: &mut Counters, addr: u32, is_store: bool, l2: &mut L2Port<'_>) {
        c.l1d_accesses += 1;
        if !self.dtlb.access(addr) {
            c.dtlb_misses += 1;
            c.cycles += self.dtlb_penalty;
            c.stall_memory += self.dtlb_penalty;
        }
        if self.l1d.access(addr) {
            // Loads pay the load-use latency; stores retire via the buffer.
            if !is_store {
                c.cycles += self.load_use;
                c.stall_memory += self.load_use;
            }
        } else {
            c.l1d_misses += 1;
            let stall = l2.refill(addr, c);
            c.cycles += stall;
            c.stall_memory += stall;
            if self.next_line_prefetch {
                // Fill the next line too (and train L2); the prefetch is
                // off the critical path, so no demand latency is charged.
                let next = addr.wrapping_add(self.line) / self.line * self.line;
                let _ = self.l1d.access(next);
                l2.touch(next);
            }
        }
    }

    /// Returns all data-side state to cold.
    pub fn flush(&mut self) {
        self.dtlb.flush();
        self.l1d.flush();
        self.last_access = [None, None];
    }
}

impl Component for MemSystem {
    fn name(&self) -> &'static str {
        "memory"
    }

    /// Purely demand-driven: the core pulls accesses through the port, so
    /// the hierarchy never asks the scheduler for a tick. (A write-back
    /// drain or DMA engine would be the first occupant of this hook.)
    fn next_tick(&self) -> Option<u64> {
        None
    }

    fn tick(&mut self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> (MemSystem, Cache) {
        let m = MemSystem::new(MemParams {
            l1d: CacheConfig {
                size: 1024,
                ways: 2,
                line: 64,
                hit_latency: 3,
            },
            dtlb: TlbConfig {
                entries: 8,
                ways: 2,
                miss_penalty: 30,
            },
            banks: 4,
            bank_window: 8,
            bank_conflict_penalty: 2,
            next_line_prefetch: false,
        });
        let l2 = Cache::new(CacheConfig {
            size: 4096,
            ways: 4,
            line: 64,
            hit_latency: 10,
        });
        (m, l2)
    }

    #[test]
    fn straddling_a_line_counts_a_split_and_two_accesses() {
        let (mut m, mut l2) = mem();
        let mut c = Counters::default();
        let mut port = L2Port::new(&mut l2, 5, 50);
        m.access(&mut c, 60, 8, false, 1, &mut port);
        assert_eq!(c.line_splits, 1);
        assert_eq!(c.l1d_accesses, 2, "one per touched line");
        assert_eq!(c.l1d_misses, 2);
    }

    #[test]
    fn same_bank_different_line_conflicts_within_the_window() {
        let (mut m, mut l2) = mem();
        let mut c = Counters::default();
        let mut port = L2Port::new(&mut l2, 5, 50);
        // Bank of addr = (addr/8) & 3: 0 and 256 share bank 0, lines 0 and 4.
        m.access(&mut c, 0, 4, false, 1, &mut port);
        m.access(&mut c, 256, 4, false, 2, &mut port);
        assert_eq!(c.bank_conflicts, 1);
        // Far apart in retirement order: no conflict.
        m.access(&mut c, 0, 4, false, 100, &mut port);
        assert_eq!(c.bank_conflicts, 1);
    }

    #[test]
    fn is_a_demand_driven_component() {
        let (m, _) = mem();
        assert_eq!(m.name(), "memory");
        assert_eq!(m.next_tick(), None);
    }
}
