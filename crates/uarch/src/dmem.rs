//! The data memory hierarchy component: L1D, D-TLB, banks and split
//! penalties.
//!
//! Everything address-indexed on the data side lives here, which is why
//! the environment size (which moves the stack) transmits bias through
//! this component: L1D and D-TLB set mappings, bank selection bits, and
//! line/page straddles. The core drives it through [`MemSystem::access`];
//! under the event kernel it is registered as a (demand-driven, never
//! self-ticking) [`Component`].

use biaslab_toolchain::layout::PAGE_SIZE;

use crate::cache::{Cache, CacheConfig};
use crate::counters::Counters;
use crate::kernel::Component;
use crate::ports::L2Port;
use crate::tlb::{Tlb, TlbConfig};

/// The data-side timing component.
#[derive(Debug, Clone)]
pub struct MemSystem {
    dtlb: Tlb,
    l1d: Cache,
    /// Bank-conflict model state for the last two data accesses (youngest
    /// first): `last_key` packs `(bank << 32) | line` so "same bank,
    /// different line" is two tests on one xor (`x >> 32 == 0 && x != 0`),
    /// and `last_idx` holds the retired-instruction index. `u64::MAX` is
    /// the "empty" key: its bank field `0xFFFF_FFFF` exceeds any real bank
    /// (`< banks ≤ 2^31`), so it can never compare equal. Deliberately
    /// *not* reset per run: like cache contents, it is machine state that
    /// persists across warm repetitions and clears on [`MemSystem::flush`].
    last_key: [u64; 2],
    last_idx: [u64; 2],
    dtlb_penalty: u64,
    /// Load-use latency charged on an L1D load hit.
    load_use: u64,
    line: u32,
    /// `log2(line)`: validated power-of-two, so the line/bank arithmetic
    /// on the access path shifts instead of dividing.
    line_shift: u32,
    banks: u32,
    bank_window: u64,
    bank_conflict_penalty: u64,
    next_line_prefetch: bool,
}

/// The slice of [`crate::MachineConfig`] the data side consumes.
#[derive(Debug, Clone, Copy)]
pub struct MemParams {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
    /// Bank count (power of two; 8-byte interleave) or ≤ 1 to disable.
    pub banks: u32,
    /// Retired-instruction window within which two accesses share an
    /// issue group for the bank model.
    pub bank_window: u32,
    /// Stall charged per bank conflict.
    pub bank_conflict_penalty: u32,
    /// Next-line prefetch on L1D demand misses.
    pub next_line_prefetch: bool,
}

impl MemSystem {
    /// Builds the memory hierarchy from validated geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry; [`crate::Machine::try_new`]
    /// validates the whole configuration first.
    #[must_use]
    pub fn new(p: MemParams) -> MemSystem {
        MemSystem {
            dtlb_penalty: u64::from(p.dtlb.miss_penalty),
            load_use: u64::from(p.l1d.hit_latency.saturating_sub(1)),
            line: p.l1d.line,
            line_shift: p.l1d.line.trailing_zeros(),
            banks: p.banks,
            bank_window: u64::from(p.bank_window),
            bank_conflict_penalty: u64::from(p.bank_conflict_penalty),
            next_line_prefetch: p.next_line_prefetch,
            dtlb: Tlb::new(p.dtlb),
            l1d: Cache::new(p.l1d),
            last_key: [u64::MAX; 2],
            last_idx: [0; 2],
        }
    }

    /// Port: charge the timing cost of a data access (possibly split
    /// across cache lines and pages).
    ///
    /// `inst_index` is the retiring instruction's ordinal, used by the
    /// bank model: two accesses within `bank_window` instructions of each
    /// other issue in the same group on these wide cores, and conflict
    /// when they touch the same L1D bank in different lines — the
    /// structural hazard whose dependence on *address bits 3..6* gives
    /// memory layout its fine-grained performance texture.
    #[inline]
    pub fn access(
        &mut self,
        c: &mut Counters,
        addr: u32,
        size: u32,
        is_store: bool,
        inst_index: u64,
        l2: &mut L2Port<'_>,
    ) {
        if !self.access_fast(c, addr, size, is_store, inst_index) {
            self.access_lines(c, addr, size, is_store, l2);
        }
    }

    /// The port minus the L2: bank model plus the fused single-line fast
    /// path, which never refills and so never needs an [`L2Port`].
    /// Returns `true` if the access was fully accounted; on `false` the
    /// caller must finish it with [`MemSystem::access_lines`], which is
    /// when an L2 borrow is actually required. Splitting the port this
    /// way keeps port construction off the executors' hot path.
    #[inline(always)]
    #[must_use = "a false return means the access is not yet charged"]
    pub fn access_fast(
        &mut self,
        c: &mut Counters,
        addr: u32,
        size: u32,
        is_store: bool,
        inst_index: u64,
    ) -> bool {
        if self.banks > 1 {
            let bank = (addr / 8) & (self.banks - 1);
            let line_no = addr >> self.line_shift;
            let key = (u64::from(bank) << 32) | u64::from(line_no);
            // Evaluate both hazards unconditionally (a handful of ALU ops;
            // the empty sentinel can never match a real bank) and branch
            // once. At most one conflict is charged per access, as before.
            let x0 = self.last_key[0] ^ key;
            let x1 = self.last_key[1] ^ key;
            let h0 = x0 != 0
                && x0 >> 32 == 0
                && inst_index.saturating_sub(self.last_idx[0]) <= self.bank_window;
            let h1 = x1 != 0
                && x1 >> 32 == 0
                && inst_index.saturating_sub(self.last_idx[1]) <= self.bank_window;
            if h0 | h1 {
                c.bank_conflicts += 1;
                c.cycles += self.bank_conflict_penalty;
                c.stall_memory += self.bank_conflict_penalty;
            }
            self.last_key = [key, self.last_key[0]];
            self.last_idx = [inst_index, self.last_idx[0]];
        }
        let shift = self.line_shift;
        let end = addr + size - 1;
        if end >> shift == addr >> shift
            && end / PAGE_SIZE == addr / PAGE_SIZE
            && self.dtlb.mru_hit(addr)
            && self.l1d.mru_hit(addr)
        {
            // Fused fast path: the access stays in one line and one page
            // (no split counters move) and both the D-TLB and L1D would
            // hit their set's MRU entry without changing state. Only the
            // counters an in-line hit moves are touched.
            c.l1d_accesses += 1;
            if !is_store {
                c.cycles += self.load_use;
                c.stall_memory += self.load_use;
            }
            return true;
        }
        false
    }

    /// The general multi-line walk behind the fused fast path.
    pub fn access_lines(
        &mut self,
        c: &mut Counters,
        addr: u32,
        size: u32,
        is_store: bool,
        l2: &mut L2Port<'_>,
    ) {
        let shift = self.line_shift;
        let first_line = addr >> shift;
        let last_line = (addr + size - 1) >> shift;
        if last_line != first_line {
            c.line_splits += 1;
        }
        if (addr + size - 1) / PAGE_SIZE != addr / PAGE_SIZE {
            c.page_splits += 1;
        }
        let mut a = addr;
        loop {
            self.one_line(c, a, is_store, l2);
            let next = ((a >> shift) + 1) << shift;
            if next > addr + size - 1 {
                break;
            }
            a = next;
        }
    }

    #[inline]
    fn one_line(&mut self, c: &mut Counters, addr: u32, is_store: bool, l2: &mut L2Port<'_>) {
        c.l1d_accesses += 1;
        if !self.dtlb.access(addr) {
            c.dtlb_misses += 1;
            c.cycles += self.dtlb_penalty;
            c.stall_memory += self.dtlb_penalty;
        }
        if self.l1d.access(addr) {
            // Loads pay the load-use latency; stores retire via the buffer.
            if !is_store {
                c.cycles += self.load_use;
                c.stall_memory += self.load_use;
            }
        } else {
            c.l1d_misses += 1;
            let stall = l2.refill(addr, c);
            c.cycles += stall;
            c.stall_memory += stall;
            if self.next_line_prefetch {
                // Fill the next line too (and train L2); the prefetch is
                // off the critical path, so no demand latency is charged.
                let next = (addr.wrapping_add(self.line) >> self.line_shift) << self.line_shift;
                let _ = self.l1d.access(next);
                l2.touch(next);
            }
        }
    }

    /// Returns all data-side state to cold.
    pub fn flush(&mut self) {
        self.dtlb.flush();
        self.l1d.flush();
        self.last_key = [u64::MAX; 2];
        self.last_idx = [0; 2];
    }
}

impl Component for MemSystem {
    fn name(&self) -> &'static str {
        "memory"
    }

    /// Purely demand-driven: the core pulls accesses through the port, so
    /// the hierarchy never asks the scheduler for a tick. (A write-back
    /// drain or DMA engine would be the first occupant of this hook.)
    fn next_tick(&self) -> Option<u64> {
        None
    }

    fn tick(&mut self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> (MemSystem, Cache) {
        let m = MemSystem::new(MemParams {
            l1d: CacheConfig {
                size: 1024,
                ways: 2,
                line: 64,
                hit_latency: 3,
            },
            dtlb: TlbConfig {
                entries: 8,
                ways: 2,
                miss_penalty: 30,
            },
            banks: 4,
            bank_window: 8,
            bank_conflict_penalty: 2,
            next_line_prefetch: false,
        });
        let l2 = Cache::new(CacheConfig {
            size: 4096,
            ways: 4,
            line: 64,
            hit_latency: 10,
        });
        (m, l2)
    }

    #[test]
    fn straddling_a_line_counts_a_split_and_two_accesses() {
        let (mut m, mut l2) = mem();
        let mut c = Counters::default();
        let mut port = L2Port::new(&mut l2, 5, 50);
        m.access(&mut c, 60, 8, false, 1, &mut port);
        assert_eq!(c.line_splits, 1);
        assert_eq!(c.l1d_accesses, 2, "one per touched line");
        assert_eq!(c.l1d_misses, 2);
    }

    #[test]
    fn same_bank_different_line_conflicts_within_the_window() {
        let (mut m, mut l2) = mem();
        let mut c = Counters::default();
        let mut port = L2Port::new(&mut l2, 5, 50);
        // Bank of addr = (addr/8) & 3: 0 and 256 share bank 0, lines 0 and 4.
        m.access(&mut c, 0, 4, false, 1, &mut port);
        m.access(&mut c, 256, 4, false, 2, &mut port);
        assert_eq!(c.bank_conflicts, 1);
        // Far apart in retirement order: no conflict.
        m.access(&mut c, 0, 4, false, 100, &mut port);
        assert_eq!(c.bank_conflicts, 1);
    }

    #[test]
    fn is_a_demand_driven_component() {
        let (m, _) = mem();
        assert_eq!(m.name(), "memory");
        assert_eq!(m.next_tick(), None);
    }
}
