//! Machine models and the execution engine.
//!
//! A [`Machine`] couples the functional MRV32 core with timing models for
//! the front end (fetch windows, I-cache, I-TLB, branch prediction), the
//! memory hierarchy (L1D/L2, D-TLB, line/page splits) and long-latency
//! ALU operations. Three presets mirror the paper's experimental machines:
//!
//! * [`MachineConfig::core2`] — wide OoO core, large forgiving caches;
//! * [`MachineConfig::pentium4`] — long pipeline (expensive mispredicts),
//!   smaller lower-associativity L1D;
//! * [`MachineConfig::o3cpu`] — the m5 simulator's default-ish O3CPU with a
//!   2-way L1D, the machine the paper uses for causal analysis (low
//!   associativity makes layout conflicts easy to see).
//!
//! Everything is deterministic: the same executable, environment and
//! arguments produce bit-identical counters.

use std::fmt;

use biaslab_isa::{checksum_fold, Inst, Reg};
use biaslab_toolchain::layout::PAGE_SIZE;
use biaslab_toolchain::link::Executable;
use biaslab_toolchain::load::Process;
use serde::{Deserialize, Serialize};

use crate::branch::{BranchConfig, BranchPredictor};
use crate::cache::{Cache, CacheConfig};
use crate::counters::Counters;
use crate::tlb::{Tlb, TlbConfig};

/// Complete parameterization of a simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable model name.
    pub name: String,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency (beyond L2) in cycles.
    pub memory_latency: u32,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Branch prediction unit.
    pub branch: BranchConfig,
    /// Fetch window size in bytes: a new window is fetched whenever
    /// execution leaves the current aligned window.
    pub fetch_bytes: u32,
    /// Extra cycles for a multiply (beyond the base cycle).
    pub mul_latency: u32,
    /// Extra cycles for a divide/remainder.
    pub div_latency: u32,
    /// Number of L1D banks (power of two; banks interleave at 8-byte
    /// granularity). Two accesses issued back-to-back that hit the same
    /// bank in different lines conflict.
    pub l1d_banks: u32,
    /// Stall cycles charged for an L1D bank conflict.
    pub bank_conflict_penalty: u32,
    /// Two data accesses within this many retired instructions of each
    /// other are treated as issuing in the same group for the bank model.
    pub bank_window: u32,
    /// Next-line L1D prefetch: on a demand miss, also fill line+1. Off in
    /// the paper-machine presets (kept stable for the recorded figures);
    /// the `abl-prefetch` ablation studies its effect on bias.
    pub l1d_next_line_prefetch: bool,
    /// Fraction of memory-stall cycles hidden by out-of-order overlap
    /// (0 = fully exposed, in-order).
    pub overlap: f64,
    /// Instruction budget before a run aborts.
    pub max_instructions: u64,
}

impl MachineConfig {
    /// An Intel Core 2-like model.
    #[must_use]
    pub fn core2() -> MachineConfig {
        MachineConfig {
            name: "core2".into(),
            l1i: CacheConfig {
                size: 32 << 10,
                ways: 8,
                line: 64,
                hit_latency: 3,
            },
            l1d: CacheConfig {
                size: 32 << 10,
                ways: 8,
                line: 64,
                hit_latency: 3,
            },
            l2: CacheConfig {
                size: 2 << 20,
                ways: 8,
                line: 64,
                hit_latency: 15,
            },
            memory_latency: 200,
            itlb: TlbConfig {
                entries: 32,
                ways: 4,
                miss_penalty: 20,
            },
            dtlb: TlbConfig {
                entries: 64,
                ways: 4,
                miss_penalty: 30,
            },
            branch: BranchConfig {
                gshare_bits: 12,
                btb_entries: 512,
                ras_depth: 16,
                mispredict_penalty: 12,
                btb_miss_penalty: 2,
            },
            fetch_bytes: 16,
            mul_latency: 2,
            div_latency: 21,
            l1d_banks: 8,
            bank_conflict_penalty: 2,
            bank_window: 8,
            l1d_next_line_prefetch: false,
            overlap: 0.4,
            max_instructions: 1 << 33,
        }
    }

    /// An Intel Pentium 4-like model: long pipeline, small 4-way L1D.
    #[must_use]
    pub fn pentium4() -> MachineConfig {
        MachineConfig {
            name: "pentium4".into(),
            l1i: CacheConfig {
                size: 16 << 10,
                ways: 4,
                line: 64,
                hit_latency: 3,
            },
            l1d: CacheConfig {
                size: 16 << 10,
                ways: 4,
                line: 64,
                hit_latency: 4,
            },
            l2: CacheConfig {
                size: 1 << 20,
                ways: 8,
                line: 64,
                hit_latency: 20,
            },
            memory_latency: 250,
            itlb: TlbConfig {
                entries: 32,
                ways: 4,
                miss_penalty: 25,
            },
            dtlb: TlbConfig {
                entries: 64,
                ways: 4,
                miss_penalty: 35,
            },
            branch: BranchConfig {
                gshare_bits: 12,
                btb_entries: 256,
                ras_depth: 16,
                mispredict_penalty: 20,
                btb_miss_penalty: 3,
            },
            fetch_bytes: 16,
            mul_latency: 3,
            div_latency: 30,
            l1d_banks: 8,
            bank_conflict_penalty: 4,
            bank_window: 12,
            l1d_next_line_prefetch: false,
            overlap: 0.25,
            max_instructions: 1 << 33,
        }
    }

    /// An m5 O3CPU-like model with a 2-way L1D (the simulator the paper
    /// uses to explain *why* bias arises).
    #[must_use]
    pub fn o3cpu() -> MachineConfig {
        MachineConfig {
            name: "o3cpu".into(),
            l1i: CacheConfig {
                size: 32 << 10,
                ways: 2,
                line: 64,
                hit_latency: 2,
            },
            l1d: CacheConfig {
                size: 32 << 10,
                ways: 2,
                line: 64,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size: 1 << 20,
                ways: 8,
                line: 64,
                hit_latency: 12,
            },
            memory_latency: 150,
            itlb: TlbConfig {
                entries: 32,
                ways: 4,
                miss_penalty: 20,
            },
            dtlb: TlbConfig {
                entries: 64,
                ways: 4,
                miss_penalty: 25,
            },
            branch: BranchConfig {
                gshare_bits: 13,
                btb_entries: 1024,
                ras_depth: 16,
                mispredict_penalty: 8,
                btb_miss_penalty: 1,
            },
            fetch_bytes: 32,
            mul_latency: 2,
            div_latency: 20,
            l1d_banks: 4,
            bank_conflict_penalty: 2,
            bank_window: 8,
            l1d_next_line_prefetch: false,
            overlap: 0.6,
            max_instructions: 1 << 33,
        }
    }

    /// The three paper machines, in the paper's order.
    #[must_use]
    pub fn all() -> Vec<MachineConfig> {
        vec![
            MachineConfig::pentium4(),
            MachineConfig::core2(),
            MachineConfig::o3cpu(),
        ]
    }

    /// Checks the configuration for geometric consistency. [`Machine::new`]
    /// panics on invalid geometry; call this first when the configuration
    /// comes from user input (e.g. an ablation sweep).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            if !c.line.is_power_of_two() {
                return Err(format!("{name}: line size {} not a power of two", c.line));
            }
            if c.ways == 0 || c.size == 0 {
                return Err(format!("{name}: zero ways or size"));
            }
            if c.size % (c.ways * c.line) != 0 || !(c.size / (c.ways * c.line)).is_power_of_two() {
                return Err(format!(
                    "{name}: {} bytes / {} ways / {} line does not give a power-of-two set count",
                    c.size, c.ways, c.line
                ));
            }
        }
        for (name, t) in [("itlb", &self.itlb), ("dtlb", &self.dtlb)] {
            if t.ways == 0 || t.entries % t.ways != 0 || !(t.entries / t.ways).is_power_of_two() {
                return Err(format!(
                    "{name}: {}x{} is not a power-of-two set layout",
                    t.entries, t.ways
                ));
            }
        }
        if !self.branch.btb_entries.is_power_of_two() {
            return Err(format!(
                "btb: {} entries not a power of two",
                self.branch.btb_entries
            ));
        }
        if self.branch.gshare_bits == 0 || self.branch.gshare_bits > 24 {
            return Err(format!(
                "gshare: {} bits outside 1..=24",
                self.branch.gshare_bits
            ));
        }
        if !self.fetch_bytes.is_power_of_two() || self.fetch_bytes < 4 {
            return Err(format!("fetch window {} invalid", self.fetch_bytes));
        }
        if self.l1d_banks > 1 && !self.l1d_banks.is_power_of_two() {
            return Err(format!("{} banks not a power of two", self.l1d_banks));
        }
        if !(0.0..1.0).contains(&self.overlap) {
            return Err(format!("overlap {} outside [0, 1)", self.overlap));
        }
        Ok(())
    }

    /// The fetch-window id containing `pc` — the same mapping the front
    /// end applies (`pc / fetch_bytes`). Two instructions in the same
    /// window are fetched together; an entry point late in its window
    /// wastes the rest of the fetch.
    #[must_use]
    pub fn fetch_window_of(&self, pc: u32) -> u32 {
        pc / self.fetch_bytes
    }

    /// Byte offset of `pc` within its fetch window.
    #[must_use]
    pub fn fetch_offset_of(&self, pc: u32) -> u32 {
        pc % self.fetch_bytes
    }

    /// The L1D bank `addr` maps to (8-byte interleave, the same mapping
    /// the execution engine applies); `0` when banking is disabled.
    #[must_use]
    pub fn l1d_bank_of(&self, addr: u32) -> u32 {
        if self.l1d_banks > 1 {
            (addr / 8) & (self.l1d_banks - 1)
        } else {
            0
        }
    }
}

/// The result of running a process to `halt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Event counters for the whole run.
    pub counters: Counters,
    /// Final architectural checksum.
    pub checksum: u64,
    /// `r1` at halt (the entry function's return value).
    pub return_value: u64,
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The program counter left the text segment.
    InvalidPc(u32),
    /// The instruction budget was exhausted.
    Budget(u64),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidPc(pc) => write!(f, "program counter {pc:#010x} outside text"),
            RunError::Budget(n) => write!(f, "instruction budget of {n} exhausted"),
        }
    }
}

impl std::error::Error for RunError {}

/// Config-derived constants hoisted out of the execution loop: penalties
/// widened to `u64` once, and the overlap-scaled refill stalls computed
/// once per machine instead of once (or twice) per miss. Everything here
/// is a pure function of the [`MachineConfig`], so precomputing it cannot
/// change any counter.
#[derive(Debug, Clone, Copy)]
struct HotConfig {
    fetch_bytes: u32,
    /// `log2(fetch_bytes)` when the window size is a power of two (every
    /// validated config), letting the per-instruction window computation
    /// be a shift; `None` falls back to the division.
    fetch_shift: Option<u32>,
    itlb_penalty: u64,
    dtlb_penalty: u64,
    mispredict_penalty: u64,
    btb_miss_penalty: u64,
    bank_conflict_penalty: u64,
    /// `stall(l2.hit_latency)`: an L1 miss that hits in L2.
    stall_l2_hit: u64,
    /// `stall(l2.hit_latency + memory_latency)`: a miss to memory.
    stall_l2_miss: u64,
    /// Load-use latency charged on an L1D load hit.
    load_use: u64,
    mul_extra: u64,
    div_extra: u64,
    line: u32,
    banks: u32,
    bank_window: u64,
    max_instructions: u64,
    next_line_prefetch: bool,
}

impl HotConfig {
    fn of(config: &MachineConfig) -> HotConfig {
        let stall = |raw: u32| ((f64::from(raw)) * (1.0 - config.overlap)).round() as u64;
        HotConfig {
            fetch_bytes: config.fetch_bytes,
            fetch_shift: config
                .fetch_bytes
                .is_power_of_two()
                .then(|| config.fetch_bytes.trailing_zeros()),
            itlb_penalty: u64::from(config.itlb.miss_penalty),
            dtlb_penalty: u64::from(config.dtlb.miss_penalty),
            mispredict_penalty: u64::from(config.branch.mispredict_penalty),
            btb_miss_penalty: u64::from(config.branch.btb_miss_penalty),
            bank_conflict_penalty: u64::from(config.bank_conflict_penalty),
            stall_l2_hit: stall(config.l2.hit_latency),
            stall_l2_miss: stall(config.l2.hit_latency + config.memory_latency),
            load_use: u64::from(config.l1d.hit_latency.saturating_sub(1)),
            mul_extra: u64::from(config.mul_latency),
            div_extra: u64::from(config.div_latency),
            line: config.l1d.line,
            banks: config.l1d_banks,
            bank_window: u64::from(config.bank_window),
            max_instructions: config.max_instructions,
            next_line_prefetch: config.l1d_next_line_prefetch,
        }
    }
}

/// A simulated machine instance (cold caches and predictors).
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    hot: HotConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    bp: BranchPredictor,
    /// (retired-instruction index, bank, line) of the last two data
    /// accesses, for the bank-conflict model.
    last_access: [Option<(u64, u32, u32)>; 2],
}

impl Machine {
    /// Creates a cold machine.
    #[must_use]
    pub fn new(config: MachineConfig) -> Machine {
        Machine {
            hot: HotConfig::of(&config),
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            bp: BranchPredictor::new(config.branch),
            last_access: [None, None],
            config,
        }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Returns all microarchitectural state to cold.
    pub fn reset(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.itlb.flush();
        self.dtlb.flush();
        self.bp.flush();
        self.last_access = [None, None];
    }

    /// Runs `process` against `exe` until `halt`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidPc`] if control leaves the text segment
    /// (a toolchain bug) or [`RunError::Budget`] if the configured
    /// instruction budget runs out (likely an infinite loop).
    pub fn run(&mut self, exe: &Executable, process: Process) -> Result<RunResult, RunError> {
        self.run_inner(exe, process, None)
    }

    /// Like [`Machine::run`], additionally attributing every instruction's
    /// cycles to the function containing it.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_profiled(
        &mut self,
        exe: &Executable,
        process: Process,
    ) -> Result<(RunResult, crate::profile::Profile), RunError> {
        let mut attr = crate::profile::Attributor::new(exe);
        let result = self.run_inner(exe, process, Some(&mut attr))?;
        Ok((result, attr.finish()))
    }

    fn run_inner(
        &mut self,
        exe: &Executable,
        process: Process,
        attr: Option<&mut crate::profile::Attributor>,
    ) -> Result<RunResult, RunError> {
        // Monomorphize the execution loop on whether an attributor is
        // attached: the plain `run` path carries no per-instruction
        // bookkeeping at all, and profiled runs still observe identical
        // counters (attribution only reads them).
        match attr {
            Some(a) => self.run_loop::<true>(exe, process, Some(a)),
            None => self.run_loop::<false>(exe, process, None),
        }
    }

    fn run_loop<const PROFILE: bool>(
        &mut self,
        exe: &Executable,
        process: Process,
        mut attr: Option<&mut crate::profile::Attributor>,
    ) -> Result<RunResult, RunError> {
        let mut c = Counters::default();
        let mut mem = process.mem;
        let mut regs = [0u64; 32];
        regs[Reg::SP.index() as usize] = u64::from(process.sp);
        regs[Reg::GP.index() as usize] = u64::from(process.gp);
        for (i, &a) in process.args.iter().enumerate() {
            regs[1 + i] = a;
        }
        let mut pc = process.entry;
        let mut checksum = 0u64;
        let mut last_window = u32::MAX;
        let mut attributed: Option<(u32, u64)> = None;

        // The decoded text segment, addressed by word index: instruction
        // fetch is a subtract, a shift and one bounds check, replacing the
        // per-instruction `inst_at` call (base/alignment checks included —
        // a misaligned or out-of-text pc still reports `InvalidPc`, since
        // `wrapping_sub` sends addresses below the base past the end).
        let text = exe.text();
        let text_base = exe.text_base();
        let hot = self.hot;

        macro_rules! rd {
            ($r:expr) => {
                regs[$r.index() as usize]
            };
        }
        macro_rules! wr {
            ($r:expr, $v:expr) => {
                if !$r.is_zero() {
                    regs[$r.index() as usize] = $v;
                }
            };
        }

        loop {
            if PROFILE {
                if let Some(a) = attr.as_deref_mut() {
                    if let Some((prev_pc, prev_cycles)) = attributed {
                        a.record(prev_pc, c.cycles - prev_cycles);
                    }
                    attributed = Some((pc, c.cycles));
                }
            }
            if c.instructions >= hot.max_instructions {
                return Err(RunError::Budget(hot.max_instructions));
            }
            let word = pc.wrapping_sub(text_base);
            if word & 3 != 0 {
                return Err(RunError::InvalidPc(pc));
            }
            let Some(&inst) = text.get((word >> 2) as usize) else {
                return Err(RunError::InvalidPc(pc));
            };

            // --- front end -------------------------------------------------
            let window = match hot.fetch_shift {
                Some(shift) => pc >> shift,
                None => pc / hot.fetch_bytes,
            };
            if window != last_window {
                last_window = window;
                c.fetches += 1;
                if !self.itlb.access(pc) {
                    c.itlb_misses += 1;
                    c.cycles += hot.itlb_penalty;
                    c.stall_frontend += hot.itlb_penalty;
                }
                if !self.l1i.access(pc) {
                    c.l1i_misses += 1;
                    let stall = if self.l2.access(pc) {
                        hot.stall_l2_hit
                    } else {
                        c.l2_misses += 1;
                        hot.stall_l2_miss
                    };
                    c.cycles += stall;
                    c.stall_frontend += stall;
                }
            }

            c.instructions += 1;
            c.cycles += 1;
            let next_pc = pc.wrapping_add(4);

            match inst {
                Inst::Alu { op, rd, rs1, rs2 } => {
                    wr!(rd, op.eval(rd!(rs1), rd!(rs2)));
                    let extra = self.alu_extra(op);
                    c.cycles += extra;
                    c.stall_compute += extra;
                }
                Inst::AluImm { op, rd, rs1, imm } => {
                    wr!(rd, op.eval(rd!(rs1), op.extend_imm(imm)));
                    let extra = self.alu_extra(op);
                    c.cycles += extra;
                    c.stall_compute += extra;
                }
                Inst::Lui { rd, imm } => wr!(rd, u64::from(imm) << 16),
                Inst::Load {
                    width,
                    rd,
                    base,
                    offset,
                } => {
                    let addr = (rd!(base) as u32).wrapping_add(offset as i32 as u32);
                    c.loads += 1;
                    let idx = c.instructions;
                    self.data_access(&mut c, addr, width.bytes(), false, idx);
                    wr!(rd, mem.read_le(addr, width.bytes()));
                }
                Inst::Store {
                    width,
                    rs,
                    base,
                    offset,
                } => {
                    let addr = (rd!(base) as u32).wrapping_add(offset as i32 as u32);
                    c.stores += 1;
                    let idx = c.instructions;
                    self.data_access(&mut c, addr, width.bytes(), true, idx);
                    mem.write_le(addr, width.bytes(), rd!(rs));
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset,
                } => {
                    c.branches += 1;
                    let taken = cond.eval(rd!(rs1), rd!(rs2));
                    let predicted = self.bp.predict(pc).taken;
                    self.bp.update(pc, taken);
                    if predicted != taken {
                        c.mispredicts += 1;
                        c.cycles += hot.mispredict_penalty;
                        c.stall_branch += hot.mispredict_penalty;
                    }
                    if taken {
                        let target = next_pc.wrapping_add(offset as u32);
                        if !self.bp.btb_lookup(pc, target) {
                            c.btb_misses += 1;
                            c.cycles += hot.btb_miss_penalty;
                            c.stall_frontend += hot.btb_miss_penalty;
                        }
                        pc = target;
                        continue;
                    }
                }
                Inst::Jal { rd, offset } => {
                    let target = next_pc.wrapping_add(offset as u32);
                    if rd == Reg::RA {
                        self.bp.push_return(next_pc);
                    }
                    if !self.bp.btb_lookup(pc, target) {
                        c.btb_misses += 1;
                        c.cycles += hot.btb_miss_penalty;
                        c.stall_frontend += hot.btb_miss_penalty;
                    }
                    wr!(rd, u64::from(next_pc));
                    pc = target;
                    continue;
                }
                Inst::Jalr { rd, rs1, offset } => {
                    let target = (rd!(rs1) as u32).wrapping_add(offset as i32 as u32);
                    if rd.is_zero() && rs1 == Reg::RA {
                        // Return: predicted by the RAS.
                        if self.bp.pop_return() != Some(target) {
                            c.ras_mispredicts += 1;
                            c.cycles += hot.mispredict_penalty;
                            c.stall_branch += hot.mispredict_penalty;
                        }
                    } else {
                        if rd == Reg::RA {
                            self.bp.push_return(next_pc);
                        }
                        if !self.bp.btb_lookup(pc, target) {
                            c.btb_misses += 1;
                            c.cycles += hot.btb_miss_penalty;
                            c.stall_frontend += hot.btb_miss_penalty;
                        }
                    }
                    wr!(rd, u64::from(next_pc));
                    pc = target;
                    continue;
                }
                Inst::Chk { rs } => checksum = checksum_fold(checksum, rd!(rs)),
                Inst::Halt => {
                    return Ok(RunResult {
                        counters: c,
                        checksum,
                        return_value: regs[1],
                    });
                }
                Inst::Nop => {}
            }
            pc = next_pc;
        }
    }

    #[inline]
    fn alu_extra(&self, op: biaslab_isa::AluOp) -> u64 {
        use biaslab_isa::AluOp;
        match op {
            AluOp::Mul => self.hot.mul_extra,
            AluOp::Div | AluOp::Rem => self.hot.div_extra,
            _ => 0,
        }
    }

    /// Charges the timing cost of a data access (possibly split across
    /// cache lines and pages).
    ///
    /// `inst_index` is the retiring instruction's ordinal, used by the bank
    /// model: two accesses within `bank_window` instructions of each other issue in
    /// the same group on these wide cores, and conflict when they touch
    /// the same L1D bank in different lines — the structural hazard whose
    /// dependence on *address bits 3..6* gives memory layout its
    /// fine-grained performance texture.
    fn data_access(
        &mut self,
        c: &mut Counters,
        addr: u32,
        size: u32,
        is_store: bool,
        inst_index: u64,
    ) {
        let hot = self.hot;
        if hot.banks > 1 {
            let bank = (addr / 8) & (hot.banks - 1);
            let line_no = addr / hot.line;
            for prev in self.last_access.into_iter().flatten() {
                let (prev_idx, prev_bank, prev_line) = prev;
                if inst_index.saturating_sub(prev_idx) <= hot.bank_window
                    && prev_bank == bank
                    && prev_line != line_no
                {
                    c.bank_conflicts += 1;
                    c.cycles += hot.bank_conflict_penalty;
                    c.stall_memory += hot.bank_conflict_penalty;
                    break;
                }
            }
            self.last_access = [Some((inst_index, bank, line_no)), self.last_access[0]];
        }
        let line = hot.line;
        let first_line = addr / line;
        let last_line = (addr + size - 1) / line;
        if last_line != first_line {
            c.line_splits += 1;
        }
        if (addr + size - 1) / PAGE_SIZE != addr / PAGE_SIZE {
            c.page_splits += 1;
        }
        let mut a = addr;
        loop {
            self.one_line_access(c, a, is_store);
            let next = (a / line + 1) * line;
            if next > addr + size - 1 {
                break;
            }
            a = next;
        }
    }

    fn one_line_access(&mut self, c: &mut Counters, addr: u32, is_store: bool) {
        let hot = self.hot;
        c.l1d_accesses += 1;
        if !self.dtlb.access(addr) {
            c.dtlb_misses += 1;
            c.cycles += hot.dtlb_penalty;
            c.stall_memory += hot.dtlb_penalty;
        }
        if self.l1d.access(addr) {
            // Loads pay the load-use latency; stores retire via the buffer.
            if !is_store {
                c.cycles += hot.load_use;
                c.stall_memory += hot.load_use;
            }
        } else {
            c.l1d_misses += 1;
            let stall = if self.l2.access(addr) {
                hot.stall_l2_hit
            } else {
                c.l2_misses += 1;
                hot.stall_l2_miss
            };
            c.cycles += stall;
            c.stall_memory += stall;
            if hot.next_line_prefetch {
                // Fill the next line too (and train L2); the prefetch is
                // off the critical path, so no demand latency is charged.
                let next = addr.wrapping_add(hot.line) / hot.line * hot.line;
                self.l1d.access(next);
                self.l2.access(next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::codegen::compile;
    use biaslab_toolchain::link::Linker;
    use biaslab_toolchain::load::{Environment, Loader};
    use biaslab_toolchain::opt::{optimize, OptLevel};
    use biaslab_toolchain::ModuleBuilder;

    use super::*;

    fn build_exe(level: OptLevel) -> Executable {
        let mut mb = ModuleBuilder::new();
        mb.function("main", 1, true, |fb| {
            let n = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let a = fb.get(acc);
                let t = fb.mul_imm(iv, 3);
                let s = fb.add(a, t);
                fb.set(acc, s);
            });
            let r = fb.get(acc);
            fb.chk(r);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        Linker::new()
            .link(&compile(&optimize(&m, level), level), "main")
            .unwrap()
    }

    fn run(exe: &Executable, env: &Environment, args: &[u64]) -> RunResult {
        let process = Loader::new().load(exe, env, args).unwrap();
        Machine::new(MachineConfig::core2())
            .run(exe, process)
            .unwrap()
    }

    #[test]
    fn computes_correct_results() {
        let exe = build_exe(OptLevel::O0);
        let r = run(&exe, &Environment::new(), &[10]);
        // sum of 3*i for i in 0..10 = 3*45
        assert_eq!(r.return_value, 135);
    }

    #[test]
    fn all_levels_agree_on_semantics() {
        let expected = run(&build_exe(OptLevel::O0), &Environment::new(), &[50]);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let r = run(&build_exe(level), &Environment::new(), &[50]);
            assert_eq!(r.return_value, expected.return_value, "{level}");
            assert_eq!(r.checksum, expected.checksum, "{level}");
        }
    }

    #[test]
    fn o2_is_faster_than_o0() {
        let slow = run(&build_exe(OptLevel::O0), &Environment::new(), &[500]);
        let fast = run(&build_exe(OptLevel::O2), &Environment::new(), &[500]);
        assert!(
            fast.counters.cycles < slow.counters.cycles,
            "O2 {} vs O0 {}",
            fast.counters.cycles,
            slow.counters.cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let exe = build_exe(OptLevel::O2);
        let env = Environment::of_total_size(512);
        let a = run(&exe, &env, &[100]);
        let b = run(&exe, &env, &[100]);
        assert_eq!(a, b);
    }

    #[test]
    fn environment_changes_only_timing_not_semantics() {
        let exe = build_exe(OptLevel::O2);
        let a = run(&exe, &Environment::of_total_size(0), &[100]);
        let b = run(&exe, &Environment::of_total_size(4000), &[100]);
        assert_eq!(a.return_value, b.return_value);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.counters.instructions, b.counters.instructions);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut mb = ModuleBuilder::new();
        mb.function("spin", 0, false, |fb| {
            let b = fb.new_block();
            fb.jump(b);
            fb.switch_to(b);
            fb.jump(b);
        });
        let m = mb.finish().unwrap();
        let exe = Linker::new()
            .link(&compile(&optimize(&m, OptLevel::O0), OptLevel::O0), "spin")
            .unwrap();
        let mut config = MachineConfig::core2();
        config.max_instructions = 10_000;
        let process = Loader::new().load(&exe, &Environment::new(), &[]).unwrap();
        let err = Machine::new(config).run(&exe, process).unwrap_err();
        assert_eq!(err, RunError::Budget(10_000));
    }

    #[test]
    fn presets_validate() {
        for m in MachineConfig::all() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut m = MachineConfig::core2();
        m.l1d.ways = 3;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::core2();
        m.branch.btb_entries = 100;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::core2();
        m.overlap = 1.5;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::core2();
        m.fetch_bytes = 5;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::core2();
        m.dtlb.ways = 3;
        assert!(m.validate().is_err());
    }

    #[test]
    fn machines_differ_in_cycle_counts() {
        let exe = build_exe(OptLevel::O2);
        let mut cycles = Vec::new();
        for config in MachineConfig::all() {
            let process = Loader::new()
                .load(&exe, &Environment::new(), &[200])
                .unwrap();
            let r = Machine::new(config).run(&exe, process).unwrap();
            cycles.push(r.counters.cycles);
        }
        assert!(cycles.windows(2).any(|w| w[0] != w[1]), "{cycles:?}");
    }

    #[test]
    fn profiling_attributes_cycles_to_functions() {
        let exe = build_exe(OptLevel::O2);
        let process = Loader::new()
            .load(&exe, &Environment::new(), &[200])
            .unwrap();
        let (result, profile) = Machine::new(MachineConfig::core2())
            .run_profiled(&exe, process)
            .unwrap();
        assert_eq!(profile.hottest(), Some("main"));
        let attributed = profile.total_cycles();
        // Everything except the final halt instruction is attributed.
        assert!(attributed <= result.counters.cycles);
        assert!(
            attributed >= result.counters.cycles - 10,
            "attributed {attributed} vs total {}",
            result.counters.cycles
        );
        // Profiling must not change the measurement itself.
        let process = Loader::new()
            .load(&exe, &Environment::new(), &[200])
            .unwrap();
        let plain = Machine::new(MachineConfig::core2())
            .run(&exe, process)
            .unwrap();
        assert_eq!(plain.counters, result.counters);
    }

    #[test]
    fn stall_categories_account_for_all_extra_cycles() {
        let exe = build_exe(OptLevel::O0);
        let process = Loader::new()
            .load(&exe, &Environment::new(), &[300])
            .unwrap();
        let r = Machine::new(MachineConfig::pentium4())
            .run(&exe, process)
            .unwrap();
        let c = &r.counters;
        // cycles = 1 per instruction + attributed stalls, exactly.
        assert_eq!(c.cycles, c.instructions + c.stall_total());
    }

    #[test]
    fn next_line_prefetch_reduces_streaming_misses() {
        let exe = build_exe(OptLevel::O2);
        let run_with = |prefetch: bool| {
            let mut config = MachineConfig::core2();
            config.l1d_next_line_prefetch = prefetch;
            let process = Loader::new()
                .load(&exe, &Environment::new(), &[400])
                .unwrap();
            Machine::new(config).run(&exe, process).unwrap()
        };
        let off = run_with(false);
        let on = run_with(true);
        assert_eq!(on.checksum, off.checksum, "prefetch never changes results");
        assert!(
            on.counters.l1d_misses <= off.counters.l1d_misses,
            "prefetch must not add demand misses ({} vs {})",
            on.counters.l1d_misses,
            off.counters.l1d_misses
        );
    }

    #[test]
    fn counters_are_internally_consistent() {
        let exe = build_exe(OptLevel::O2);
        let r = run(&exe, &Environment::new(), &[100]);
        let c = &r.counters;
        assert!(c.cycles >= c.instructions);
        assert!(c.l1d_misses <= c.l1d_accesses);
        assert!(c.mispredicts <= c.branches);
        assert!(c.loads + c.stores <= c.l1d_accesses);
        assert!(c.instructions > 0);
    }
}
