//! Machine models and the execution engine.
//!
//! A [`Machine`] is a small component graph: a core (decode/execute/retire)
//! driving a [`crate::front::FrontEnd`] (fetch windows, I-cache, I-TLB,
//! branch prediction) and a [`crate::dmem::MemSystem`] (L1D/D-TLB/banks)
//! over explicit ports, with a shared unified L2 behind
//! [`crate::ports::L2Port`]. Execution runs under the discrete-event
//! kernel ([`crate::kernel`]): in the paper-machine configurations the
//! graph is a single active chain, which collapses to direct dispatch (the
//! fast path); [`KernelMode::Event`] drives the identical instruction
//! stream through the min-heap scheduler instead, and the differential
//! tests pin both paths to bit-identical counters.
//!
//! Three presets mirror the paper's experimental machines:
//!
//! * [`MachineConfig::core2`] — wide OoO core, large forgiving caches;
//! * [`MachineConfig::pentium4`] — long pipeline (expensive mispredicts),
//!   smaller lower-associativity L1D;
//! * [`MachineConfig::o3cpu`] — the m5 simulator's default-ish O3CPU with a
//!   2-way L1D, the machine the paper uses for causal analysis (low
//!   associativity makes layout conflicts easy to see).
//!
//! Everything is deterministic: the same executable, environment and
//! arguments produce bit-identical counters, on either kernel path.

use std::fmt;

use biaslab_isa::{checksum_fold, Inst, Reg};
use biaslab_toolchain::link::Executable;
use biaslab_toolchain::load::Process;
use serde::{Deserialize, Serialize};

use crate::block::{BlockCache, BlockCacheStats, BlockEnd, DecodeParams, UopKind, REG_SLOTS};
use crate::branch::BranchConfig;
use crate::cache::{Cache, CacheConfig};
use crate::counters::Counters;
use crate::dmem::{MemParams, MemSystem};
use crate::front::FrontEnd;
use crate::geometry::{ConfigError, GeometryError};
use crate::kernel::{ClockDivider, Component, ComponentId, EventScheduler, KernelMode};
use crate::ports::L2Port;
use crate::tlb::TlbConfig;

/// Complete parameterization of a simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable model name.
    pub name: String,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency (beyond L2) in cycles.
    pub memory_latency: u32,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Branch prediction unit.
    pub branch: BranchConfig,
    /// Fetch window size in bytes: a new window is fetched whenever
    /// execution leaves the current aligned window.
    pub fetch_bytes: u32,
    /// Extra cycles for a multiply (beyond the base cycle).
    pub mul_latency: u32,
    /// Extra cycles for a divide/remainder.
    pub div_latency: u32,
    /// Number of L1D banks (power of two; banks interleave at 8-byte
    /// granularity). Two accesses issued back-to-back that hit the same
    /// bank in different lines conflict.
    pub l1d_banks: u32,
    /// Stall cycles charged for an L1D bank conflict.
    pub bank_conflict_penalty: u32,
    /// Two data accesses within this many retired instructions of each
    /// other are treated as issuing in the same group for the bank model.
    pub bank_window: u32,
    /// Next-line L1D prefetch: on a demand miss, also fill line+1. Off in
    /// the paper-machine presets (kept stable for the recorded figures);
    /// the `abl-prefetch` ablation studies its effect on bias.
    pub l1d_next_line_prefetch: bool,
    /// Fraction of memory-stall cycles hidden by out-of-order overlap
    /// (0 = fully exposed, in-order).
    pub overlap: f64,
    /// Instruction budget before a run aborts.
    pub max_instructions: u64,
}

impl MachineConfig {
    /// An Intel Core 2-like model.
    #[must_use]
    pub fn core2() -> MachineConfig {
        MachineConfig {
            name: "core2".into(),
            l1i: CacheConfig {
                size: 32 << 10,
                ways: 8,
                line: 64,
                hit_latency: 3,
            },
            l1d: CacheConfig {
                size: 32 << 10,
                ways: 8,
                line: 64,
                hit_latency: 3,
            },
            l2: CacheConfig {
                size: 2 << 20,
                ways: 8,
                line: 64,
                hit_latency: 15,
            },
            memory_latency: 200,
            itlb: TlbConfig {
                entries: 32,
                ways: 4,
                miss_penalty: 20,
            },
            dtlb: TlbConfig {
                entries: 64,
                ways: 4,
                miss_penalty: 30,
            },
            branch: BranchConfig {
                gshare_bits: 12,
                btb_entries: 512,
                ras_depth: 16,
                mispredict_penalty: 12,
                btb_miss_penalty: 2,
            },
            fetch_bytes: 16,
            mul_latency: 2,
            div_latency: 21,
            l1d_banks: 8,
            bank_conflict_penalty: 2,
            bank_window: 8,
            l1d_next_line_prefetch: false,
            overlap: 0.4,
            max_instructions: 1 << 33,
        }
    }

    /// An Intel Pentium 4-like model: long pipeline, small 4-way L1D.
    #[must_use]
    pub fn pentium4() -> MachineConfig {
        MachineConfig {
            name: "pentium4".into(),
            l1i: CacheConfig {
                size: 16 << 10,
                ways: 4,
                line: 64,
                hit_latency: 3,
            },
            l1d: CacheConfig {
                size: 16 << 10,
                ways: 4,
                line: 64,
                hit_latency: 4,
            },
            l2: CacheConfig {
                size: 1 << 20,
                ways: 8,
                line: 64,
                hit_latency: 20,
            },
            memory_latency: 250,
            itlb: TlbConfig {
                entries: 32,
                ways: 4,
                miss_penalty: 25,
            },
            dtlb: TlbConfig {
                entries: 64,
                ways: 4,
                miss_penalty: 35,
            },
            branch: BranchConfig {
                gshare_bits: 12,
                btb_entries: 256,
                ras_depth: 16,
                mispredict_penalty: 20,
                btb_miss_penalty: 3,
            },
            fetch_bytes: 16,
            mul_latency: 3,
            div_latency: 30,
            l1d_banks: 8,
            bank_conflict_penalty: 4,
            bank_window: 12,
            l1d_next_line_prefetch: false,
            overlap: 0.25,
            max_instructions: 1 << 33,
        }
    }

    /// An m5 O3CPU-like model with a 2-way L1D (the simulator the paper
    /// uses to explain *why* bias arises).
    #[must_use]
    pub fn o3cpu() -> MachineConfig {
        MachineConfig {
            name: "o3cpu".into(),
            l1i: CacheConfig {
                size: 32 << 10,
                ways: 2,
                line: 64,
                hit_latency: 2,
            },
            l1d: CacheConfig {
                size: 32 << 10,
                ways: 2,
                line: 64,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size: 1 << 20,
                ways: 8,
                line: 64,
                hit_latency: 12,
            },
            memory_latency: 150,
            itlb: TlbConfig {
                entries: 32,
                ways: 4,
                miss_penalty: 20,
            },
            dtlb: TlbConfig {
                entries: 64,
                ways: 4,
                miss_penalty: 25,
            },
            branch: BranchConfig {
                gshare_bits: 13,
                btb_entries: 1024,
                ras_depth: 16,
                mispredict_penalty: 8,
                btb_miss_penalty: 1,
            },
            fetch_bytes: 32,
            mul_latency: 2,
            div_latency: 20,
            l1d_banks: 4,
            bank_conflict_penalty: 2,
            bank_window: 8,
            l1d_next_line_prefetch: false,
            overlap: 0.6,
            max_instructions: 1 << 33,
        }
    }

    /// The three paper machines, in the paper's order.
    #[must_use]
    pub fn all() -> Vec<MachineConfig> {
        vec![
            MachineConfig::pentium4(),
            MachineConfig::core2(),
            MachineConfig::o3cpu(),
        ]
    }

    /// Checks the configuration for geometric consistency, once, up front.
    /// [`Machine::try_new`] calls this; after construction no access-path
    /// code re-validates (or panics on) geometry.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency as a typed [`ConfigError`] naming
    /// the unit and the violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            c.try_sets().map_err(|e| ConfigError::new(name, e))?;
        }
        for (name, t) in [("itlb", &self.itlb), ("dtlb", &self.dtlb)] {
            t.try_sets().map_err(|e| ConfigError::new(name, e))?;
        }
        if !self.branch.btb_entries.is_power_of_two() {
            return Err(ConfigError::new(
                "btb",
                GeometryError::BtbNotPowerOfTwo {
                    entries: self.branch.btb_entries,
                },
            ));
        }
        if self.branch.gshare_bits == 0 || self.branch.gshare_bits > 24 {
            return Err(ConfigError::new(
                "gshare",
                GeometryError::GshareBitsOutOfRange {
                    bits: self.branch.gshare_bits,
                },
            ));
        }
        if !self.fetch_bytes.is_power_of_two() || self.fetch_bytes < 4 {
            return Err(ConfigError::new(
                "fetch",
                GeometryError::FetchWindowInvalid {
                    bytes: self.fetch_bytes,
                },
            ));
        }
        if self.l1d_banks > 1 && !self.l1d_banks.is_power_of_two() {
            return Err(ConfigError::new(
                "l1d_banks",
                GeometryError::BanksNotPowerOfTwo {
                    banks: self.l1d_banks,
                },
            ));
        }
        if !(0.0..1.0).contains(&self.overlap) {
            return Err(ConfigError::new(
                "overlap",
                GeometryError::OverlapOutOfRange {
                    overlap: self.overlap,
                },
            ));
        }
        Ok(())
    }

    /// The fetch-window id containing `pc` — the same mapping the front
    /// end applies (`pc / fetch_bytes`). Two instructions in the same
    /// window are fetched together; an entry point late in its window
    /// wastes the rest of the fetch.
    #[must_use]
    pub fn fetch_window_of(&self, pc: u32) -> u32 {
        pc / self.fetch_bytes
    }

    /// Byte offset of `pc` within its fetch window.
    #[must_use]
    pub fn fetch_offset_of(&self, pc: u32) -> u32 {
        pc % self.fetch_bytes
    }

    /// The L1D bank `addr` maps to (8-byte interleave, the same mapping
    /// the execution engine applies); `0` when banking is disabled.
    #[must_use]
    pub fn l1d_bank_of(&self, addr: u32) -> u32 {
        if self.l1d_banks > 1 {
            (addr / 8) & (self.l1d_banks - 1)
        } else {
            0
        }
    }
}

/// The result of running a process to `halt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Event counters for the whole run.
    pub counters: Counters,
    /// Final architectural checksum.
    pub checksum: u64,
    /// `r1` at halt (the entry function's return value).
    pub return_value: u64,
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The program counter left the text segment.
    InvalidPc(u32),
    /// The instruction budget was exhausted.
    Budget(u64),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidPc(pc) => write!(f, "program counter {pc:#010x} outside text"),
            RunError::Budget(n) => write!(f, "instruction budget of {n} exhausted"),
        }
    }
}

impl std::error::Error for RunError {}

/// Core-side config-derived constants hoisted out of the execution loop:
/// penalties widened to `u64` once, and the overlap-scaled refill stalls
/// computed once per machine instead of once (or twice) per miss. The
/// front-end and memory-hierarchy components hoist their own shares at
/// construction. Everything here is a pure function of the
/// [`MachineConfig`], so precomputing it cannot change any counter.
#[derive(Debug, Clone, Copy)]
struct HotConfig {
    /// `log2(fetch_bytes)`: validation rejects non-power-of-two fetch
    /// windows, so the per-instruction window computation is always a
    /// shift — no per-access `Option` check survives in the run loop.
    fetch_shift: u32,
    /// `stall(l2.hit_latency)`: an L1 miss that hits in L2.
    stall_l2_hit: u64,
    /// `stall(l2.hit_latency + memory_latency)`: a miss to memory.
    stall_l2_miss: u64,
    mul_extra: u64,
    div_extra: u64,
    max_instructions: u64,
}

impl HotConfig {
    fn of(config: &MachineConfig) -> HotConfig {
        let stall = |raw: u32| ((f64::from(raw)) * (1.0 - config.overlap)).round() as u64;
        debug_assert!(
            config.fetch_bytes.is_power_of_two(),
            "validate() rejects non-power-of-two fetch windows"
        );
        HotConfig {
            fetch_shift: config.fetch_bytes.trailing_zeros(),
            stall_l2_hit: stall(config.l2.hit_latency),
            stall_l2_miss: stall(config.l2.hit_latency + config.memory_latency),
            mul_extra: u64::from(config.mul_latency),
            div_extra: u64::from(config.div_latency),
            max_instructions: config.max_instructions,
        }
    }

    #[inline]
    fn alu_extra(&self, op: biaslab_isa::AluOp) -> u64 {
        use biaslab_isa::AluOp;
        match op {
            AluOp::Mul => self.mul_extra,
            AluOp::Div | AluOp::Rem => self.div_extra,
            _ => 0,
        }
    }
}

/// Component ids within a machine's kernel instance: the core plus its two
/// demand-driven timing components.
const CORE_ID: ComponentId = ComponentId(0);
const FRONT_ID: ComponentId = ComponentId(1);
const DMEM_ID: ComponentId = ComponentId(2);

/// How the execution loop advances simulated time between instructions.
///
/// The collapsed fast path uses [`DirectDispatch`] (every hook a no-op the
/// optimizer deletes); [`KernelMode::Event`] uses [`EventDriven`], which
/// threads each instruction boundary through the event heap and surfaces
/// any other component due to tick first. Both monomorphize into
/// `run_loop`, so the instruction semantics — and therefore the counters —
/// are shared by construction.
trait KernelDriver {
    /// Returns the next non-core component due before the core may retire
    /// its next instruction (at `cycles` local core ticks), or `None` when
    /// the core holds the earliest event. Call repeatedly until `None`.
    fn next_due(&mut self, cycles: u64) -> Option<(ComponentId, u64)>;

    /// Re-queues a component after its tick, if it asked for another.
    fn requeue(&mut self, id: ComponentId, at: Option<u64>);
}

/// The collapsed single-chain path: no heap, no events, direct dispatch.
struct DirectDispatch;

impl KernelDriver for DirectDispatch {
    #[inline(always)]
    fn next_due(&mut self, _cycles: u64) -> Option<(ComponentId, u64)> {
        None
    }

    #[inline(always)]
    fn requeue(&mut self, _id: ComponentId, _at: Option<u64>) {}
}

/// The full event-scheduled path: every instruction boundary is an event
/// popped from the min-heap in deterministic `(time, sequence)` order.
struct EventDriven {
    sched: EventScheduler,
    /// The core's clock relationship to the base clock (unit in the
    /// paper-machine presets; divided cores schedule sparser events).
    core_clock: ClockDivider,
    core_scheduled: bool,
}

impl EventDriven {
    fn new(core_divisor: u64) -> EventDriven {
        EventDriven {
            sched: EventScheduler::new(),
            core_clock: ClockDivider::new(core_divisor),
            core_scheduled: false,
        }
    }

    /// Registers a non-core component's first wake-up, if it wants one.
    fn seed(&mut self, id: ComponentId, next: Option<u64>) {
        if let Some(t) = next {
            self.sched.schedule(t, id);
        }
    }
}

impl KernelDriver for EventDriven {
    fn next_due(&mut self, cycles: u64) -> Option<(ComponentId, u64)> {
        if !self.core_scheduled {
            // The core's next instruction retires after `cycles` local
            // ticks; map through its clock divider onto the base clock.
            self.sched
                .schedule(self.core_clock.base_ticks(cycles), CORE_ID);
            self.core_scheduled = true;
        }
        let (t, id) = self.sched.pop().expect("core event is always pending");
        if id == CORE_ID {
            self.core_scheduled = false;
            None
        } else {
            Some((id, t))
        }
    }

    fn requeue(&mut self, id: ComponentId, at: Option<u64>) {
        if let Some(t) = at {
            self.sched.schedule(t, id);
        }
    }
}

/// A simulated machine instance (cold caches and predictors).
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    hot: HotConfig,
    front: FrontEnd,
    dmem: MemSystem,
    /// The shared unified L2, reached from both sides through
    /// [`L2Port`]s.
    l2: Cache,
    /// Decoded basic blocks for the block-dispatch path. Decode state,
    /// not timing state: [`Machine::reset`] keeps it, and it invalidates
    /// wholesale when the image generation changes.
    blocks: BlockCache,
    kernel: KernelMode,
}

impl Machine {
    /// Creates a cold machine, validating the configuration once.
    ///
    /// The kernel mode defaults to [`KernelMode::Auto`] (respecting the
    /// `BIASLAB_KERNEL` environment override): single-active-chain
    /// configurations — all three paper machines — collapse to direct
    /// dispatch.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] for an inconsistent geometry —
    /// always at construction, never at access time.
    pub fn try_new(config: MachineConfig) -> Result<Machine, ConfigError> {
        config.validate()?;
        Ok(Machine {
            hot: HotConfig::of(&config),
            front: FrontEnd::new(config.l1i, config.itlb, config.branch),
            dmem: MemSystem::new(MemParams {
                l1d: config.l1d,
                dtlb: config.dtlb,
                banks: config.l1d_banks,
                bank_window: config.bank_window,
                bank_conflict_penalty: config.bank_conflict_penalty,
                next_line_prefetch: config.l1d_next_line_prefetch,
            }),
            l2: Cache::new(config.l2),
            blocks: BlockCache::new(),
            kernel: KernelMode::from_env(),
            config,
        })
    }

    /// Creates a cold machine.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; prefer [`Machine::try_new`]
    /// when the configuration comes from user input (e.g. an ablation
    /// sweep).
    #[must_use]
    pub fn new(config: MachineConfig) -> Machine {
        Machine::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a cold machine pinned to a kernel path (ignoring the
    /// `BIASLAB_KERNEL` override) — what the differential tests use to
    /// compare the collapsed and event-scheduled paths.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    #[must_use]
    pub fn with_kernel(config: MachineConfig, kernel: KernelMode) -> Machine {
        let mut m = Machine::new(config);
        m.kernel = kernel;
        m
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The configured kernel mode (before Auto resolution).
    #[must_use]
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// The kernel path this machine will actually run: Auto picks
    /// block-at-a-time dispatch (the fastest single-chain path) exactly
    /// when the component graph is a single active chain (no non-core
    /// component self-schedules), and the event scheduler otherwise.
    #[must_use]
    pub fn effective_kernel(&self) -> KernelMode {
        match self.kernel {
            KernelMode::Auto => {
                if self.front.next_tick().is_none() && self.dmem.next_tick().is_none() {
                    KernelMode::Block
                } else {
                    KernelMode::Event
                }
            }
            mode => mode,
        }
    }

    /// Lifetime hit/miss/invalidation counts of the basic-block trace
    /// cache (all zero unless a run used [`KernelMode::Block`]).
    #[must_use]
    pub fn block_stats(&self) -> BlockCacheStats {
        self.blocks.stats()
    }

    /// Number of decoded basic blocks currently live.
    #[must_use]
    pub fn blocks_live(&self) -> usize {
        self.blocks.blocks_live()
    }

    /// Returns all microarchitectural state to cold. The decoded-block
    /// cache survives: it holds decode results, not timing state, so
    /// keeping it cannot change any counter (the warm-repetition
    /// differential test pins this).
    pub fn reset(&mut self) {
        self.front.flush();
        self.dmem.flush();
        self.l2.flush();
    }

    /// Runs `process` against `exe` until `halt`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidPc`] if control leaves the text segment
    /// (a toolchain bug) or [`RunError::Budget`] if the configured
    /// instruction budget runs out (likely an infinite loop).
    pub fn run(&mut self, exe: &Executable, process: Process) -> Result<RunResult, RunError> {
        self.run_inner(exe, process, None)
    }

    /// Like [`Machine::run`], additionally attributing every instruction's
    /// cycles to the function containing it.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_profiled(
        &mut self,
        exe: &Executable,
        process: Process,
    ) -> Result<(RunResult, crate::profile::Profile), RunError> {
        let mut attr = crate::profile::Attributor::new(exe);
        let result = self.run_inner(exe, process, Some(&mut attr))?;
        Ok((result, attr.finish()))
    }

    fn run_inner(
        &mut self,
        exe: &Executable,
        process: Process,
        attr: Option<&mut crate::profile::Attributor>,
    ) -> Result<RunResult, RunError> {
        // Monomorphize the execution loop on (attributor, kernel path):
        // the plain collapsed `run` carries no per-instruction bookkeeping
        // at all, and every other combination still observes identical
        // counters (attribution only reads them; the event driver only
        // orders them).
        match self.effective_kernel() {
            KernelMode::Event => {
                let mut driver = EventDriven::new(1);
                driver.seed(FRONT_ID, self.front.next_tick());
                driver.seed(DMEM_ID, self.dmem.next_tick());
                match attr {
                    Some(a) => self.run_loop::<true, _>(exe, process, Some(a), &mut driver),
                    None => self.run_loop::<false, _>(exe, process, None, &mut driver),
                }
            }
            KernelMode::Collapsed => match attr {
                Some(a) => self.run_loop::<true, _>(exe, process, Some(a), &mut DirectDispatch),
                None => self.run_loop::<false, _>(exe, process, None, &mut DirectDispatch),
            },
            // `effective_kernel` never returns Auto.
            KernelMode::Block | KernelMode::Auto => match attr {
                Some(a) => self.run_blocks::<true>(exe, process, Some(a)),
                None => self.run_blocks::<false>(exe, process, None),
            },
        }
    }

    fn run_loop<const PROFILE: bool, D: KernelDriver>(
        &mut self,
        exe: &Executable,
        process: Process,
        mut attr: Option<&mut crate::profile::Attributor>,
        driver: &mut D,
    ) -> Result<RunResult, RunError> {
        let mut c = Counters::default();
        let mut mem = process.mem;
        let mut regs = [0u64; 32];
        regs[Reg::SP.index() as usize] = u64::from(process.sp);
        regs[Reg::GP.index() as usize] = u64::from(process.gp);
        for (i, &a) in process.args.iter().enumerate() {
            regs[1 + i] = a;
        }
        let mut pc = process.entry;
        let mut checksum = 0u64;
        let mut attributed: Option<(u32, u64)> = None;

        // The decoded text segment, addressed by word index: instruction
        // fetch is a subtract, a shift and one bounds check, replacing the
        // per-instruction `inst_at` call (base/alignment checks included —
        // a misaligned or out-of-text pc still reports `InvalidPc`, since
        // `wrapping_sub` sends addresses below the base past the end).
        let text = exe.text();
        let text_base = exe.text_base();
        let hot = self.hot;
        // Split-borrow the component graph once: the core drives the front
        // end and memory hierarchy through ports for the whole run.
        let Machine {
            ref mut front,
            ref mut dmem,
            ref mut l2,
            ..
        } = *self;
        front.begin_run();

        macro_rules! rd {
            ($r:expr) => {
                regs[$r.index() as usize]
            };
        }
        macro_rules! wr {
            ($r:expr, $v:expr) => {
                if !$r.is_zero() {
                    regs[$r.index() as usize] = $v;
                }
            };
        }
        macro_rules! l2_port {
            () => {
                L2Port::new(l2, hot.stall_l2_hit, hot.stall_l2_miss)
            };
        }

        loop {
            // Kernel hook: under the event driver, wait for the core's
            // event and tick any component scheduled ahead of it; the
            // collapsed path compiles this block away entirely.
            while let Some((id, at)) = driver.next_due(c.cycles) {
                let next = match id {
                    FRONT_ID => front.tick(at),
                    DMEM_ID => dmem.tick(at),
                    _ => None,
                };
                driver.requeue(id, next);
            }
            if PROFILE {
                if let Some(a) = attr.as_deref_mut() {
                    if let Some((prev_pc, prev_cycles)) = attributed {
                        a.record(prev_pc, c.cycles - prev_cycles);
                    }
                    attributed = Some((pc, c.cycles));
                }
            }
            if c.instructions >= hot.max_instructions {
                return Err(RunError::Budget(hot.max_instructions));
            }
            let word = pc.wrapping_sub(text_base);
            if word & 3 != 0 {
                return Err(RunError::InvalidPc(pc));
            }
            let Some(&inst) = text.get((word >> 2) as usize) else {
                return Err(RunError::InvalidPc(pc));
            };

            // --- front end (port) ------------------------------------------
            front.fetch(pc, pc >> hot.fetch_shift, &mut l2_port!(), &mut c);

            c.instructions += 1;
            c.cycles += 1;
            let next_pc = pc.wrapping_add(4);

            match inst {
                Inst::Alu { op, rd, rs1, rs2 } => {
                    wr!(rd, op.eval(rd!(rs1), rd!(rs2)));
                    let extra = hot.alu_extra(op);
                    c.cycles += extra;
                    c.stall_compute += extra;
                }
                Inst::AluImm { op, rd, rs1, imm } => {
                    wr!(rd, op.eval(rd!(rs1), op.extend_imm(imm)));
                    let extra = hot.alu_extra(op);
                    c.cycles += extra;
                    c.stall_compute += extra;
                }
                Inst::Lui { rd, imm } => wr!(rd, u64::from(imm) << 16),
                Inst::Load {
                    width,
                    rd,
                    base,
                    offset,
                } => {
                    let addr = (rd!(base) as u32).wrapping_add(offset as i32 as u32);
                    c.loads += 1;
                    let idx = c.instructions;
                    dmem.access(&mut c, addr, width.bytes(), false, idx, &mut l2_port!());
                    wr!(rd, mem.read_le(addr, width.bytes()));
                }
                Inst::Store {
                    width,
                    rs,
                    base,
                    offset,
                } => {
                    let addr = (rd!(base) as u32).wrapping_add(offset as i32 as u32);
                    c.stores += 1;
                    let idx = c.instructions;
                    dmem.access(&mut c, addr, width.bytes(), true, idx, &mut l2_port!());
                    mem.write_le(addr, width.bytes(), rd!(rs));
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset,
                } => {
                    c.branches += 1;
                    let taken = cond.eval(rd!(rs1), rd!(rs2));
                    front.branch_direction(pc, taken, &mut c);
                    if taken {
                        let target = next_pc.wrapping_add(offset as u32);
                        front.taken_transfer(pc, target, &mut c);
                        pc = target;
                        continue;
                    }
                }
                Inst::Jal { rd, offset } => {
                    let target = next_pc.wrapping_add(offset as u32);
                    if rd == Reg::RA {
                        front.push_return(next_pc);
                    }
                    front.taken_transfer(pc, target, &mut c);
                    wr!(rd, u64::from(next_pc));
                    pc = target;
                    continue;
                }
                Inst::Jalr { rd, rs1, offset } => {
                    let target = (rd!(rs1) as u32).wrapping_add(offset as i32 as u32);
                    if rd.is_zero() && rs1 == Reg::RA {
                        // Return: predicted by the RAS.
                        front.predict_return(target, &mut c);
                    } else {
                        if rd == Reg::RA {
                            front.push_return(next_pc);
                        }
                        front.taken_transfer(pc, target, &mut c);
                    }
                    wr!(rd, u64::from(next_pc));
                    pc = target;
                    continue;
                }
                Inst::Chk { rs } => checksum = checksum_fold(checksum, rd!(rs)),
                Inst::Halt => {
                    return Ok(RunResult {
                        counters: c,
                        checksum,
                        return_value: regs[1],
                    });
                }
                Inst::Nop => {}
            }
            pc = next_pc;
        }
    }

    /// The block-at-a-time path ([`KernelMode::Block`]): decode each basic
    /// block once into the [`BlockCache`], then dispatch whole blocks.
    ///
    /// Bit-identity argument, piece by piece:
    ///
    /// * **Static counter sums** (`instructions`, base `cycles`, ALU
    ///   extras, `loads`/`stores`) are accumulated at block entry instead
    ///   of per instruction. Every counter is an order-independent sum and
    ///   nothing on this path reads an intermediate value, so hoisting is
    ///   an exact algebraic rewrite. (Profiled runs *do* read intermediate
    ///   cycles, so under `PROFILE` the statics stay per-instruction.)
    /// * **Fetch-window crossings** are precomputed per block but replayed
    ///   at their exact instruction positions via a cursor, preserving the
    ///   I-side/D-side interleaving into the shared (LRU-stateful) L2.
    ///   Whether the entry crossing fires still depends on the front end's
    ///   current window, exactly like the interpreted check.
    /// * **Bank conflicts** read the retired-instruction index; the
    ///   hoisted path reconstructs the interpreted value as
    ///   `entry_instructions + i + 1`.
    /// * **Budget**: a block that would cross `max_instructions` falls
    ///   back to per-instruction execution with the interpreted check
    ///   order, so the error fires at the same instruction and leaves
    ///   identical warm state behind.
    /// * **Profile attribution** accrues one span per block (the entry
    ///   bucket covers the whole block because decode cuts at function
    ///   symbols); the deltas telescope to the per-instruction sums, with
    ///   the final halt's own fetch excluded via a cycle snapshot, exactly
    ///   as the interpreted attributor never records the halt.
    fn run_blocks<const PROFILE: bool>(
        &mut self,
        exe: &Executable,
        process: Process,
        mut attr: Option<&mut crate::profile::Attributor>,
    ) -> Result<RunResult, RunError> {
        let mut c = Counters::default();
        let mut mem = process.mem;
        // The uop executor's register file: 32 architectural slots, the
        // zero-write scratch slot, padded so masked indexing elides the
        // bounds check. Slots >= 32 are never read.
        let mut regs = [0u64; REG_SLOTS];
        regs[Reg::SP.index() as usize] = u64::from(process.sp);
        regs[Reg::GP.index() as usize] = u64::from(process.gp);
        for (i, &a) in process.args.iter().enumerate() {
            regs[1 + i] = a;
        }
        let mut pc = process.entry;
        let mut checksum = 0u64;
        // Current attribution span: (block entry pc, cycles at entry,
        // block length); recorded when the next block is entered.
        let mut span: Option<(u32, u64, u32)> = None;

        let text = exe.text();
        let text_base = exe.text_base();
        let hot = self.hot;
        let dp = DecodeParams {
            text_base,
            fetch_shift: hot.fetch_shift,
            mul_extra: hot.mul_extra,
            div_extra: hot.div_extra,
        };
        let Machine {
            ref mut front,
            ref mut dmem,
            ref mut l2,
            ref mut blocks,
            ..
        } = *self;
        blocks.sync(
            exe.image_generation(),
            text_base,
            text.len(),
            exe.symbols().iter().map(|s| s.addr),
        );
        front.begin_run();

        macro_rules! rd {
            ($r:expr) => {
                regs[$r.index() as usize]
            };
        }
        macro_rules! wr {
            ($r:expr, $v:expr) => {
                if !$r.is_zero() {
                    regs[$r.index() as usize] = $v;
                }
            };
        }
        macro_rules! l2_port {
            () => {
                L2Port::new(l2, hot.stall_l2_hit, hot.stall_l2_miss)
            };
        }
        // One body (non-terminator) instruction. `$hoisted` is a literal:
        // `true` compiles the static counter bumps away (they were applied
        // at block entry) and reconstructs the retired-instruction index
        // from `$base + $i`; `false` is the interpreted per-instruction
        // accounting.
        macro_rules! body_inst {
            ($inst:expr, $i:expr, $base:expr, $hoisted:expr) => {{
                if !$hoisted {
                    c.instructions += 1;
                    c.cycles += 1;
                }
                match $inst {
                    Inst::Alu { op, rd, rs1, rs2 } => {
                        wr!(rd, op.eval(rd!(rs1), rd!(rs2)));
                        if !$hoisted {
                            let extra = hot.alu_extra(op);
                            c.cycles += extra;
                            c.stall_compute += extra;
                        }
                    }
                    Inst::AluImm { op, rd, rs1, imm } => {
                        wr!(rd, op.eval(rd!(rs1), op.extend_imm(imm)));
                        if !$hoisted {
                            let extra = hot.alu_extra(op);
                            c.cycles += extra;
                            c.stall_compute += extra;
                        }
                    }
                    Inst::Lui { rd, imm } => wr!(rd, u64::from(imm) << 16),
                    Inst::Load {
                        width,
                        rd,
                        base,
                        offset,
                    } => {
                        let addr = (rd!(base) as u32).wrapping_add(offset as i32 as u32);
                        let idx = if $hoisted {
                            $base + $i as u64 + 1
                        } else {
                            c.loads += 1;
                            c.instructions
                        };
                        dmem.access(&mut c, addr, width.bytes(), false, idx, &mut l2_port!());
                        wr!(rd, mem.read_le(addr, width.bytes()));
                    }
                    Inst::Store {
                        width,
                        rs,
                        base,
                        offset,
                    } => {
                        let addr = (rd!(base) as u32).wrapping_add(offset as i32 as u32);
                        let idx = if $hoisted {
                            $base + $i as u64 + 1
                        } else {
                            c.stores += 1;
                            c.instructions
                        };
                        dmem.access(&mut c, addr, width.bytes(), true, idx, &mut l2_port!());
                        mem.write_le(addr, width.bytes(), rd!(rs));
                    }
                    Inst::Chk { rs } => checksum = checksum_fold(checksum, rd!(rs)),
                    Inst::Nop => {}
                    // Decode terminates blocks at control transfers, so
                    // none can appear in a body.
                    Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt => {
                        unreachable!("control instruction in block body")
                    }
                }
            }};
        }

        loop {
            // Same check order as the interpreted loop's block-entry
            // instruction: budget, then pc alignment/bounds.
            if c.instructions >= hot.max_instructions {
                return Err(RunError::Budget(hot.max_instructions));
            }
            let word = pc.wrapping_sub(text_base);
            if word & 3 != 0 {
                return Err(RunError::InvalidPc(pc));
            }
            let wi = word >> 2;
            if wi as usize >= text.len() {
                return Err(RunError::InvalidPc(pc));
            }
            let b = blocks.get_or_decode(wi, text, &dp);
            if PROFILE {
                if let Some(a) = attr.as_deref_mut() {
                    if let Some((span_pc, span_cycles, span_len)) = span {
                        a.record_span(span_pc, c.cycles - span_cycles, u64::from(span_len));
                    }
                    span = Some((pc, c.cycles, b.len));
                }
            }
            let inst_base = c.instructions;
            if inst_base + u64::from(b.len) > hot.max_instructions {
                // The budget expires inside this block: execute it per
                // instruction with the interpreted check order. The budget
                // trips before the terminator can execute (base + len >
                // max implies the check fails at index max - base < len),
                // so this path always errors — but the instructions before
                // the trip point must run in full, leaving warm machine
                // state identical to the interpreted path's.
                let body = &text[b.word as usize..(b.word + b.body_len) as usize];
                let mut fi = 0usize;
                for (i, &inst) in body.iter().enumerate() {
                    if c.instructions >= hot.max_instructions {
                        return Err(RunError::Budget(hot.max_instructions));
                    }
                    if fi < b.fetches.len() && b.fetches[fi].idx == i as u32 {
                        let f = b.fetches[fi];
                        front.fetch(f.pc, f.window, &mut l2_port!(), &mut c);
                        fi += 1;
                    }
                    body_inst!(inst, i, inst_base, false);
                }
                return Err(RunError::Budget(hot.max_instructions));
            }
            if !PROFILE {
                // Replay the block's static summary in one step; see the
                // method docs for why this is exact.
                c.instructions += u64::from(b.len);
                c.cycles += u64::from(b.len) + b.extra_cycles;
                c.stall_compute += b.extra_cycles;
                c.loads += u64::from(b.loads);
                c.stores += u64::from(b.stores);
            }

            let fetches = &b.fetches[..];
            let mut fi = 0usize;
            if PROFILE {
                // Profiled runs read intermediate cycles per instruction,
                // so they execute the raw text with full accounting.
                // A block always has a fetch point at index 0 (whether it
                // fires is the front end's same-window check).
                let mut next_fetch = fetches[0].idx;
                let body = &text[b.word as usize..(b.word + b.body_len) as usize];
                for (i, &inst) in body.iter().enumerate() {
                    if i as u32 == next_fetch {
                        let f = fetches[fi];
                        front.fetch(f.pc, f.window, &mut l2_port!(), &mut c);
                        fi += 1;
                        next_fetch = fetches.get(fi).map_or(u32::MAX, |f| f.idx);
                    }
                    body_inst!(inst, i, inst_base, false);
                }
            } else {
                // The uop fast path: one fused match per body instruction,
                // unconditional destination writes (decode remapped `ZERO`
                // to the scratch slot), immediates pre-extended. Each ALU
                // arm mirrors `AluOp::eval` exactly; `body_uops_match_text`
                // and the kernel differential tests pin the equivalence.
                macro_rules! a {
                    ($u:expr) => {
                        regs[$u.rs1 as usize & (REG_SLOTS - 1)]
                    };
                }
                macro_rules! b {
                    ($u:expr) => {
                        regs[$u.rs2 as usize & (REG_SLOTS - 1)]
                    };
                }
                macro_rules! set {
                    ($u:expr, $v:expr) => {
                        regs[$u.rd as usize & (REG_SLOTS - 1)] = $v
                    };
                }
                // Walk the body a fetch segment at a time: fire the
                // segment's window crossing once, then run its uops in a
                // tight inner loop with no per-instruction fetch test.
                // Order is unchanged — a fetch point at index `idx` fires
                // immediately before the instruction at `idx`, exactly as
                // the interpreted loop interleaves them. A fetch point at
                // `body_len` belongs to the terminator and fires after.
                let uops = &b.uops[..];
                while fi < fetches.len() {
                    let f = fetches[fi];
                    let seg_start = f.idx as usize;
                    if seg_start >= uops.len() {
                        break;
                    }
                    front.fetch(f.pc, f.window, &mut l2_port!(), &mut c);
                    fi += 1;
                    let seg_end = fetches.get(fi).map_or(uops.len(), |n| n.idx as usize);
                    for (k, u) in uops[seg_start..seg_end].iter().enumerate() {
                        let i = seg_start + k;
                        match u.kind {
                            UopKind::Add => set!(u, a!(u).wrapping_add(b!(u))),
                            UopKind::Sub => set!(u, a!(u).wrapping_sub(b!(u))),
                            UopKind::Mul => set!(u, a!(u).wrapping_mul(b!(u))),
                            UopKind::Div => {
                                let d = b!(u);
                                set!(
                                    u,
                                    if d == 0 {
                                        u64::MAX
                                    } else {
                                        (a!(u) as i64).wrapping_div(d as i64) as u64
                                    }
                                );
                            }
                            UopKind::Rem => {
                                let d = b!(u);
                                set!(
                                    u,
                                    if d == 0 {
                                        a!(u)
                                    } else {
                                        (a!(u) as i64).wrapping_rem(d as i64) as u64
                                    }
                                );
                            }
                            UopKind::And => set!(u, a!(u) & b!(u)),
                            UopKind::Or => set!(u, a!(u) | b!(u)),
                            UopKind::Xor => set!(u, a!(u) ^ b!(u)),
                            UopKind::Sll => set!(u, a!(u).wrapping_shl(b!(u) as u32 & 63)),
                            UopKind::Srl => set!(u, a!(u).wrapping_shr(b!(u) as u32 & 63)),
                            UopKind::Sra => {
                                set!(u, (a!(u) as i64).wrapping_shr(b!(u) as u32 & 63) as u64);
                            }
                            UopKind::Slt => set!(u, u64::from((a!(u) as i64) < (b!(u) as i64))),
                            UopKind::Sltu => set!(u, u64::from(a!(u) < b!(u))),
                            UopKind::Seq => set!(u, u64::from(a!(u) == b!(u))),
                            UopKind::Sne => set!(u, u64::from(a!(u) != b!(u))),
                            UopKind::AddI => set!(u, a!(u).wrapping_add(u.imm)),
                            UopKind::SubI => set!(u, a!(u).wrapping_sub(u.imm)),
                            UopKind::MulI => set!(u, a!(u).wrapping_mul(u.imm)),
                            UopKind::DivI => {
                                set!(
                                    u,
                                    if u.imm == 0 {
                                        u64::MAX
                                    } else {
                                        (a!(u) as i64).wrapping_div(u.imm as i64) as u64
                                    }
                                );
                            }
                            UopKind::RemI => {
                                set!(
                                    u,
                                    if u.imm == 0 {
                                        a!(u)
                                    } else {
                                        (a!(u) as i64).wrapping_rem(u.imm as i64) as u64
                                    }
                                );
                            }
                            UopKind::AndI => set!(u, a!(u) & u.imm),
                            UopKind::OrI => set!(u, a!(u) | u.imm),
                            UopKind::XorI => set!(u, a!(u) ^ u.imm),
                            UopKind::SllI => set!(u, a!(u).wrapping_shl(u.imm as u32 & 63)),
                            UopKind::SrlI => set!(u, a!(u).wrapping_shr(u.imm as u32 & 63)),
                            UopKind::SraI => {
                                set!(u, (a!(u) as i64).wrapping_shr(u.imm as u32 & 63) as u64);
                            }
                            UopKind::SltI => set!(u, u64::from((a!(u) as i64) < (u.imm as i64))),
                            UopKind::SltuI => set!(u, u64::from(a!(u) < u.imm)),
                            UopKind::SeqI => set!(u, u64::from(a!(u) == u.imm)),
                            UopKind::SneI => set!(u, u64::from(a!(u) != u.imm)),
                            UopKind::Lui => set!(u, u.imm),
                            UopKind::Load => {
                                let addr = (a!(u) as u32).wrapping_add(u.imm as u32);
                                let idx = inst_base + i as u64 + 1;
                                let width = u32::from(u.width);
                                if !dmem.access_fast(&mut c, addr, width, false, idx) {
                                    dmem.access_lines(&mut c, addr, width, false, &mut l2_port!());
                                }
                                set!(u, mem.read_le(addr, width));
                            }
                            UopKind::Store => {
                                let addr = (a!(u) as u32).wrapping_add(u.imm as u32);
                                let idx = inst_base + i as u64 + 1;
                                let width = u32::from(u.width);
                                if !dmem.access_fast(&mut c, addr, width, true, idx) {
                                    dmem.access_lines(&mut c, addr, width, true, &mut l2_port!());
                                }
                                mem.write_le(addr, width, b!(u));
                            }
                            UopKind::Chk => checksum = checksum_fold(checksum, a!(u)),
                            UopKind::Nop => {}
                        }
                    }
                }
            }

            if b.body_len == b.len {
                // Cut block (symbol boundary, length cap, end of text):
                // no terminator, fall through.
                pc = b.next_pc;
                continue;
            }
            // Cycles at the terminator's top, before its fetch: the halt
            // is never attributed, so its span ends here.
            let cycles_at_term = if PROFILE { c.cycles } else { 0 };
            if fi < fetches.len() {
                let f = fetches[fi];
                front.fetch(f.pc, f.window, &mut l2_port!(), &mut c);
            }
            if PROFILE {
                c.instructions += 1;
                c.cycles += 1;
            }
            match b.end {
                BlockEnd::Branch {
                    cond,
                    rs1,
                    rs2,
                    taken_target,
                } => {
                    c.branches += 1;
                    let taken = cond.eval(rd!(rs1), rd!(rs2));
                    front.branch_direction(b.term_pc, taken, &mut c);
                    if taken {
                        front.taken_transfer(b.term_pc, taken_target, &mut c);
                        pc = taken_target;
                    } else {
                        pc = b.next_pc;
                    }
                }
                BlockEnd::Jal { rd, target } => {
                    if rd == Reg::RA {
                        front.push_return(b.next_pc);
                    }
                    front.taken_transfer(b.term_pc, target, &mut c);
                    wr!(rd, u64::from(b.next_pc));
                    pc = target;
                }
                BlockEnd::Jalr { rd, rs1, offset } => {
                    let target = (rd!(rs1) as u32).wrapping_add(offset as i32 as u32);
                    if rd.is_zero() && rs1 == Reg::RA {
                        // Return: predicted by the RAS.
                        front.predict_return(target, &mut c);
                    } else {
                        if rd == Reg::RA {
                            front.push_return(b.next_pc);
                        }
                        front.taken_transfer(b.term_pc, target, &mut c);
                    }
                    wr!(rd, u64::from(b.next_pc));
                    pc = target;
                }
                BlockEnd::Halt => {
                    if PROFILE {
                        if let Some(a) = attr.as_deref_mut() {
                            if let Some((span_pc, span_cycles, _)) = span {
                                a.record_span(
                                    span_pc,
                                    cycles_at_term - span_cycles,
                                    u64::from(b.body_len),
                                );
                            }
                        }
                    }
                    return Ok(RunResult {
                        counters: c,
                        checksum,
                        return_value: regs[1],
                    });
                }
                BlockEnd::FallThrough => unreachable!("cut blocks have no terminator"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::codegen::compile;
    use biaslab_toolchain::link::Linker;
    use biaslab_toolchain::load::{Environment, Loader};
    use biaslab_toolchain::opt::{optimize, OptLevel};
    use biaslab_toolchain::ModuleBuilder;

    use super::*;

    fn build_exe(level: OptLevel) -> Executable {
        let mut mb = ModuleBuilder::new();
        mb.function("main", 1, true, |fb| {
            let n = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let a = fb.get(acc);
                let t = fb.mul_imm(iv, 3);
                let s = fb.add(a, t);
                fb.set(acc, s);
            });
            let r = fb.get(acc);
            fb.chk(r);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        Linker::new()
            .link(&compile(&optimize(&m, level), level), "main")
            .unwrap()
    }

    fn run(exe: &Executable, env: &Environment, args: &[u64]) -> RunResult {
        let process = Loader::new().load(exe, env, args).unwrap();
        Machine::new(MachineConfig::core2())
            .run(exe, process)
            .unwrap()
    }

    #[test]
    fn computes_correct_results() {
        let exe = build_exe(OptLevel::O0);
        let r = run(&exe, &Environment::new(), &[10]);
        // sum of 3*i for i in 0..10 = 3*45
        assert_eq!(r.return_value, 135);
    }

    #[test]
    fn all_levels_agree_on_semantics() {
        let expected = run(&build_exe(OptLevel::O0), &Environment::new(), &[50]);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let r = run(&build_exe(level), &Environment::new(), &[50]);
            assert_eq!(r.return_value, expected.return_value, "{level}");
            assert_eq!(r.checksum, expected.checksum, "{level}");
        }
    }

    #[test]
    fn o2_is_faster_than_o0() {
        let slow = run(&build_exe(OptLevel::O0), &Environment::new(), &[500]);
        let fast = run(&build_exe(OptLevel::O2), &Environment::new(), &[500]);
        assert!(
            fast.counters.cycles < slow.counters.cycles,
            "O2 {} vs O0 {}",
            fast.counters.cycles,
            slow.counters.cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let exe = build_exe(OptLevel::O2);
        let env = Environment::of_total_size(512);
        let a = run(&exe, &env, &[100]);
        let b = run(&exe, &env, &[100]);
        assert_eq!(a, b);
    }

    #[test]
    fn environment_changes_only_timing_not_semantics() {
        let exe = build_exe(OptLevel::O2);
        let a = run(&exe, &Environment::of_total_size(0), &[100]);
        let b = run(&exe, &Environment::of_total_size(4000), &[100]);
        assert_eq!(a.return_value, b.return_value);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.counters.instructions, b.counters.instructions);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut mb = ModuleBuilder::new();
        mb.function("spin", 0, false, |fb| {
            let b = fb.new_block();
            fb.jump(b);
            fb.switch_to(b);
            fb.jump(b);
        });
        let m = mb.finish().unwrap();
        let exe = Linker::new()
            .link(&compile(&optimize(&m, OptLevel::O0), OptLevel::O0), "spin")
            .unwrap();
        let mut config = MachineConfig::core2();
        config.max_instructions = 10_000;
        let process = Loader::new().load(&exe, &Environment::new(), &[]).unwrap();
        let err = Machine::new(config).run(&exe, process).unwrap_err();
        assert_eq!(err, RunError::Budget(10_000));
    }

    #[test]
    fn presets_validate() {
        for m in MachineConfig::all() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut m = MachineConfig::core2();
        m.l1d.ways = 3;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::core2();
        m.branch.btb_entries = 100;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::core2();
        m.overlap = 1.5;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::core2();
        m.fetch_bytes = 5;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::core2();
        m.dtlb.ways = 3;
        assert!(m.validate().is_err());
    }

    #[test]
    fn bad_geometry_is_rejected_at_construction_not_access_time() {
        let mut bad = MachineConfig::core2();
        bad.l1d.size = 384 * 64; // 3 sets at 8 ways × 64 B lines
        let err = Machine::try_new(bad).expect_err("inconsistent geometry");
        assert_eq!(err.unit, "l1d");
        assert!(err.to_string().contains("power of two"));
        // A validated machine simulates with no geometry checks left on
        // the access path — the whole point of construction-time
        // validation.
        let exe = build_exe(OptLevel::O2);
        let process = Loader::new()
            .load(&exe, &Environment::new(), &[50])
            .unwrap();
        Machine::try_new(MachineConfig::core2())
            .expect("presets are valid")
            .run(&exe, process)
            .expect("valid machine runs");
    }

    #[test]
    fn machines_differ_in_cycle_counts() {
        let exe = build_exe(OptLevel::O2);
        let mut cycles = Vec::new();
        for config in MachineConfig::all() {
            let process = Loader::new()
                .load(&exe, &Environment::new(), &[200])
                .unwrap();
            let r = Machine::new(config).run(&exe, process).unwrap();
            cycles.push(r.counters.cycles);
        }
        assert!(cycles.windows(2).any(|w| w[0] != w[1]), "{cycles:?}");
    }

    #[test]
    fn event_kernel_matches_collapsed_dispatch_bit_for_bit() {
        // The collapse is an optimization, not a semantic: driving the
        // identical component graph through the min-heap scheduler must
        // reproduce every counter exactly, profiled or not.
        let exe = build_exe(OptLevel::O2);
        for config in MachineConfig::all() {
            let run_with = |mode: KernelMode| {
                let process = Loader::new()
                    .load(&exe, &Environment::of_total_size(512), &[300])
                    .unwrap();
                let mut m = Machine::with_kernel(config.clone(), mode);
                assert_eq!(m.effective_kernel(), mode);
                m.run(&exe, process).unwrap()
            };
            let fast = run_with(KernelMode::Collapsed);
            let event = run_with(KernelMode::Event);
            assert_eq!(fast, event, "{}", config.name);
        }
    }

    #[test]
    fn auto_mode_block_dispatches_a_single_active_chain() {
        let m = Machine::new(MachineConfig::core2());
        assert_eq!(m.effective_kernel(), KernelMode::Block);
    }

    #[test]
    fn profiling_attributes_cycles_to_functions() {
        let exe = build_exe(OptLevel::O2);
        let process = Loader::new()
            .load(&exe, &Environment::new(), &[200])
            .unwrap();
        let (result, profile) = Machine::new(MachineConfig::core2())
            .run_profiled(&exe, process)
            .unwrap();
        assert_eq!(profile.hottest(), Some("main"));
        let attributed = profile.total_cycles();
        // Everything except the final halt instruction is attributed.
        assert!(attributed <= result.counters.cycles);
        assert!(
            attributed >= result.counters.cycles - 10,
            "attributed {attributed} vs total {}",
            result.counters.cycles
        );
        // Profiling must not change the measurement itself.
        let process = Loader::new()
            .load(&exe, &Environment::new(), &[200])
            .unwrap();
        let plain = Machine::new(MachineConfig::core2())
            .run(&exe, process)
            .unwrap();
        assert_eq!(plain.counters, result.counters);
    }

    #[test]
    fn profiled_event_runs_match_profiled_collapsed_runs() {
        let exe = build_exe(OptLevel::O2);
        let run_with = |mode: KernelMode| {
            let process = Loader::new()
                .load(&exe, &Environment::new(), &[200])
                .unwrap();
            Machine::with_kernel(MachineConfig::o3cpu(), mode)
                .run_profiled(&exe, process)
                .unwrap()
        };
        let (fast, fast_profile) = run_with(KernelMode::Collapsed);
        let (event, event_profile) = run_with(KernelMode::Event);
        assert_eq!(fast, event);
        assert_eq!(fast_profile, event_profile);
    }

    #[test]
    fn stall_categories_account_for_all_extra_cycles() {
        let exe = build_exe(OptLevel::O0);
        let process = Loader::new()
            .load(&exe, &Environment::new(), &[300])
            .unwrap();
        let r = Machine::new(MachineConfig::pentium4())
            .run(&exe, process)
            .unwrap();
        let c = &r.counters;
        // cycles = 1 per instruction + attributed stalls, exactly.
        assert_eq!(c.cycles, c.instructions + c.stall_total());
    }

    #[test]
    fn next_line_prefetch_reduces_streaming_misses() {
        let exe = build_exe(OptLevel::O2);
        let run_with = |prefetch: bool| {
            let mut config = MachineConfig::core2();
            config.l1d_next_line_prefetch = prefetch;
            let process = Loader::new()
                .load(&exe, &Environment::new(), &[400])
                .unwrap();
            Machine::new(config).run(&exe, process).unwrap()
        };
        let off = run_with(false);
        let on = run_with(true);
        assert_eq!(on.checksum, off.checksum, "prefetch never changes results");
        assert!(
            on.counters.l1d_misses <= off.counters.l1d_misses,
            "prefetch must not add demand misses ({} vs {})",
            on.counters.l1d_misses,
            off.counters.l1d_misses
        );
    }

    #[test]
    fn counters_are_internally_consistent() {
        let exe = build_exe(OptLevel::O2);
        let r = run(&exe, &Environment::new(), &[100]);
        let c = &r.counters;
        assert!(c.cycles >= c.instructions);
        assert!(c.l1d_misses <= c.l1d_accesses);
        assert!(c.mispredicts <= c.branches);
        assert!(c.loads + c.stores <= c.l1d_accesses);
        assert!(c.instructions > 0);
    }
}
