//! Typed geometry validation for the timing-model configurations.
//!
//! Every structure whose address mapping the bias mechanisms flow through
//! (caches, TLBs, BTB, gshare, fetch window, banks) constrains its geometry
//! to powers of two. Those constraints are checked **once, at
//! construction** — [`crate::MachineConfig::validate`], [`crate::cache::Cache::try_new`],
//! [`crate::tlb::Tlb::try_new`] — and never re-asserted on the access path:
//! an inconsistent configuration is a typed [`ConfigError`] before the
//! first simulated cycle, not a panic in the middle of a sweep.

use std::fmt;

/// A single inconsistent geometry parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeometryError {
    /// Cache line size must be a power of two.
    LineNotPowerOfTwo {
        /// The offending line size in bytes.
        line: u32,
    },
    /// Zero ways or zero capacity.
    ZeroSizeOrWays,
    /// `size / (ways * line)` must be a whole power-of-two set count.
    SetsNotPowerOfTwo {
        /// Capacity in bytes.
        size: u32,
        /// Associativity.
        ways: u32,
        /// Line size in bytes.
        line: u32,
    },
    /// `entries / ways` must be a whole power-of-two TLB set count.
    TlbSetsNotPowerOfTwo {
        /// Total TLB entries.
        entries: u32,
        /// Associativity.
        ways: u32,
    },
    /// BTB entry count must be a power of two.
    BtbNotPowerOfTwo {
        /// The offending entry count.
        entries: u32,
    },
    /// gshare history bits must be in `1..=24`.
    GshareBitsOutOfRange {
        /// The offending bit count.
        bits: u32,
    },
    /// Fetch window must be a power of two of at least 4 bytes.
    FetchWindowInvalid {
        /// The offending window size in bytes.
        bytes: u32,
    },
    /// Bank count must be a power of two when banking is enabled.
    BanksNotPowerOfTwo {
        /// The offending bank count.
        banks: u32,
    },
    /// Associativity above the packed valid-mask width (64 ways).
    WaysUnsupported {
        /// The offending way count.
        ways: u32,
    },
    /// Out-of-order overlap must lie in `[0, 1)`.
    OverlapOutOfRange {
        /// The offending overlap fraction.
        overlap: f64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GeometryError::LineNotPowerOfTwo { line } => {
                write!(f, "line size {line} not a power of two")
            }
            GeometryError::ZeroSizeOrWays => write!(f, "zero ways or size"),
            GeometryError::SetsNotPowerOfTwo { size, ways, line } => write!(
                f,
                "{size} bytes / {ways} ways / {line} line does not give a \
                 power of two set count"
            ),
            GeometryError::TlbSetsNotPowerOfTwo { entries, ways } => {
                write!(f, "{entries}x{ways} is not a power of two set layout")
            }
            GeometryError::BtbNotPowerOfTwo { entries } => {
                write!(f, "{entries} entries not a power of two")
            }
            GeometryError::GshareBitsOutOfRange { bits } => {
                write!(f, "{bits} bits outside 1..=24")
            }
            GeometryError::FetchWindowInvalid { bytes } => {
                write!(f, "fetch window {bytes} invalid")
            }
            GeometryError::BanksNotPowerOfTwo { banks } => {
                write!(f, "{banks} banks not a power of two")
            }
            GeometryError::WaysUnsupported { ways } => {
                write!(f, "{ways} ways exceeds the supported maximum of 64")
            }
            GeometryError::OverlapOutOfRange { overlap } => {
                write!(f, "overlap {overlap} outside [0, 1)")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// An invalid [`crate::MachineConfig`]: which unit failed, and how.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// The configuration unit (`l1d`, `itlb`, `btb`, …).
    pub unit: &'static str,
    /// The failed constraint.
    pub kind: GeometryError,
}

impl ConfigError {
    /// Pairs a unit name with a geometry error.
    #[must_use]
    pub fn new(unit: &'static str, kind: GeometryError) -> ConfigError {
        ConfigError { unit, kind }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.unit, self.kind)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_the_offending_parameters() {
        let e = GeometryError::SetsNotPowerOfTwo {
            size: 384,
            ways: 2,
            line: 64,
        };
        let text = e.to_string();
        assert!(text.contains("384"));
        assert!(text.contains("power of two"));
        let c = ConfigError::new("l1d", e);
        assert!(c.to_string().starts_with("l1d: "));
    }
}
