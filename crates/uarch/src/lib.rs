//! # biaslab-uarch — a deterministic micro-architectural simulator
//!
//! The machine substrate of the `biaslab` reproduction of *Producing Wrong
//! Data Without Doing Anything Obviously Wrong!* (ASPLOS 2009). It stands
//! in for the paper's Pentium 4, Core 2 and m5 O3CPU testbeds with three
//! corresponding [`MachineConfig`] presets.
//!
//! The simulator is *mechanistic rather than cycle-exact*: it models the
//! structures through which memory-layout changes become performance
//! changes — set-associative caches ([`cache::Cache`]), TLBs
//! ([`tlb::Tlb`]), an address-indexed branch predictor and BTB
//! ([`branch::BranchPredictor`]), aligned fetch windows and line/page-split
//! penalties — and charges simple latencies for each event. That is
//! exactly the class of mechanism the paper identifies as the source of
//! measurement bias, so the bias phenomenology (sensitivity to environment
//! size and link order, with magnitudes comparable to the O2→O3 effect)
//! reproduces even though absolute cycle counts are model numbers, not
//! silicon measurements.
//!
//! Structurally, a [`Machine`] is a component graph run by a
//! discrete-event kernel ([`kernel`]): the core drives a front-end
//! component ([`front::FrontEnd`]) and a memory-hierarchy component
//! ([`dmem::MemSystem`]) over explicit ports ([`ports`]), with a shared
//! unified L2 between them. Single-active-chain configurations — all
//! three paper machines — dispatch whole basic blocks through a decoded
//! trace cache ([`block::BlockCache`], [`KernelMode::Auto`] →
//! [`KernelMode::Block`]), so the fast path pays nothing for the
//! generality; [`KernelMode::Collapsed`] keeps the per-instruction
//! direct-dispatch loop as a reference, [`KernelMode::Event`] drives the
//! same graph through the min-heap scheduler, and differential tests pin
//! all three paths to bit-identical counters.
//!
//! # Examples
//!
//! ```
//! use biaslab_toolchain::{codegen, link::Linker, load::{Environment, Loader},
//!                         opt, ModuleBuilder, OptLevel};
//! use biaslab_uarch::{Machine, MachineConfig};
//!
//! let mut mb = ModuleBuilder::new();
//! mb.function("main", 0, true, |fb| {
//!     let v = fb.const_(21);
//!     let w = fb.mul_imm(v, 2);
//!     fb.ret(Some(w));
//! });
//! let m = mb.finish()?;
//! let exe = Linker::new()
//!     .link(&codegen::compile(&opt::optimize(&m, OptLevel::O2), OptLevel::O2), "main")?;
//! let process = Loader::new().load(&exe, &Environment::new(), &[])?;
//! let result = Machine::new(MachineConfig::core2()).run(&exe, process)?;
//! assert_eq!(result.return_value, 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod branch;
pub mod cache;
pub mod counters;
pub mod dmem;
pub mod front;
pub mod geometry;
pub mod kernel;
pub mod machine;
pub mod ports;
pub mod profile;
pub mod tlb;

pub use block::{BlockCache, BlockCacheStats, DecodedBlock};
pub use counters::Counters;
pub use geometry::{ConfigError, GeometryError};
pub use kernel::{ClockDivider, Component, ComponentId, EventScheduler, KernelMode};
pub use machine::{Machine, MachineConfig, RunError, RunResult};
pub use profile::{Profile, ProfileEntry};
