//! Per-function cycle attribution — the simulator's built-in profiler.
//!
//! Attribution is exact, not sampled: every retired instruction's cycle
//! cost (including the stalls it caused) is charged to the function whose
//! text range contains its pc. The paper's workflow starts from exactly
//! this kind of profile ("where do the cycles go?") before asking whether
//! the answer can be trusted.
//!
//! The attributor observes the core at instruction-retire boundaries, on
//! either kernel path ([`crate::KernelMode`]): it only *reads* the cycle
//! counter, so profiled and unprofiled runs — collapsed or
//! event-scheduled — stay bit-identical, an invariant the differential
//! tests pin.

use std::fmt;

use biaslab_toolchain::link::Executable;
use serde::{Deserialize, Serialize};

/// One function's share of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Function symbol name.
    pub name: String,
    /// Cycles attributed to instructions inside the function.
    pub cycles: u64,
    /// Instructions retired inside the function.
    pub instructions: u64,
}

/// A completed profile, sorted by descending cycle share.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Entries, hottest first. Functions that never executed are omitted.
    pub entries: Vec<ProfileEntry>,
}

impl Profile {
    /// Total attributed cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.cycles).sum()
    }

    /// The entry for a function, if it executed.
    #[must_use]
    pub fn entry(&self, name: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The hottest function's name, if anything executed.
    #[must_use]
    pub fn hottest(&self) -> Option<&str> {
        self.entries.first().map(|e| e.name.as_str())
    }

    /// The profile in folded-stacks form — `function cycles`, one line per
    /// function — the format flamegraph tooling consumes and what
    /// `biaslab trace --flame` renders. Attribution here is flat (exact
    /// per-pc charging, no call stacks), so every line is a single frame.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.name);
            out.push(' ');
            out.push_str(&e.cycles.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_cycles().max(1);
        writeln!(
            f,
            "{:<24} {:>12} {:>12} {:>7}",
            "function", "cycles", "instructions", "share"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<24} {:>12} {:>12} {:>6.2}%",
                e.name,
                e.cycles,
                e.instructions,
                100.0 * e.cycles as f64 / total as f64
            )?;
        }
        Ok(())
    }
}

/// Streams (pc, cycle-delta) records into per-function buckets.
#[derive(Debug)]
pub(crate) struct Attributor {
    /// (start, end, name) per text symbol, sorted by start.
    ranges: Vec<(u32, u32, String)>,
    cycles: Vec<u64>,
    instructions: Vec<u64>,
    /// Cache of the last hit range (instruction locality makes this hit
    /// almost always).
    last: usize,
}

impl Attributor {
    pub(crate) fn new(exe: &Executable) -> Attributor {
        let text_end = exe.text_base() + exe.text_size();
        let mut ranges: Vec<(u32, u32, String)> = exe
            .symbols()
            .iter()
            .filter(|s| s.addr >= exe.text_base() && s.addr < text_end)
            .map(|s| (s.addr, s.addr + s.size, s.name.clone()))
            .collect();
        ranges.sort_by_key(|r| r.0);
        let n = ranges.len();
        Attributor {
            ranges,
            cycles: vec![0; n],
            instructions: vec![0; n],
            last: 0,
        }
    }

    pub(crate) fn record(&mut self, pc: u32, cycles: u64) {
        let idx = self.lookup(pc);
        if let Some(i) = idx {
            self.cycles[i] += cycles;
            self.instructions[i] += 1;
        }
    }

    /// Records a whole basic block's span in one call: `instructions`
    /// retired and `cycles` elapsed, all charged to the bucket containing
    /// `pc` (the block entry). Exactly equivalent to per-instruction
    /// [`Attributor::record`] calls because block formation never crosses
    /// a function-symbol start, so every pc in the block resolves to the
    /// entry's bucket and the per-instruction deltas telescope.
    pub(crate) fn record_span(&mut self, pc: u32, cycles: u64, instructions: u64) {
        if instructions == 0 && cycles == 0 {
            return;
        }
        if let Some(i) = self.lookup(pc) {
            self.cycles[i] += cycles;
            self.instructions[i] += instructions;
        }
    }

    fn lookup(&mut self, pc: u32) -> Option<usize> {
        let (s, e, _) = self.ranges.get(self.last)?;
        if *s <= pc && pc < *e {
            return Some(self.last);
        }
        let i = match self.ranges.binary_search_by(|r| r.0.cmp(&pc)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (s, e, _) = &self.ranges[i];
        if *s <= pc && pc < *e {
            self.last = i;
            Some(i)
        } else {
            // Alignment padding between functions: attribute to the
            // preceding function (it is its padding).
            self.last = i;
            Some(i)
        }
    }

    pub(crate) fn finish(self) -> Profile {
        let mut entries: Vec<ProfileEntry> = self
            .ranges
            .into_iter()
            .zip(self.cycles)
            .zip(self.instructions)
            .filter(|(_, instructions)| *instructions > 0)
            .map(|(((_, _, name), cycles), instructions)| ProfileEntry {
                name,
                cycles,
                instructions,
            })
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.cycles));
        Profile { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_shares() {
        let p = Profile {
            entries: vec![
                ProfileEntry {
                    name: "hot".into(),
                    cycles: 75,
                    instructions: 10,
                },
                ProfileEntry {
                    name: "cold".into(),
                    cycles: 25,
                    instructions: 5,
                },
            ],
        };
        let text = p.to_string();
        assert!(text.contains("hot"));
        assert!(text.contains("75.00%"));
        assert_eq!(p.total_cycles(), 100);
        assert_eq!(p.hottest(), Some("hot"));
        assert!(p.entry("cold").is_some());
        assert!(p.entry("missing").is_none());
    }
}
