//! Translation lookaside buffers.
//!
//! The simulated machine is physically addressed with an identity mapping,
//! so the TLB exists purely for its *timing* role: a set-associative cache
//! over page numbers whose conflicts depend on which pages a run touches —
//! and the stack pages move with the environment size.
//!
//! Like [`crate::cache::Cache`], geometry is validated once at
//! construction and entry validity is an explicit per-set bit mask rather
//! than a tag sentinel.

use serde::{Deserialize, Serialize};

use biaslab_toolchain::layout::PAGE_SIZE;

use crate::geometry::GeometryError;

/// Geometry of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Page-walk penalty in cycles on a miss.
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// Number of sets, if the geometry is consistent.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint: `entries / ways` must be a whole
    /// power-of-two set count, with the associativity within the packed
    /// valid-mask width.
    pub fn try_sets(&self) -> Result<u32, GeometryError> {
        if self.ways == 0 || self.entries == 0 {
            return Err(GeometryError::ZeroSizeOrWays);
        }
        if self.ways > 64 {
            return Err(GeometryError::WaysUnsupported { ways: self.ways });
        }
        if !self.entries.is_multiple_of(self.ways) || !(self.entries / self.ways).is_power_of_two()
        {
            return Err(GeometryError::TlbSetsNotPowerOfTwo {
                entries: self.entries,
                ways: self.ways,
            });
        }
        Ok(self.entries / self.ways)
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; prefer [`TlbConfig::try_sets`]
    /// when the configuration comes from user input.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.try_sets().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The set count, computed without validation. Correct only for a
    /// geometry [`TlbConfig::try_sets`] accepts — guaranteed for every
    /// constructed [`Tlb`] and validated [`crate::MachineConfig`].
    #[inline]
    fn sets_unchecked(&self) -> u32 {
        self.entries / self.ways
    }

    /// The set index the page containing `addr` maps to — the same
    /// mapping [`Tlb::access`] applies, exposed on the configuration so
    /// static analyses can reason about page conflicts without
    /// instantiating a TLB. Requires a validated geometry.
    #[must_use]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr / PAGE_SIZE) & (self.sets_unchecked() - 1)
    }

    /// The tag stored for the page containing `addr`. Requires a
    /// validated geometry.
    #[must_use]
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr / PAGE_SIZE / self.sets_unchecked()
    }
}

/// A set-associative TLB with LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    sets: u32,
    /// `log2(sets)`: validated power-of-two, so the lookup extracts the
    /// tag by shifting rather than a hardware `div` per access.
    set_shift: u32,
    /// `tags[set * ways + way]`: page tag, meaningful only where the
    /// corresponding bit of `valid[set]` is set.
    tags: Vec<u32>,
    /// Per-set packed valid mask: bit `way` set ⇔ that way holds an entry.
    valid: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    /// Per-set MRU filter: `mru[set]` is the page number of the set's
    /// most-recently-used way (`u64::MAX` = none; a real page number fits
    /// in 20 bits and can never alias). An access to that page is elided
    /// entirely — see [`crate::cache::Cache`]'s equivalent field for the
    /// LRU-equivalence argument.
    mru: Vec<u64>,
}

impl Tlb {
    /// Creates an empty TLB, validating the geometry once.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint (see [`TlbConfig::try_sets`]).
    pub fn try_new(config: TlbConfig) -> Result<Tlb, GeometryError> {
        let sets = config.try_sets()?;
        let n = (sets * config.ways) as usize;
        Ok(Tlb {
            config,
            sets,
            set_shift: sets.trailing_zeros(),
            tags: vec![0; n],
            valid: vec![0; sets as usize],
            stamps: vec![0; n],
            clock: 0,
            mru: vec![u64::MAX; sets as usize],
        })
    }

    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; prefer [`Tlb::try_new`]
    /// when the configuration comes from user input.
    #[must_use]
    pub fn new(config: TlbConfig) -> Tlb {
        Tlb::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up the page containing `addr`. Returns `true` on hit; a miss
    /// installs the translation.
    ///
    /// `inline(always)` for the same reason as [`crate::cache::Cache::access`]:
    /// the MRU elision is the common case and costs three ALU ops inline.
    #[inline(always)]
    pub fn access(&mut self, addr: u32) -> bool {
        let page = addr / PAGE_SIZE;
        let set = page & (self.sets - 1);
        if u64::from(page) == self.mru[set as usize] {
            return true;
        }
        self.access_scan(page, set)
    }

    /// Read-only probe: is the page containing `addr` its set's MRU entry?
    /// `true` means [`Tlb::access`] would hit and change nothing, so the
    /// caller may elide the access entirely.
    #[inline(always)]
    #[must_use]
    pub fn mru_hit(&self, addr: u32) -> bool {
        let page = addr / PAGE_SIZE;
        let set = page & (self.sets - 1);
        u64::from(page) == self.mru[set as usize]
    }

    /// The way scan behind the MRU filter.
    fn access_scan(&mut self, page: u32, set: u32) -> bool {
        self.clock += 1;
        let tag = page >> self.set_shift;
        let base = (set * self.config.ways) as usize;
        let ways = self.config.ways as usize;
        let valid = self.valid[set as usize];
        // Slice the set once so the way scan is bounds-checked once.
        let set_tags = &mut self.tags[base..base + ways];
        if let Some(way) = (0..ways).find(|&w| valid >> w & 1 == 1 && set_tags[w] == tag) {
            self.stamps[base + way] = self.clock;
            self.mru[set as usize] = u64::from(page);
            return true;
        }
        // Invalid ways carry stamp 0, so they fill before any eviction.
        let set_stamps = &self.stamps[base..base + ways];
        let victim = (0..ways)
            .min_by_key(|&w| set_stamps[w])
            .expect("TLB has at least one way");
        set_tags[victim] = tag;
        self.valid[set as usize] = valid | 1 << victim;
        self.stamps[base + victim] = self.clock;
        self.mru[set as usize] = u64::from(page);
        false
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        self.valid.fill(0);
        self.stamps.fill(0);
        self.clock = 0;
        self.mru.fill(u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 8,
            ways: 2,
            miss_penalty: 30,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn conflicting_pages_evict() {
        let mut t = tiny();
        // 4 sets; pages 0, 4, 8 share set 0 in a 2-way TLB.
        assert!(!t.access(0));
        assert!(!t.access(4 * PAGE_SIZE));
        assert!(!t.access(8 * PAGE_SIZE)); // evicts page 0
        assert!(!t.access(0)); // page 0 gone
    }

    #[test]
    fn config_geometry_agrees_with_the_simulated_tlb() {
        let cfg = TlbConfig {
            entries: 8,
            ways: 2,
            miss_penalty: 30,
        };
        assert_eq!(cfg.sets(), 4);
        // Pages 0, 4, 8 share set 0 (the conflict `conflicting_pages_evict`
        // exercises dynamically); the static mapping must agree.
        assert_eq!(cfg.set_of(0), cfg.set_of(4 * PAGE_SIZE));
        assert_eq!(cfg.set_of(0), cfg.set_of(8 * PAGE_SIZE));
        assert_ne!(cfg.set_of(0), cfg.set_of(PAGE_SIZE));
        assert_ne!(cfg.tag_of(0), cfg.tag_of(4 * PAGE_SIZE));
    }

    #[test]
    fn flush_invalidates() {
        let mut t = tiny();
        t.access(0x5000);
        t.flush();
        assert!(!t.access(0x5000));
    }

    #[test]
    fn bad_geometry_is_a_typed_error_at_construction() {
        let bad = TlbConfig {
            entries: 9,
            ways: 2,
            miss_penalty: 10,
        };
        assert_eq!(
            Tlb::try_new(bad).err(),
            Some(GeometryError::TlbSetsNotPowerOfTwo {
                entries: 9,
                ways: 2
            })
        );
        assert_eq!(
            TlbConfig {
                entries: 0,
                ways: 0,
                miss_penalty: 1
            }
            .try_sets(),
            Err(GeometryError::ZeroSizeOrWays)
        );
    }

    #[test]
    fn cold_entries_never_alias_a_real_tag() {
        // Regression companion to the cache's sentinel fix: with the
        // maximal geometry a u32 address can produce (`sets = 1`), the
        // largest page tag is `u32::MAX / PAGE_SIZE` — representable, and
        // under the old `u32::MAX` sentinel any future page-number widening
        // would have aliased it. With valid bits, a cold TLB misses for
        // every page, including the maximal one.
        let mut t = Tlb::new(TlbConfig {
            entries: 1,
            ways: 1,
            miss_penalty: 10,
        });
        assert!(!t.access(u32::MAX), "cold TLB must miss the maximal page");
        assert!(t.access(u32::MAX));
        t.flush();
        assert!(!t.access(u32::MAX));
    }
}
