//! Translation lookaside buffers.
//!
//! The simulated machine is physically addressed with an identity mapping,
//! so the TLB exists purely for its *timing* role: a set-associative cache
//! over page numbers whose conflicts depend on which pages a run touches —
//! and the stack pages move with the environment size.

use serde::{Deserialize, Serialize};

use biaslab_toolchain::layout::PAGE_SIZE;

/// Geometry of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Page-walk penalty in cycles on a miss.
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries / ways` is not a power of two.
    #[must_use]
    pub fn sets(&self) -> u32 {
        let sets = self.entries / self.ways;
        assert!(
            sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        sets
    }

    /// The set index the page containing `addr` maps to — the same
    /// mapping [`Tlb::access`] applies, exposed on the configuration so
    /// static analyses can reason about page conflicts without
    /// instantiating a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries / ways` is not a power of two.
    #[must_use]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr / PAGE_SIZE) & (self.sets() - 1)
    }

    /// The tag stored for the page containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `entries / ways` is not a power of two.
    #[must_use]
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr / PAGE_SIZE / self.sets()
    }
}

/// A set-associative TLB with LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    sets: u32,
    tags: Vec<u32>,
    stamps: Vec<u64>,
    clock: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries / ways` is not a power of two.
    #[must_use]
    pub fn new(config: TlbConfig) -> Tlb {
        let sets = config.sets();
        let n = (sets * config.ways) as usize;
        Tlb {
            config,
            sets,
            tags: vec![u32::MAX; n],
            stamps: vec![0; n],
            clock: 0,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up the page containing `addr`. Returns `true` on hit; a miss
    /// installs the translation.
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        self.clock += 1;
        let page = addr / PAGE_SIZE;
        let set = page & (self.sets - 1);
        let tag = page / self.sets;
        let base = (set * self.config.ways) as usize;
        let ways = self.config.ways as usize;
        // Slice the set once so the way scan is bounds-checked once.
        let set_tags = &mut self.tags[base..base + ways];
        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            self.stamps[base + way] = self.clock;
            return true;
        }
        let set_stamps = &self.stamps[base..base + ways];
        let victim = (0..ways)
            .min_by_key(|&w| set_stamps[w])
            .expect("TLB has at least one way");
        set_tags[victim] = tag;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        self.tags.fill(u32::MAX);
        self.stamps.fill(0);
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 8,
            ways: 2,
            miss_penalty: 30,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn conflicting_pages_evict() {
        let mut t = tiny();
        // 4 sets; pages 0, 4, 8 share set 0 in a 2-way TLB.
        assert!(!t.access(0));
        assert!(!t.access(4 * PAGE_SIZE));
        assert!(!t.access(8 * PAGE_SIZE)); // evicts page 0
        assert!(!t.access(0)); // page 0 gone
    }

    #[test]
    fn config_geometry_agrees_with_the_simulated_tlb() {
        let cfg = TlbConfig {
            entries: 8,
            ways: 2,
            miss_penalty: 30,
        };
        assert_eq!(cfg.sets(), 4);
        // Pages 0, 4, 8 share set 0 (the conflict `conflicting_pages_evict`
        // exercises dynamically); the static mapping must agree.
        assert_eq!(cfg.set_of(0), cfg.set_of(4 * PAGE_SIZE));
        assert_eq!(cfg.set_of(0), cfg.set_of(8 * PAGE_SIZE));
        assert_ne!(cfg.set_of(0), cfg.set_of(PAGE_SIZE));
        assert_ne!(cfg.tag_of(0), cfg.tag_of(4 * PAGE_SIZE));
    }

    #[test]
    fn flush_invalidates() {
        let mut t = tiny();
        t.access(0x5000);
        t.flush();
        assert!(!t.access(0x5000));
    }
}
