//! Hardware event counters.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Event counts collected during a simulated run — the analogue of the
/// hardware performance counters the paper reads on real machines, except
/// complete and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired instructions (padding `nop`s included).
    pub instructions: u64,
    /// Instruction-fetch window accesses.
    pub fetches: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// Unified L2 misses (from either L1).
    pub l2_misses: u64,
    /// Instruction-TLB misses.
    pub itlb_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches whose predicted direction was wrong.
    pub mispredicts: u64,
    /// Taken control transfers whose target missed in the BTB.
    pub btb_misses: u64,
    /// Returns mispredicted by the return-address stack.
    pub ras_mispredicts: u64,
    /// Same-bank L1D conflicts between back-to-back accesses.
    pub bank_conflicts: u64,
    /// Data accesses that straddled a cache-line boundary.
    pub line_splits: u64,
    /// Data accesses that straddled a page boundary.
    pub page_splits: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Stall cycles attributed to the front end (I-cache, I-TLB, BTB).
    pub stall_frontend: u64,
    /// Stall cycles attributed to data memory (D-cache, D-TLB, banks).
    pub stall_memory: u64,
    /// Stall cycles attributed to branch mispredictions (direction + RAS).
    pub stall_branch: u64,
    /// Extra cycles attributed to long-latency ALU ops (mul/div).
    pub stall_compute: u64,
}

impl Counters {
    /// Cycles per instruction; `NaN` if no instructions retired.
    ///
    /// # Examples
    ///
    /// ```
    /// use biaslab_uarch::Counters;
    ///
    /// let c = Counters { cycles: 150, instructions: 100, ..Counters::default() };
    /// assert!((c.cpi() - 1.5).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions as f64
    }

    /// L1D miss rate over L1D accesses; 0 if there were none.
    #[must_use]
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses as f64
        }
    }

    /// Total attributed stall cycles (frontend + memory + branch +
    /// compute); the remainder of `cycles` is base issue.
    #[must_use]
    pub fn stall_total(&self) -> u64 {
        self.stall_frontend + self.stall_memory + self.stall_branch + self.stall_compute
    }

    /// Branch misprediction rate; 0 if there were no branches.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl Add for Counters {
    type Output = Counters;

    fn add(mut self, rhs: Counters) -> Counters {
        self += rhs;
        self
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        self.cycles += rhs.cycles;
        self.instructions += rhs.instructions;
        self.fetches += rhs.fetches;
        self.l1i_misses += rhs.l1i_misses;
        self.l1d_accesses += rhs.l1d_accesses;
        self.l1d_misses += rhs.l1d_misses;
        self.l2_misses += rhs.l2_misses;
        self.itlb_misses += rhs.itlb_misses;
        self.dtlb_misses += rhs.dtlb_misses;
        self.branches += rhs.branches;
        self.mispredicts += rhs.mispredicts;
        self.btb_misses += rhs.btb_misses;
        self.ras_mispredicts += rhs.ras_mispredicts;
        self.bank_conflicts += rhs.bank_conflicts;
        self.line_splits += rhs.line_splits;
        self.page_splits += rhs.page_splits;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.stall_frontend += rhs.stall_frontend;
        self.stall_memory += rhs.stall_memory;
        self.stall_branch += rhs.stall_branch;
        self.stall_compute += rhs.stall_compute;
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles            {:>14}", self.cycles)?;
        writeln!(f, "instructions      {:>14}", self.instructions)?;
        writeln!(f, "cpi               {:>14.3}", self.cpi())?;
        writeln!(f, "l1d accesses      {:>14}", self.l1d_accesses)?;
        writeln!(f, "l1d misses        {:>14}", self.l1d_misses)?;
        writeln!(f, "l1i misses        {:>14}", self.l1i_misses)?;
        writeln!(f, "l2 misses         {:>14}", self.l2_misses)?;
        writeln!(f, "dtlb misses       {:>14}", self.dtlb_misses)?;
        writeln!(f, "itlb misses       {:>14}", self.itlb_misses)?;
        writeln!(f, "branches          {:>14}", self.branches)?;
        writeln!(f, "mispredicts       {:>14}", self.mispredicts)?;
        writeln!(f, "btb misses        {:>14}", self.btb_misses)?;
        writeln!(f, "bank conflicts    {:>14}", self.bank_conflicts)?;
        writeln!(f, "line splits       {:>14}", self.line_splits)?;
        writeln!(f, "page splits       {:>14}", self.page_splits)?;
        writeln!(f, "stall: frontend   {:>14}", self.stall_frontend)?;
        writeln!(f, "stall: memory     {:>14}", self.stall_memory)?;
        writeln!(f, "stall: branch     {:>14}", self.stall_branch)?;
        write!(f, "stall: compute    {:>14}", self.stall_compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let c = Counters {
            cycles: 100,
            instructions: 50,
            l1d_accesses: 10,
            l1d_misses: 2,
            branches: 8,
            mispredicts: 4,
            ..Counters::default()
        };
        assert!((c.cpi() - 2.0).abs() < 1e-12);
        assert!((c.l1d_miss_rate() - 0.2).abs() < 1e-12);
        assert!((c.mispredict_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let c = Counters::default();
        assert_eq!(c.l1d_miss_rate(), 0.0);
        assert_eq!(c.mispredict_rate(), 0.0);
        assert!(c.cpi().is_nan());
    }

    #[test]
    fn addition_accumulates_fieldwise() {
        let a = Counters {
            cycles: 1,
            loads: 2,
            ..Counters::default()
        };
        let b = Counters {
            cycles: 10,
            stores: 3,
            ..Counters::default()
        };
        let s = a + b;
        assert_eq!(s.cycles, 11);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 3);
    }

    #[test]
    fn display_mentions_key_counters() {
        let text = Counters::default().to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("mispredicts"));
    }
}
