//! The front-end component: fetch windows, I-cache, I-TLB and branch
//! prediction.
//!
//! Everything address-indexed on the instruction side lives here, which is
//! why link order (which moves code) transmits bias through this component:
//! fetch-window alignment, I-cache and I-TLB set mappings, gshare/BTB
//! indices. The core drives it through the port methods below; under the
//! event kernel it is registered as a (demand-driven, never self-ticking)
//! [`Component`].

use biaslab_toolchain::layout::PAGE_SIZE;

use crate::branch::{BranchConfig, BranchPredictor};
use crate::cache::{Cache, CacheConfig};
use crate::counters::Counters;
use crate::kernel::Component;
use crate::ports::L2Port;
use crate::tlb::{Tlb, TlbConfig};

/// The instruction-side timing component.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    itlb: Tlb,
    l1i: Cache,
    bp: BranchPredictor,
    /// The fetch window the previous instruction came from; crossing into
    /// a new window is what costs a fetch. Reset per run.
    last_window: u32,
    /// `log2(l1i line)`, for the repeat-line filter below.
    line_shift: u32,
    /// The I-cache line of the last charged fetch (`u64::MAX` = none). A
    /// window crossing that stays inside this line skips the I-cache
    /// lookup entirely: the line is resident (it just hit or filled, and
    /// nothing else touches the L1I), so the lookup would hit, and
    /// skipping a repeat hit is LRU-equivalent — the skipped stamp was
    /// already the newest in its set and only the relative order of
    /// stamps is ever compared. Counters are unchanged: a repeat hit
    /// charges nothing.
    last_line: u64,
    /// The page of the last charged fetch (`u64::MAX` = none); the same
    /// elision argument applied to the I-TLB.
    last_page: u64,
    itlb_penalty: u64,
    mispredict_penalty: u64,
    btb_miss_penalty: u64,
}

impl FrontEnd {
    /// Builds the front end from validated geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry; [`crate::Machine::try_new`]
    /// validates the whole configuration first.
    #[must_use]
    pub fn new(l1i: CacheConfig, itlb: TlbConfig, branch: BranchConfig) -> FrontEnd {
        FrontEnd {
            itlb_penalty: u64::from(itlb.miss_penalty),
            mispredict_penalty: u64::from(branch.mispredict_penalty),
            btb_miss_penalty: u64::from(branch.btb_miss_penalty),
            itlb: Tlb::new(itlb),
            line_shift: l1i.line.trailing_zeros(),
            l1i: Cache::new(l1i),
            bp: BranchPredictor::new(branch),
            last_window: u32::MAX,
            last_line: u64::MAX,
            last_page: u64::MAX,
        }
    }

    /// Starts a fresh run: the first instruction always opens a new fetch
    /// window. Predictor and cache state deliberately persist (warm
    /// repetitions reuse them; [`FrontEnd::flush`] returns to cold).
    #[inline]
    pub fn begin_run(&mut self) {
        self.last_window = u32::MAX;
    }

    /// Port: fetch the instruction at `pc` in fetch window `window`,
    /// charging I-TLB and I-cache/L2 stalls when execution crosses into a
    /// new window.
    ///
    /// `inline(always)` keeps the two filters — same window, and same
    /// line + page as the last charged fetch — at the call site; the
    /// lookups behind them stay outlined in [`FrontEnd::fetch_cold`].
    #[inline(always)]
    pub fn fetch(&mut self, pc: u32, window: u32, l2: &mut L2Port<'_>, c: &mut Counters) {
        if window == self.last_window {
            return;
        }
        self.last_window = window;
        c.fetches += 1;
        let page = u64::from(pc / PAGE_SIZE);
        let line = u64::from(pc >> self.line_shift);
        if page == self.last_page && line == self.last_line {
            return;
        }
        self.fetch_cold(pc, page, line, l2, c);
    }

    /// The I-TLB/I-cache lookups behind the repeat-line/page filters.
    fn fetch_cold(&mut self, pc: u32, page: u64, line: u64, l2: &mut L2Port<'_>, c: &mut Counters) {
        if page != self.last_page {
            self.last_page = page;
            if !self.itlb.access(pc) {
                c.itlb_misses += 1;
                c.cycles += self.itlb_penalty;
                c.stall_frontend += self.itlb_penalty;
            }
        }
        if line != self.last_line {
            self.last_line = line;
            if !self.l1i.access(pc) {
                c.l1i_misses += 1;
                let stall = l2.refill(pc, c);
                c.cycles += stall;
                c.stall_frontend += stall;
            }
        }
    }

    /// Port: resolve a conditional branch's direction — predict, train,
    /// and charge the mispredict penalty when the prediction was wrong.
    #[inline]
    pub fn branch_direction(&mut self, pc: u32, taken: bool, c: &mut Counters) {
        let predicted = self.bp.predict(pc).taken;
        self.bp.update(pc, taken);
        if predicted != taken {
            c.mispredicts += 1;
            c.cycles += self.mispredict_penalty;
            c.stall_branch += self.mispredict_penalty;
        }
    }

    /// Port: steer a taken control transfer through the BTB, charging the
    /// front-end bubble on a target miss.
    #[inline]
    pub fn taken_transfer(&mut self, pc: u32, target: u32, c: &mut Counters) {
        if !self.bp.btb_lookup(pc, target) {
            c.btb_misses += 1;
            c.cycles += self.btb_miss_penalty;
            c.stall_frontend += self.btb_miss_penalty;
        }
    }

    /// Port: record a call's return address on the RAS.
    #[inline]
    pub fn push_return(&mut self, addr: u32) {
        self.bp.push_return(addr);
    }

    /// Port: resolve a return against the RAS, charging a mispredict when
    /// the popped prediction misses the actual target.
    #[inline]
    pub fn predict_return(&mut self, target: u32, c: &mut Counters) {
        if self.bp.pop_return() != Some(target) {
            c.ras_mispredicts += 1;
            c.cycles += self.mispredict_penalty;
            c.stall_branch += self.mispredict_penalty;
        }
    }

    /// Returns all front-end state to cold.
    pub fn flush(&mut self) {
        self.itlb.flush();
        self.l1i.flush();
        self.bp.flush();
        self.last_window = u32::MAX;
        self.last_line = u64::MAX;
        self.last_page = u64::MAX;
    }
}

impl Component for FrontEnd {
    fn name(&self) -> &'static str {
        "frontend"
    }

    /// Purely demand-driven: the core pulls fetches through the ports, so
    /// the front end never asks the scheduler for a tick. (An asynchronous
    /// prefetcher would be the first occupant of this hook.)
    fn next_tick(&self) -> Option<u64> {
        None
    }

    fn tick(&mut self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front() -> FrontEnd {
        FrontEnd::new(
            CacheConfig {
                size: 1024,
                ways: 2,
                line: 64,
                hit_latency: 1,
            },
            TlbConfig {
                entries: 8,
                ways: 2,
                miss_penalty: 20,
            },
            BranchConfig {
                gshare_bits: 6,
                btb_entries: 16,
                ras_depth: 4,
                mispredict_penalty: 12,
                btb_miss_penalty: 2,
            },
        )
    }

    #[test]
    fn refetch_within_a_window_is_free() {
        let mut f = front();
        let mut l2 = Cache::new(CacheConfig {
            size: 4096,
            ways: 4,
            line: 64,
            hit_latency: 10,
        });
        let mut c = Counters::default();
        let mut port = L2Port::new(&mut l2, 5, 50);
        f.fetch(0x100, 0x100 / 16, &mut port, &mut c);
        assert_eq!(c.fetches, 1);
        assert_eq!(c.itlb_misses, 1);
        assert_eq!(c.l1i_misses, 1);
        let cycles_after_first = c.cycles;
        // Same window: no new fetch, no new stalls.
        f.fetch(0x104, 0x104 / 16, &mut port, &mut c);
        assert_eq!(c.fetches, 1);
        assert_eq!(c.cycles, cycles_after_first);
        // New window, warm structures: a fetch but no misses.
        f.fetch(0x110, 0x110 / 16, &mut port, &mut c);
        assert_eq!(c.fetches, 2);
        assert_eq!(c.itlb_misses, 1, "same page");
        assert_eq!(c.l1i_misses, 1, "same line");
    }

    #[test]
    fn begin_run_forces_a_fetch_without_cooling_caches() {
        let mut f = front();
        let mut l2 = Cache::new(CacheConfig {
            size: 4096,
            ways: 4,
            line: 64,
            hit_latency: 10,
        });
        let mut c = Counters::default();
        let mut port = L2Port::new(&mut l2, 5, 50);
        f.fetch(0x100, 16, &mut port, &mut c);
        f.begin_run();
        f.fetch(0x100, 16, &mut port, &mut c);
        assert_eq!(c.fetches, 2, "a new run reopens the window");
        assert_eq!(c.l1i_misses, 1, "but the I-cache stayed warm");
    }

    #[test]
    fn is_a_demand_driven_component() {
        let f = front();
        assert_eq!(f.name(), "frontend");
        assert_eq!(f.next_tick(), None);
    }
}
