//! The discrete-event execution kernel.
//!
//! Everything that owns simulated time is a [`Component`]: it reports when
//! it next wants to run ([`Component::next_tick`]) and advances its state
//! when the kernel calls [`Component::tick`]. An [`EventScheduler`] orders
//! wake-ups in a min-heap keyed by `(base-cycle, sequence)`: the sequence
//! number is assigned at insertion, so components scheduled for the *same*
//! cycle run in FIFO order — the deterministic tie-break the bit-identical
//! counters guarantee rests on. [`ClockDivider`] maps a component's local
//! ticks onto the base clock so cores, buses and devices can run at
//! divided rates.
//!
//! The paper-machine configurations are a single active chain (one core
//! driving a passive front end and memory hierarchy), and
//! [`crate::Machine`] collapses that case to direct dispatch — the event
//! heap never runs on the hot path unless a configuration actually needs
//! interleaving (see [`KernelMode`]). The full scheduler is what
//! multi-core, DMA and timer components plug into.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a component within one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

/// Which execution path [`crate::Machine::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Pick the fastest path that is exact for the configuration:
    /// single-active-component graphs — all three paper machines — get
    /// block-at-a-time dispatch ([`KernelMode::Block`]), anything
    /// multi-chain falls back to the event scheduler. This is the
    /// default; the `BIASLAB_EXEC` (preferred) or `BIASLAB_KERNEL`
    /// environment variable (`block`/`collapsed`/`event`) overrides it
    /// process-wide.
    #[default]
    Auto,
    /// Always use the collapsed per-instruction direct-dispatch loop (the
    /// pre-block-cache fast path, kept as a differential reference).
    Collapsed,
    /// Always drive execution through the event scheduler, even for a
    /// single-component chain. Slower, but exercises exactly the ordering
    /// the multi-component configurations rely on; the differential tests
    /// assert it produces bit-identical counters.
    Event,
    /// Always use basic-block dispatch through the decoded trace cache
    /// ([`crate::block::BlockCache`]): blocks decode once and replay
    /// precomputed summaries at block edges, with bit-identical counters
    /// (pinned by `tests/block_differential.rs` and the golden rows).
    Block,
}

impl KernelMode {
    /// The process-wide mode from `BIASLAB_EXEC` (or, failing that,
    /// `BIASLAB_KERNEL`), read once. Unset or unrecognized values mean
    /// [`KernelMode::Auto`].
    #[must_use]
    pub fn from_env() -> KernelMode {
        static MODE: std::sync::OnceLock<KernelMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| {
            let var = std::env::var("BIASLAB_EXEC").or_else(|_| std::env::var("BIASLAB_KERNEL"));
            match var.as_deref() {
                Ok("event") => KernelMode::Event,
                Ok("collapsed") | Ok("fast") => KernelMode::Collapsed,
                Ok("block") => KernelMode::Block,
                _ => KernelMode::Auto,
            }
        })
    }
}

/// A part of the simulated system that evolves over time.
///
/// Passive structures (caches, TLBs, predictors) are consulted through
/// their owning component's ports and never self-schedule; anything with
/// autonomous behavior (a core retiring instructions, a timer, a DMA
/// engine) returns `Some(cycle)` from [`Component::next_tick`] and is
/// driven by the scheduler.
pub trait Component {
    /// Stable display name (for traces and error messages).
    fn name(&self) -> &'static str;

    /// The next base cycle at which this component wants to run, or `None`
    /// while it is idle (purely demand-driven).
    fn next_tick(&self) -> Option<u64>;

    /// Advances the component to `now`. Returns the next base cycle it
    /// wants to run at (`None` to go idle). `now` is guaranteed
    /// non-decreasing across calls.
    fn tick(&mut self, now: u64) -> Option<u64>;
}

/// A min-heap of component wake-ups with deterministic FIFO tie-breaking.
///
/// Pops come out ordered by `(time, insertion sequence)`: two events at the
/// same cycle pop in the order they were scheduled, independent of heap
/// internals — the property the kernel's determinism guarantee rests on
/// (and the one the property tests pin).
#[derive(Debug, Clone, Default)]
pub struct EventScheduler {
    heap: BinaryHeap<Reverse<(u64, u64, ComponentId)>>,
    seq: u64,
    now: u64,
}

impl EventScheduler {
    /// An empty scheduler at cycle 0.
    #[must_use]
    pub fn new() -> EventScheduler {
        EventScheduler::default()
    }

    /// The current base cycle (the time of the last popped event).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `component` to run at base cycle `time`. Scheduling in
    /// the past is clamped to `now` (events never travel backwards).
    pub fn schedule(&mut self, time: u64, component: ComponentId) {
        let at = time.max(self.now);
        self.heap.push(Reverse((at, self.seq, component)));
        self.seq += 1;
    }

    /// The time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(u64, ComponentId)> {
        let Reverse((t, _, id)) = self.heap.pop()?;
        debug_assert!(t >= self.now, "event heap went backwards");
        self.now = t;
        Some((t, id))
    }
}

/// A component's clock relationship to the base clock: the component
/// advances one local tick every `divisor` base cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDivider {
    divisor: u64,
}

impl ClockDivider {
    /// A divider; `divisor` 0 is treated as 1 (the base clock itself).
    #[must_use]
    pub fn new(divisor: u64) -> ClockDivider {
        ClockDivider {
            divisor: divisor.max(1),
        }
    }

    /// The configured divisor.
    #[must_use]
    pub fn divisor(&self) -> u64 {
        self.divisor
    }

    /// Base cycles spanned by `local` component ticks (saturating: a
    /// schedule beyond `u64::MAX` pins to the end of time rather than
    /// wrapping into the past).
    #[must_use]
    pub fn base_ticks(&self, local: u64) -> u64 {
        local.saturating_mul(self.divisor)
    }

    /// The first clock edge strictly after `now` (saturating at
    /// `u64::MAX`). Edges are the base cycles divisible by the divisor.
    #[must_use]
    pub fn next_edge(&self, now: u64) -> u64 {
        let next = (now / self.divisor).saturating_add(1);
        next.saturating_mul(self.divisor)
    }

    /// Local ticks completed after `base` base cycles.
    #[must_use]
    pub fn local_ticks(&self, base: u64) -> u64 {
        base / self.divisor
    }
}

/// Drives a set of [`Component`]s until every one is idle or `limit` base
/// cycles have elapsed. Returns the final base cycle.
///
/// This is the generic multi-component loop (what future core/bus/device
/// graphs run under); [`crate::Machine`] inlines the same pop/tick/push
/// protocol over its concrete components so the instruction engine can
/// split-borrow its front end and memory hierarchy.
pub fn run_components(components: &mut [&mut dyn Component], limit: u64) -> u64 {
    let mut sched = EventScheduler::new();
    for (i, c) in components.iter().enumerate() {
        if let Some(t) = c.next_tick() {
            sched.schedule(t, ComponentId(i as u32));
        }
    }
    while let Some((now, id)) = sched.pop() {
        if now > limit {
            return now;
        }
        let comp = &mut components[id.0 as usize];
        if let Some(next) = comp.tick(now) {
            sched.schedule(next, id);
        }
    }
    sched.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_time_events_pop_in_insertion_order() {
        let mut s = EventScheduler::new();
        for id in 0..16u32 {
            s.schedule(5, ComponentId(id));
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop()).map(|(_, id)| id.0).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn pops_are_time_ordered_and_stable() {
        let mut s = EventScheduler::new();
        s.schedule(10, ComponentId(0));
        s.schedule(3, ComponentId(1));
        s.schedule(10, ComponentId(2));
        s.schedule(3, ComponentId(3));
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| s.pop())
            .map(|(t, id)| (t, id.0))
            .collect();
        assert_eq!(order, vec![(3, 1), (3, 3), (10, 0), (10, 2)]);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut s = EventScheduler::new();
        s.schedule(100, ComponentId(0));
        assert_eq!(s.pop(), Some((100, ComponentId(0))));
        s.schedule(7, ComponentId(1)); // in the past: clamps to 100
        assert_eq!(s.pop(), Some((100, ComponentId(1))));
        assert_eq!(s.now(), 100);
    }

    #[test]
    fn divider_maps_local_ticks_to_base_cycles() {
        let d = ClockDivider::new(3);
        assert_eq!(d.base_ticks(5), 15);
        assert_eq!(d.local_ticks(15), 5);
        assert_eq!(d.local_ticks(17), 5);
        assert_eq!(d.next_edge(0), 3);
        assert_eq!(d.next_edge(3), 6);
        assert_eq!(d.next_edge(4), 6);
    }

    #[test]
    fn divider_saturates_at_wrap_boundaries() {
        let d = ClockDivider::new(4);
        // Near the end of time the next edge saturates instead of wrapping
        // into the past (which would livelock the scheduler).
        assert_eq!(d.next_edge(u64::MAX), u64::MAX);
        assert_eq!(d.next_edge(u64::MAX - 3), u64::MAX);
        assert_eq!(d.base_ticks(u64::MAX / 2), u64::MAX);
        // A unit divider is the base clock.
        let unit = ClockDivider::new(0);
        assert_eq!(unit.divisor(), 1);
        assert_eq!(unit.next_edge(41), 42);
        assert_eq!(unit.next_edge(u64::MAX), u64::MAX);
    }

    struct Counter {
        name: &'static str,
        period: u64,
        ticks: Vec<u64>,
        until: u64,
    }

    impl Component for Counter {
        fn name(&self) -> &'static str {
            self.name
        }
        fn next_tick(&self) -> Option<u64> {
            Some(0)
        }
        fn tick(&mut self, now: u64) -> Option<u64> {
            self.ticks.push(now);
            (now < self.until).then(|| now + self.period)
        }
    }

    #[test]
    fn run_components_interleaves_deterministically() {
        let mut fast = Counter {
            name: "fast",
            period: 2,
            ticks: Vec::new(),
            until: 8,
        };
        let mut slow = Counter {
            name: "slow",
            period: 3,
            ticks: Vec::new(),
            until: 8,
        };
        let end = run_components(&mut [&mut fast, &mut slow], 100);
        assert_eq!(fast.ticks, vec![0, 2, 4, 6, 8]);
        assert_eq!(slow.ticks, vec![0, 3, 6, 9]);
        assert_eq!(end, 9);
        assert_eq!(fast.name(), "fast");
    }

    #[test]
    fn run_components_respects_the_cycle_limit() {
        let mut c = Counter {
            name: "c",
            period: 10,
            ticks: Vec::new(),
            until: u64::MAX,
        };
        let end = run_components(&mut [&mut c], 35);
        // Ticks at 0, 10, 20, 30; the event at 40 exceeds the limit.
        assert_eq!(c.ticks, vec![0, 10, 20, 30]);
        assert_eq!(end, 40);
    }
}
