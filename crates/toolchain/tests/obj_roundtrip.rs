//! Property tests: the object-file binary format round-trips arbitrary
//! well-formed objects and rejects corrupted ones without panicking.

use biaslab_isa::{AluOp, Cond, Inst, Reg, Width};
use biaslab_toolchain::obj::{ObjFormatError, ObjectFile, Reloc, RelocKind};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::r)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Inst::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2
        }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Inst::AluImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rd, base, offset)| Inst::Load {
            width: Width::B8,
            rd,
            base,
            offset
        }),
        (arb_reg(), arb_reg(), (-1000i32..1000)).prop_map(|(rs1, rs2, units)| Inst::Branch {
            cond: Cond::Ne,
            rs1,
            rs2,
            offset: units * 4
        }),
        (arb_reg(), (-1000i32..1000)).prop_map(|(rd, units)| Inst::Jal {
            rd,
            offset: units * 4
        }),
        Just(Inst::Halt),
        Just(Inst::Nop),
    ]
}

fn arb_symbol() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,24}"
}

fn arb_reloc(code_len: usize) -> impl Strategy<Value = Reloc> {
    (0..code_len.max(1), arb_symbol(), any::<i32>(), 0u8..3).prop_map(
        |(at, symbol, addend, kind)| {
            let kind = match kind {
                0 => RelocKind::Call { symbol },
                1 => RelocKind::GpAdd { symbol, addend },
                _ => RelocKind::AbsAddr { symbol, addend },
            };
            Reloc { at, kind }
        },
    )
}

fn arb_object() -> impl Strategy<Value = ObjectFile> {
    (
        arb_symbol(),
        proptest::collection::vec(arb_inst(), 1..64),
        0u32..4,
    )
        .prop_flat_map(|(symbol, code, align_pow)| {
            let len = code.len();
            proptest::collection::vec(arb_reloc(len), 0..6).prop_map(move |relocs| ObjectFile {
                symbol: symbol.clone(),
                code: code.clone(),
                align: 1 << (align_pow + 2),
                relocs,
            })
        })
}

proptest! {
    #[test]
    fn serialization_roundtrips(obj in arb_object()) {
        let bytes = obj.to_bytes();
        let back = ObjectFile::from_bytes(bytes).expect("well-formed object parses");
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn truncation_never_panics(obj in arb_object(), cut in any::<prop::sample::Index>()) {
        let full = obj.to_bytes();
        let len = cut.index(full.len());
        match ObjectFile::from_bytes(full.slice(0..len)) {
            Ok(parsed) => {
                // Only a cut at the very end can still parse — and then it
                // must equal the original.
                prop_assert_eq!(parsed, obj);
            }
            Err(e) => {
                prop_assert!(matches!(
                    e,
                    ObjFormatError::Truncated | ObjFormatError::BadMagic(_)
                ));
            }
        }
    }

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ObjectFile::from_bytes(Bytes::from(data));
    }

    #[test]
    fn single_byte_corruption_is_detected_or_harmless(
        obj in arb_object(),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut raw = obj.to_bytes().to_vec();
        let i = pos.index(raw.len());
        raw[i] ^= flip;
        // Must never panic; may parse to something different or error.
        let _ = ObjectFile::from_bytes(Bytes::from(raw));
    }
}
