//! Sparse paged memory, shared by the IR interpreter, the loader and the
//! simulator.

use std::collections::HashMap;

use crate::layout::PAGE_SIZE;

/// A sparse byte-addressable memory backed by 4 KiB pages.
///
/// Reads of unmapped memory return zero (pages are demand-zeroed, like
/// anonymous mappings); writes allocate the page. Multi-byte accesses may
/// straddle page boundaries.
///
/// # Examples
///
/// ```
/// use biaslab_toolchain::mem::PagedMem;
///
/// let mut mem = PagedMem::new();
/// mem.write_u64(0x1000, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u64(0x1000), 0xDEAD_BEEF);
/// assert_eq!(mem.read_u64(0x2000), 0); // demand-zeroed
/// ```
#[derive(Debug, Clone, Default)]
pub struct PagedMem {
    pages: HashMap<u32, Box<[u8]>>,
}

impl PagedMem {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> PagedMem {
        PagedMem {
            pages: HashMap::new(),
        }
    }

    /// Number of pages currently mapped.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u32) -> Option<&[u8]> {
        self.pages.get(&(addr / PAGE_SIZE)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u32) -> &mut Box<[u8]> {
        self.pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr % PAGE_SIZE) as usize] = value;
    }

    /// Reads `n <= 8` little-endian bytes, zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    #[must_use]
    pub fn read_le(&self, addr: u32, n: u32) -> u64 {
        assert!(n <= 8);
        let mut out = 0u64;
        for i in 0..n {
            out |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        out
    }

    /// Writes the low `n <= 8` bytes of `value`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn write_le(&mut self, addr: u32, n: u32, value: u64) {
        assert!(n <= 8);
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 32-bit little-endian word.
    #[must_use]
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Writes a 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write_le(addr, 4, u64::from(value));
    }

    /// Reads a 64-bit little-endian word.
    #[must_use]
    pub fn read_u64(&self, addr: u32) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: u32, value: u64) {
        self.write_le(addr, 8, value);
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: u32) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_zero() {
        let mem = PagedMem::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u64(0xFFFF_FFF0), 0);
        assert_eq!(mem.mapped_pages(), 0);
    }

    #[test]
    fn roundtrip_widths() {
        let mut mem = PagedMem::new();
        mem.write_u8(10, 0xAB);
        assert_eq!(mem.read_u8(10), 0xAB);
        mem.write_u32(100, 0x1234_5678);
        assert_eq!(mem.read_u32(100), 0x1234_5678);
        mem.write_u64(200, 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read_u64(200), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = PagedMem::new();
        mem.write_u32(0, 0x0403_0201);
        assert_eq!(mem.read_u8(0), 1);
        assert_eq!(mem.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = PagedMem::new();
        let addr = PAGE_SIZE - 4;
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn bulk_bytes() {
        let mut mem = PagedMem::new();
        mem.write_bytes(0x500, b"hello");
        assert_eq!(mem.read_bytes(0x500, 5), b"hello");
    }

    #[test]
    fn partial_width_write_preserves_neighbors() {
        let mut mem = PagedMem::new();
        mem.write_u64(0, u64::MAX);
        mem.write_u8(3, 0);
        assert_eq!(mem.read_u64(0), u64::MAX & !(0xFF << 24));
    }
}
