//! Sparse paged memory, shared by the IR interpreter, the loader and the
//! simulator.

use crate::layout::PAGE_SIZE;

/// log2 of [`PAGE_SIZE`]: the shift that turns an address into a page
/// number on the flat-table fast path.
const PAGE_SHIFT: u32 = PAGE_SIZE.trailing_zeros();
const OFFSET_MASK: u32 = PAGE_SIZE - 1;

/// Pages per second-level chunk. The root table then has at most
/// `2^32 / PAGE_SIZE / CHUNK_PAGES = 1024` entries, so creating a process
/// image costs a few kilobytes however high its stack sits — growing a
/// single-level table up to the stack pages (just under `0x7FFF_0000`)
/// costs a ~8 MiB zeroed allocation per load, which dominated sweep time.
const CHUNK_PAGES: usize = 1024;
const CHUNK_SHIFT: u32 = CHUNK_PAGES.trailing_zeros();
const CHUNK_MASK: usize = CHUNK_PAGES - 1;

type Page = Box<[u8]>;
/// A second-level table of `CHUNK_PAGES` page slots.
type Chunk = Box<[Option<Page>]>;

/// A sparse byte-addressable memory backed by 4 KiB pages.
///
/// Reads of unmapped memory return zero (pages are demand-zeroed, like
/// anonymous mappings); writes allocate the page. Multi-byte accesses may
/// straddle page boundaries.
///
/// Internally the pages live in a table indexed by the flat page number
/// `addr >> PAGE_SHIFT` (two levels of plain vectors, so creating a
/// process image stays cheap however high its stack sits), which makes a
/// page lookup a shift, a mask and two indexed loads — no hashing on the
/// simulator's load/store path. A last-page cache short-circuits the
/// mapped-check for the common case of consecutive accesses landing on
/// one page, and the multi-byte accessors ([`PagedMem::read_le`],
/// [`PagedMem::write_le`]) resolve the page once per access instead of
/// once per byte whenever the access does not cross a page boundary.
///
/// # Examples
///
/// ```
/// use biaslab_toolchain::mem::PagedMem;
///
/// let mut mem = PagedMem::new();
/// mem.write_u64(0x1000, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u64(0x1000), 0xDEAD_BEEF);
/// assert_eq!(mem.read_u64(0x2000), 0); // demand-zeroed
/// ```
#[derive(Debug, Clone)]
pub struct PagedMem {
    /// `chunks[page_number >> CHUNK_SHIFT][page_number & CHUNK_MASK]` —
    /// `None` until first written.
    chunks: Vec<Option<Chunk>>,
    /// Page number of the most recently touched *mapped* page, or
    /// `usize::MAX` when nothing is mapped yet. Invariant: when not
    /// `usize::MAX`, the page it names is mapped.
    last_page: usize,
    mapped: usize,
}

impl Default for PagedMem {
    fn default() -> PagedMem {
        PagedMem::new()
    }
}

impl PagedMem {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> PagedMem {
        PagedMem {
            chunks: Vec::new(),
            last_page: usize::MAX,
            mapped: 0,
        }
    }

    /// Number of pages currently mapped.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8]> {
        let pno = (addr >> PAGE_SHIFT) as usize;
        // The last-page cache only ever names a mapped page, so a hit
        // skips the two mapped-checks on the way down.
        if pno == self.last_page {
            return self.chunks[pno >> CHUNK_SHIFT].as_ref().expect("cached")[pno & CHUNK_MASK]
                .as_deref();
        }
        self.chunks.get(pno >> CHUNK_SHIFT)?.as_ref()?[pno & CHUNK_MASK].as_deref()
    }

    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut [u8] {
        let pno = (addr >> PAGE_SHIFT) as usize;
        if pno != self.last_page && !self.is_mapped(pno) {
            self.map_page(pno);
        }
        self.last_page = pno;
        self.chunks[pno >> CHUNK_SHIFT]
            .as_mut()
            .expect("chunk mapped above")[pno & CHUNK_MASK]
            .as_deref_mut()
            .expect("page mapped above")
    }

    fn is_mapped(&self, pno: usize) -> bool {
        self.chunks
            .get(pno >> CHUNK_SHIFT)
            .and_then(Option::as_ref)
            .is_some_and(|c| c[pno & CHUNK_MASK].is_some())
    }

    #[cold]
    fn map_page(&mut self, pno: usize) {
        let ci = pno >> CHUNK_SHIFT;
        if ci >= self.chunks.len() {
            self.chunks.resize_with(ci + 1, || None);
        }
        let chunk = self.chunks[ci]
            .get_or_insert_with(|| (0..CHUNK_PAGES).map(|_| None).collect::<Vec<_>>().into());
        chunk[pno & CHUNK_MASK] = Some(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
        self.mapped += 1;
    }

    /// Reads one byte.
    #[inline]
    #[must_use]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads `n <= 8` little-endian bytes, zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    #[inline]
    #[must_use]
    pub fn read_le(&self, addr: u32, n: u32) -> u64 {
        assert!(n <= 8);
        let off = (addr & OFFSET_MASK) as usize;
        if off + n as usize <= PAGE_SIZE as usize {
            // Within one page: resolve the page once for all bytes, and
            // turn the common power-of-two widths into single (unaligned)
            // loads rather than a byte loop.
            let Some(p) = self.page(addr) else { return 0 };
            return match n {
                1 => u64::from(p[off]),
                4 => u64::from(u32::from_le_bytes(
                    p[off..off + 4].try_into().expect("4 bytes"),
                )),
                8 => u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes")),
                _ => {
                    let mut out = 0u64;
                    for (i, &b) in p[off..off + n as usize].iter().enumerate() {
                        out |= u64::from(b) << (8 * i);
                    }
                    out
                }
            };
        }
        let mut out = 0u64;
        for i in 0..n {
            out |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        out
    }

    /// Writes the low `n <= 8` bytes of `value`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    #[inline]
    pub fn write_le(&mut self, addr: u32, n: u32, value: u64) {
        assert!(n <= 8);
        let off = (addr & OFFSET_MASK) as usize;
        if off + n as usize <= PAGE_SIZE as usize {
            let p = self.page_mut(addr);
            match n {
                1 => p[off] = value as u8,
                4 => p[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
                8 => p[off..off + 8].copy_from_slice(&value.to_le_bytes()),
                _ => {
                    for (i, b) in p[off..off + n as usize].iter_mut().enumerate() {
                        *b = (value >> (8 * i)) as u8;
                    }
                }
            }
            return;
        }
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 32-bit little-endian word.
    #[inline]
    #[must_use]
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Writes a 32-bit little-endian word.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write_le(addr, 4, u64::from(value));
    }

    /// Reads a 64-bit little-endian word.
    #[inline]
    #[must_use]
    pub fn read_u64(&self, addr: u32) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    #[inline]
    pub fn write_u64(&mut self, addr: u32, value: u64) {
        self.write_le(addr, 8, value);
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let mut a = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (a & OFFSET_MASK) as usize;
            let n = rest.len().min(PAGE_SIZE as usize - off);
            self.page_mut(a)[off..off + n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            a = a.wrapping_add(n as u32);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: u32) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_zero() {
        let mem = PagedMem::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u64(0xFFFF_FFF0), 0);
        assert_eq!(mem.mapped_pages(), 0);
    }

    #[test]
    fn roundtrip_widths() {
        let mut mem = PagedMem::new();
        mem.write_u8(10, 0xAB);
        assert_eq!(mem.read_u8(10), 0xAB);
        mem.write_u32(100, 0x1234_5678);
        assert_eq!(mem.read_u32(100), 0x1234_5678);
        mem.write_u64(200, 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read_u64(200), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = PagedMem::new();
        mem.write_u32(0, 0x0403_0201);
        assert_eq!(mem.read_u8(0), 1);
        assert_eq!(mem.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = PagedMem::new();
        let addr = PAGE_SIZE - 4;
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn bulk_bytes() {
        let mut mem = PagedMem::new();
        mem.write_bytes(0x500, b"hello");
        assert_eq!(mem.read_bytes(0x500, 5), b"hello");
    }

    #[test]
    fn bulk_bytes_across_page_boundary() {
        let mut mem = PagedMem::new();
        let data: Vec<u8> = (0..=255).collect();
        let addr = 3 * PAGE_SIZE - 100;
        mem.write_bytes(addr, &data);
        assert_eq!(mem.read_bytes(addr, 256), data);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn partial_width_write_preserves_neighbors() {
        let mut mem = PagedMem::new();
        mem.write_u64(0, u64::MAX);
        mem.write_u8(3, 0);
        assert_eq!(mem.read_u64(0), !(0xFF_u64 << 24));
    }

    #[test]
    fn sparse_pages_do_not_allocate_between() {
        let mut mem = PagedMem::new();
        mem.write_u8(0, 1);
        mem.write_u8(100 * PAGE_SIZE, 2);
        assert_eq!(mem.mapped_pages(), 2);
        assert_eq!(mem.read_u8(50 * PAGE_SIZE), 0);
    }

    #[test]
    fn high_addresses_work() {
        // The stack lives just under 0x7FFF_0000; make sure the flat table
        // handles page numbers that large (and wrapping reads above them).
        let mut mem = PagedMem::new();
        mem.write_u64(0x7FFE_FFF8, 0xABCD);
        assert_eq!(mem.read_u64(0x7FFE_FFF8), 0xABCD);
    }
}
