//! The process address-space layout contract shared by the linker, the
//! loader and the simulator.
//!
//! The layout mirrors a classic UNIX process image, because the paper's
//! environment-size bias depends on it: environment strings are copied to
//! the *top of the stack* before the stack proper begins, so the initial
//! stack pointer — and with it the address of every stack frame and
//! stack-allocated buffer — moves down as the environment grows.
//!
//! ```text
//! 0x7FFF_0000  STACK_TOP   ── environment block, argv, then frames grow down
//! 0x1000_0000  DATA_BASE   ── globals; gp = DATA_BASE + 0x8000
//! 0x0040_0000  TEXT_BASE   ── code, laid out in link order
//! ```

/// Base address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;

/// Maximum size of the text segment in bytes.
pub const TEXT_MAX: u32 = 4 << 20;

/// Base address of the data segment (globals).
pub const DATA_BASE: u32 = 0x1000_0000;

/// Maximum size of the data segment in bytes. Globals within ±32 KiB of
/// `gp` can be addressed gp-relative; the rest take a two-instruction
/// absolute-address sequence (see `RelocKind::AbsAddr`).
pub const DATA_MAX: u32 = 4 << 20;

/// The global pointer: centred in the data segment so that signed 16-bit
/// offsets reach all of it.
pub const GP_VALUE: u32 = DATA_BASE + 0x8000;

/// The address one past the highest stack byte. The environment block is
/// copied immediately below this address.
pub const STACK_TOP: u32 = 0x7FFF_0000;

/// Maximum stack size in bytes (environment block included).
pub const STACK_MAX: u32 = 1 << 20;

/// Page size used by the TLB model and the loader.
pub const PAGE_SIZE: u32 = 4096;

/// Stack pointer alignment required by the ABI at every call boundary.
pub const STACK_ALIGN: u32 = 16;

/// Aligns `addr` downward to `align` (which must be a power of two).
#[must_use]
pub fn align_down(addr: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    addr & !(align - 1)
}

/// Aligns `addr` upward to `align` (which must be a power of two).
#[must_use]
pub fn align_up(addr: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    addr.checked_add(align - 1).expect("address overflow") & !(align - 1)
}

/// Assigns each global its absolute address, packing them in declaration
/// order from [`DATA_BASE`] with their requested alignments.
///
/// This single function is the layout contract between the linker and the
/// IR interpreter: both call it, so global address arithmetic agrees
/// between reference semantics and compiled code.
///
/// # Panics
///
/// Panics if the packed globals exceed [`DATA_MAX`].
#[must_use]
pub fn layout_globals(globals: &[crate::ir::Global]) -> Vec<u32> {
    let mut addr = DATA_BASE;
    let mut out = Vec::with_capacity(globals.len());
    for g in globals {
        addr = align_up(addr, g.align);
        out.push(addr);
        addr += g.size;
    }
    assert!(
        addr - DATA_BASE <= DATA_MAX,
        "globals ({} bytes) exceed the {} byte data segment",
        addr - DATA_BASE,
        DATA_MAX
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        assert_eq!(align_down(0x1234, 16), 0x1230);
        assert_eq!(align_down(0x1230, 16), 0x1230);
        assert_eq!(align_up(0x1234, 16), 0x1240);
        assert_eq!(align_up(0x1240, 16), 0x1240);
        assert_eq!(align_up(0, 4096), 0);
        assert_eq!(align_down(4095, 4096), 0);
    }

    #[test]
    fn segments_do_not_overlap() {
        const { assert!(TEXT_BASE + TEXT_MAX <= DATA_BASE) };
        const { assert!(DATA_BASE + DATA_MAX <= STACK_TOP - STACK_MAX) };
        assert_eq!(GP_VALUE - DATA_BASE, 0x8000);
    }

    #[test]
    fn page_and_stack_alignment_are_powers_of_two() {
        assert!(PAGE_SIZE.is_power_of_two());
        assert!(STACK_ALIGN.is_power_of_two());
        assert_eq!(STACK_TOP % PAGE_SIZE, 0);
    }
}
