//! IR well-formedness checking.
//!
//! The verifier enforces the structural invariants every later stage
//! (optimizer, interpreter, code generator) relies on, most importantly the
//! block-locality of [`Val`]s: each value is defined exactly once, before
//! use, within a single block.

use std::collections::BTreeSet;
use std::fmt;

use crate::dataflow::{val_events, ValEvent, ValEventKind};
use crate::ir::{BlockId, Function, Module, Op, Terminator};

/// A structural defect found by [`verify_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the defect was found, if any.
    pub function: Option<String>,
    /// Block in which the defect was found, if any (also rendered inside
    /// `message`; kept separate as a sort key for [`verify_module_all`]).
    pub block: Option<u32>,
    /// Human-readable description of the defect.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "in function `{name}`: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(function: &Function, block: Option<u32>, message: String) -> VerifyError {
    VerifyError {
        function: Some(function.name.clone()),
        block,
        message,
    }
}

fn module_err(message: String) -> VerifyError {
    VerifyError {
        function: None,
        block: None,
        message,
    }
}

/// Verifies every function and the module-level references.
///
/// # Errors
///
/// Returns the first defect found, in deterministic check order
/// (module-level checks first, then each function in module order).
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    match module_errors(module).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Every structural defect in the module, sorted by function name, then
/// block, then message (module-level defects first).
///
/// [`verify_module`] stops at the first defect in check order, which is
/// convenient for build pipelines but useless for snapshots: analyzer
/// golden tests and diagnostics want the complete, stably-ordered list.
#[must_use]
pub fn verify_module_all(module: &Module) -> Vec<VerifyError> {
    let mut errors = module_errors(module);
    errors.sort_by(|a, b| {
        (&a.function, a.block, &a.message).cmp(&(&b.function, b.block, &b.message))
    });
    errors
}

/// Collects every defect, in check order.
fn module_errors(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let mut names = BTreeSet::new();
    for g in &module.globals {
        if !names.insert(&g.name) {
            errors.push(module_err(format!("duplicate global name `{}`", g.name)));
        }
        if !g.align.is_power_of_two() {
            errors.push(module_err(format!(
                "global `{}` alignment {} is not a power of two",
                g.name, g.align
            )));
        }
        if g.init.len() as u32 > g.size {
            errors.push(module_err(format!(
                "global `{}` initializer exceeds its size",
                g.name
            )));
        }
    }
    let mut fnames = BTreeSet::new();
    for f in &module.functions {
        if !fnames.insert(&f.name) {
            errors.push(module_err(format!("duplicate function name `{}`", f.name)));
        }
    }
    for f in &module.functions {
        function_errors(module, f, &mut errors);
    }
    errors
}

/// Verifies a single function.
///
/// # Errors
///
/// Returns the first defect found, in deterministic check order.
pub fn verify_function(module: &Module, f: &Function) -> Result<(), VerifyError> {
    let mut errors = Vec::new();
    function_errors(module, f, &mut errors);
    match errors.into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn function_errors(module: &Module, f: &Function, errors: &mut Vec<VerifyError>) {
    if f.blocks.is_empty() {
        errors.push(err(f, None, "function has no blocks".into()));
    }
    if f.param_count > 6 {
        errors.push(err(
            f,
            None,
            format!("{} parameters exceed the ABI limit of 6", f.param_count),
        ));
    }
    if (f.param_count as usize) > f.locals.len() {
        errors.push(err(f, None, "fewer locals than parameters".into()));
    }
    for (i, slot) in f.locals.iter().enumerate() {
        if !slot.align.is_power_of_two() {
            errors.push(err(
                f,
                None,
                format!("local {i} alignment {} not a power of two", slot.align),
            ));
        }
        if slot.size == 0 {
            errors.push(err(f, None, format!("local {i} has zero size")));
        }
    }

    // The val-discipline defects come from the shared block-local
    // reaching-definitions scan in `crate::dataflow`; per-op structural
    // checks (`verify_op`) interleave between each op's use defects and
    // its def defects, which is exactly the event order `val_events`
    // produces.
    let events = val_events(f);
    let mut ev = events.iter().peekable();
    let mut drain = |errors: &mut Vec<VerifyError>, bi: u32, oi: Option<u32>, uses_only: bool| {
        while let Some(e) = ev.peek() {
            let ValEvent { block, op, kind } = e;
            if *block != bi || *op != oi {
                break;
            }
            if uses_only && !matches!(kind, ValEventKind::UseBeforeDef(_)) {
                break;
            }
            let bid = BlockId(bi);
            let message = match (kind, oi) {
                (ValEventKind::UseBeforeDef(v), Some(oi)) => {
                    format!("{bid} op {oi}: {v} used before definition in its block")
                }
                (ValEventKind::UseBeforeDef(v), None) => {
                    format!("{bid} terminator: {v} used before definition")
                }
                (ValEventKind::DefinedTwice(v), Some(oi)) => {
                    format!("{bid} op {oi}: {v} defined twice in block")
                }
                (ValEventKind::CrossBlockDef(v), Some(oi)) => {
                    format!("{bid} op {oi}: {v} defined in more than one block")
                }
                (ValEventKind::AboveNextVal(v), Some(oi)) => {
                    format!("{bid} op {oi}: {v} not below next_val {}", f.next_val)
                }
                // Def events only arise from ops, never terminators.
                (_, None) => unreachable!("def event on a terminator"),
            };
            errors.push(err(f, Some(bi), message));
            ev.next();
        }
    };
    for (bi, block) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let b = Some(bi as u32);
        for (oi, op) in block.ops.iter().enumerate() {
            drain(errors, bi as u32, Some(oi as u32), true);
            if let Err(m) = self::verify_op(module, f, op) {
                errors.push(err(f, b, format!("{bid} op {oi}: {m}")));
            }
            drain(errors, bi as u32, Some(oi as u32), false);
        }
        drain(errors, bi as u32, None, false);
        for succ in block.term.successors() {
            if succ.0 as usize >= f.blocks.len() {
                errors.push(err(
                    f,
                    b,
                    format!("{bid} terminator: successor {succ} out of range"),
                ));
            }
        }
        if let Terminator::Ret { value } = &block.term {
            if value.is_some() != f.returns_value {
                errors.push(err(
                    f,
                    b,
                    format!(
                        "{bid}: return {} value but function {}",
                        if value.is_some() {
                            "carries a"
                        } else {
                            "lacks a"
                        },
                        if f.returns_value {
                            "returns one"
                        } else {
                            "returns none"
                        },
                    ),
                ));
            }
        }
    }

    for (li, l) in f.loops.iter().enumerate() {
        if l.header.0 as usize >= f.blocks.len() || l.body.0 as usize >= f.blocks.len() {
            errors.push(err(f, None, format!("loop {li}: block out of range")));
        }
        if l.induction.0 as usize >= f.locals.len() {
            errors.push(err(
                f,
                None,
                format!("loop {li}: induction local out of range"),
            ));
        }
    }
}

fn verify_op(module: &Module, f: &Function, op: &Op) -> Result<(), String> {
    match op {
        Op::LoadLocal { local, offset, .. } | Op::StoreLocal { local, offset, .. } => {
            let slot = f
                .locals
                .get(local.0 as usize)
                .ok_or_else(|| format!("local {} out of range", local.0))?;
            if offset % 8 != 0 {
                return Err(format!("local access offset {offset} not 8-aligned"));
            }
            if offset + 8 > slot.size {
                return Err(format!(
                    "local access at {offset} exceeds slot size {}",
                    slot.size
                ));
            }
        }
        Op::AddrLocal { local, .. } if local.0 as usize >= f.locals.len() => {
            return Err(format!("local {} out of range", local.0));
        }
        Op::AddrGlobal { global, .. } if global.0 as usize >= module.globals.len() => {
            return Err(format!("global {} out of range", global.0));
        }
        Op::Call { dst, func, args } => {
            let callee = module
                .functions
                .get(func.0 as usize)
                .ok_or_else(|| format!("callee {} out of range", func.0))?;
            if args.len() as u32 != callee.param_count {
                return Err(format!(
                    "call to `{}` passes {} args, expects {}",
                    callee.name,
                    args.len(),
                    callee.param_count
                ));
            }
            if dst.is_some() && !callee.returns_value {
                return Err(format!(
                    "call to `{}` uses a result it does not return",
                    callee.name
                ));
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use biaslab_isa::AluOp;

    use super::*;
    use crate::ir::{Block, LocalId, LocalSlot, Val};

    fn func(blocks: Vec<Block>, locals: Vec<LocalSlot>, next_val: u32) -> Function {
        Function {
            name: "t".into(),
            param_count: 0,
            returns_value: false,
            locals,
            blocks,
            loops: vec![],
            next_val,
        }
    }

    fn module_with(f: Function) -> Module {
        Module {
            functions: vec![f],
            globals: vec![],
        }
    }

    #[test]
    fn accepts_minimal_function() {
        let m = module_with(func(
            vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            0,
        ));
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_use_before_def() {
        let m = module_with(func(
            vec![Block {
                ops: vec![Op::Bin {
                    op: AluOp::Add,
                    dst: Val(1),
                    a: Val(0),
                    b: Val(0),
                }],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            2,
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("used before definition"), "{e}");
    }

    #[test]
    fn rejects_cross_block_value_use() {
        let m = module_with(func(
            vec![
                Block {
                    ops: vec![Op::Const {
                        dst: Val(0),
                        value: 1,
                    }],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    ops: vec![Op::Chk { src: Val(0) }],
                    term: Terminator::Ret { value: None },
                },
            ],
            vec![],
            1,
        ));
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_double_definition() {
        let m = module_with(func(
            vec![Block {
                ops: vec![
                    Op::Const {
                        dst: Val(0),
                        value: 1,
                    },
                    Op::Const {
                        dst: Val(0),
                        value: 2,
                    },
                ],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            1,
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("defined twice"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_successor() {
        let m = module_with(func(
            vec![Block {
                ops: vec![],
                term: Terminator::Jump(BlockId(5)),
            }],
            vec![],
            0,
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_local_access_past_slot() {
        let m = module_with(func(
            vec![Block {
                ops: vec![Op::LoadLocal {
                    dst: Val(0),
                    local: LocalId(0),
                    offset: 8,
                }],
                term: Terminator::Ret { value: None },
            }],
            vec![LocalSlot::scalar()],
            1,
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("exceeds slot size"), "{e}");
    }

    #[test]
    fn rejects_bad_call_arity() {
        let callee = Function {
            name: "callee".into(),
            param_count: 2,
            returns_value: false,
            locals: vec![LocalSlot::scalar(), LocalSlot::scalar()],
            blocks: vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            loops: vec![],
            next_val: 0,
        };
        let caller = func(
            vec![Block {
                ops: vec![Op::Call {
                    dst: None,
                    func: crate::ir::FuncId(0),
                    args: vec![],
                }],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            0,
        );
        let m = Module {
            functions: vec![callee, caller],
            globals: vec![],
        };
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("passes 0 args"), "{e}");
    }

    #[test]
    fn rejects_mismatched_return() {
        let mut f = func(
            vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            0,
        );
        f.returns_value = true;
        let e = verify_module(&module_with(f)).unwrap_err();
        assert!(e.to_string().contains("lacks a value"), "{e}");
    }

    #[test]
    fn all_errors_are_collected_and_sorted() {
        // Two broken functions, inserted in reverse-alphabetical order,
        // each with defects in two blocks: the full listing sorts by
        // (function, block, message) regardless of module order, while
        // `verify_module` still reports the first defect in check order.
        let broken = |name: &str| {
            let mut f = func(
                vec![
                    Block {
                        ops: vec![Op::Chk { src: Val(9) }],
                        term: Terminator::Jump(BlockId(1)),
                    },
                    Block {
                        ops: vec![],
                        term: Terminator::Jump(BlockId(7)),
                    },
                ],
                vec![],
                10,
            );
            f.name = name.into();
            f
        };
        let m = Module {
            functions: vec![broken("zeta"), broken("alpha")],
            globals: vec![crate::ir::Global::zeroed("g", 8), {
                let mut g = crate::ir::Global::zeroed("h", 8);
                g.align = 3;
                g
            }],
        };
        let all = verify_module_all(&m);
        assert_eq!(all.len(), 5);
        // Module-level defect first, then functions alphabetically with
        // ascending blocks.
        assert_eq!(all[0].function, None);
        assert!(all[0].message.contains("alignment 3"));
        assert_eq!(all[1].function.as_deref(), Some("alpha"));
        assert_eq!(all[1].block, Some(0));
        assert_eq!(all[2].function.as_deref(), Some("alpha"));
        assert_eq!(all[2].block, Some(1));
        assert_eq!(all[3].function.as_deref(), Some("zeta"));
        assert_eq!(all[4].function.as_deref(), Some("zeta"));
        // First-error semantics unchanged: module-level checks, then
        // `zeta` (module order), not sorted order.
        let first = verify_module(&m).unwrap_err();
        assert!(first.message.contains("alignment 3"), "{first}");
        // And the listing is stable across repeated runs.
        let again = verify_module_all(&m);
        assert_eq!(all, again);
    }

    #[test]
    fn dataflow_rewrite_pins_interleaved_error_order() {
        // One block exhibiting every val-discipline defect interleaved
        // with a structural (`verify_op`) defect: the dataflow-backed
        // walk must report, per op, uses -> structure -> defs, in the
        // same order the original hand-rolled walk did. Pinned verbatim.
        let f = func(
            vec![
                Block {
                    ops: vec![
                        // op 0: use-before-def AND an out-of-range local:
                        // the use defect must precede the structural one.
                        Op::StoreLocal {
                            local: LocalId(7),
                            offset: 0,
                            src: Val(5),
                        },
                        Op::Const {
                            dst: Val(0),
                            value: 1,
                        },
                        // op 2: double definition + above next_val.
                        Op::Const {
                            dst: Val(0),
                            value: 2,
                        },
                    ],
                    term: Terminator::Ret { value: None },
                },
                Block {
                    // Cross-block re-definition of v0.
                    ops: vec![Op::Const {
                        dst: Val(0),
                        value: 3,
                    }],
                    term: Terminator::Jump(BlockId(0)),
                },
            ],
            vec![],
            1,
        );
        let m = module_with(f);
        let mut errors = Vec::new();
        function_errors(&m, &m.functions[0], &mut errors);
        let messages: Vec<&str> = errors.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(
            messages,
            vec![
                "bb0 op 0: %5 used before definition in its block",
                "bb0 op 0: local 7 out of range",
                "bb0 op 2: %0 defined twice in block",
                "bb1 op 0: %0 defined in more than one block",
            ]
        );
        // And `verify_module` still surfaces the first of these.
        assert_eq!(
            verify_module(&m).unwrap_err().message,
            "bb0 op 0: %5 used before definition in its block"
        );
    }

    #[test]
    fn a_clean_module_collects_no_errors() {
        let m = module_with(func(
            vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            0,
        ));
        assert!(verify_module_all(&m).is_empty());
    }

    #[test]
    fn rejects_duplicate_globals() {
        let m = Module {
            functions: vec![],
            globals: vec![
                crate::ir::Global::zeroed("g", 8),
                crate::ir::Global::zeroed("g", 8),
            ],
        };
        assert!(verify_module(&m).is_err());
    }
}
