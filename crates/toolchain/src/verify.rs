//! IR well-formedness checking.
//!
//! The verifier enforces the structural invariants every later stage
//! (optimizer, interpreter, code generator) relies on, most importantly the
//! block-locality of [`Val`]s: each value is defined exactly once, before
//! use, within a single block.

use std::collections::HashSet;
use std::fmt;

use crate::ir::{BlockId, Function, Module, Op, Terminator, Val};

/// A structural defect found by [`verify_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the defect was found, if any.
    pub function: Option<String>,
    /// Human-readable description of the defect.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "in function `{name}`: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(function: &Function, message: String) -> VerifyError {
    VerifyError {
        function: Some(function.name.clone()),
        message,
    }
}

/// Verifies every function and the module-level references.
///
/// # Errors
///
/// Returns the first defect found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    let mut names = HashSet::new();
    for g in &module.globals {
        if !names.insert(&g.name) {
            return Err(VerifyError {
                function: None,
                message: format!("duplicate global name `{}`", g.name),
            });
        }
        if !g.align.is_power_of_two() {
            return Err(VerifyError {
                function: None,
                message: format!(
                    "global `{}` alignment {} is not a power of two",
                    g.name, g.align
                ),
            });
        }
        if g.init.len() as u32 > g.size {
            return Err(VerifyError {
                function: None,
                message: format!("global `{}` initializer exceeds its size", g.name),
            });
        }
    }
    let mut fnames = HashSet::new();
    for f in &module.functions {
        if !fnames.insert(&f.name) {
            return Err(VerifyError {
                function: None,
                message: format!("duplicate function name `{}`", f.name),
            });
        }
    }
    for f in &module.functions {
        verify_function(module, f)?;
    }
    Ok(())
}

/// Verifies a single function.
///
/// # Errors
///
/// Returns the first defect found.
pub fn verify_function(module: &Module, f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(f, "function has no blocks".into()));
    }
    if f.param_count > 6 {
        return Err(err(
            f,
            format!("{} parameters exceed the ABI limit of 6", f.param_count),
        ));
    }
    if (f.param_count as usize) > f.locals.len() {
        return Err(err(f, "fewer locals than parameters".into()));
    }
    for (i, slot) in f.locals.iter().enumerate() {
        if !slot.align.is_power_of_two() {
            return Err(err(
                f,
                format!("local {i} alignment {} not a power of two", slot.align),
            ));
        }
        if slot.size == 0 {
            return Err(err(f, format!("local {i} has zero size")));
        }
    }

    let mut defined_anywhere: HashSet<Val> = HashSet::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let mut defined: HashSet<Val> = HashSet::new();
        for (oi, op) in block.ops.iter().enumerate() {
            for used in op.uses() {
                if !defined.contains(&used) {
                    return Err(err(
                        f,
                        format!("{bid} op {oi}: {used} used before definition in its block"),
                    ));
                }
            }
            self::verify_op(module, f, op).map_err(|m| err(f, format!("{bid} op {oi}: {m}")))?;
            if let Some(dst) = op.def() {
                if !defined.insert(dst) {
                    return Err(err(
                        f,
                        format!("{bid} op {oi}: {dst} defined twice in block"),
                    ));
                }
                if !defined_anywhere.insert(dst) {
                    return Err(err(
                        f,
                        format!("{bid} op {oi}: {dst} defined in more than one block"),
                    ));
                }
                if dst.0 >= f.next_val {
                    return Err(err(
                        f,
                        format!("{bid} op {oi}: {dst} not below next_val {}", f.next_val),
                    ));
                }
            }
        }
        for used in block.term.uses() {
            if !defined.contains(&used) {
                return Err(err(
                    f,
                    format!("{bid} terminator: {used} used before definition"),
                ));
            }
        }
        for succ in block.term.successors() {
            if succ.0 as usize >= f.blocks.len() {
                return Err(err(
                    f,
                    format!("{bid} terminator: successor {succ} out of range"),
                ));
            }
        }
        if let Terminator::Ret { value } = &block.term {
            if value.is_some() != f.returns_value {
                return Err(err(
                    f,
                    format!(
                        "{bid}: return {} value but function {}",
                        if value.is_some() {
                            "carries a"
                        } else {
                            "lacks a"
                        },
                        if f.returns_value {
                            "returns one"
                        } else {
                            "returns none"
                        },
                    ),
                ));
            }
        }
    }

    for (li, l) in f.loops.iter().enumerate() {
        if l.header.0 as usize >= f.blocks.len() || l.body.0 as usize >= f.blocks.len() {
            return Err(err(f, format!("loop {li}: block out of range")));
        }
        if l.induction.0 as usize >= f.locals.len() {
            return Err(err(f, format!("loop {li}: induction local out of range")));
        }
    }
    Ok(())
}

fn verify_op(module: &Module, f: &Function, op: &Op) -> Result<(), String> {
    match op {
        Op::LoadLocal { local, offset, .. } | Op::StoreLocal { local, offset, .. } => {
            let slot = f
                .locals
                .get(local.0 as usize)
                .ok_or_else(|| format!("local {} out of range", local.0))?;
            if offset % 8 != 0 {
                return Err(format!("local access offset {offset} not 8-aligned"));
            }
            if offset + 8 > slot.size {
                return Err(format!(
                    "local access at {offset} exceeds slot size {}",
                    slot.size
                ));
            }
        }
        Op::AddrLocal { local, .. } if local.0 as usize >= f.locals.len() => {
            return Err(format!("local {} out of range", local.0));
        }
        Op::AddrGlobal { global, .. } if global.0 as usize >= module.globals.len() => {
            return Err(format!("global {} out of range", global.0));
        }
        Op::Call { dst, func, args } => {
            let callee = module
                .functions
                .get(func.0 as usize)
                .ok_or_else(|| format!("callee {} out of range", func.0))?;
            if args.len() as u32 != callee.param_count {
                return Err(format!(
                    "call to `{}` passes {} args, expects {}",
                    callee.name,
                    args.len(),
                    callee.param_count
                ));
            }
            if dst.is_some() && !callee.returns_value {
                return Err(format!(
                    "call to `{}` uses a result it does not return",
                    callee.name
                ));
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use biaslab_isa::AluOp;

    use super::*;
    use crate::ir::{Block, LocalId, LocalSlot};

    fn func(blocks: Vec<Block>, locals: Vec<LocalSlot>, next_val: u32) -> Function {
        Function {
            name: "t".into(),
            param_count: 0,
            returns_value: false,
            locals,
            blocks,
            loops: vec![],
            next_val,
        }
    }

    fn module_with(f: Function) -> Module {
        Module {
            functions: vec![f],
            globals: vec![],
        }
    }

    #[test]
    fn accepts_minimal_function() {
        let m = module_with(func(
            vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            0,
        ));
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_use_before_def() {
        let m = module_with(func(
            vec![Block {
                ops: vec![Op::Bin {
                    op: AluOp::Add,
                    dst: Val(1),
                    a: Val(0),
                    b: Val(0),
                }],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            2,
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("used before definition"), "{e}");
    }

    #[test]
    fn rejects_cross_block_value_use() {
        let m = module_with(func(
            vec![
                Block {
                    ops: vec![Op::Const {
                        dst: Val(0),
                        value: 1,
                    }],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    ops: vec![Op::Chk { src: Val(0) }],
                    term: Terminator::Ret { value: None },
                },
            ],
            vec![],
            1,
        ));
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_double_definition() {
        let m = module_with(func(
            vec![Block {
                ops: vec![
                    Op::Const {
                        dst: Val(0),
                        value: 1,
                    },
                    Op::Const {
                        dst: Val(0),
                        value: 2,
                    },
                ],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            1,
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("defined twice"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_successor() {
        let m = module_with(func(
            vec![Block {
                ops: vec![],
                term: Terminator::Jump(BlockId(5)),
            }],
            vec![],
            0,
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_local_access_past_slot() {
        let m = module_with(func(
            vec![Block {
                ops: vec![Op::LoadLocal {
                    dst: Val(0),
                    local: LocalId(0),
                    offset: 8,
                }],
                term: Terminator::Ret { value: None },
            }],
            vec![LocalSlot::scalar()],
            1,
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("exceeds slot size"), "{e}");
    }

    #[test]
    fn rejects_bad_call_arity() {
        let callee = Function {
            name: "callee".into(),
            param_count: 2,
            returns_value: false,
            locals: vec![LocalSlot::scalar(), LocalSlot::scalar()],
            blocks: vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            loops: vec![],
            next_val: 0,
        };
        let caller = func(
            vec![Block {
                ops: vec![Op::Call {
                    dst: None,
                    func: crate::ir::FuncId(0),
                    args: vec![],
                }],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            0,
        );
        let m = Module {
            functions: vec![callee, caller],
            globals: vec![],
        };
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("passes 0 args"), "{e}");
    }

    #[test]
    fn rejects_mismatched_return() {
        let mut f = func(
            vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            vec![],
            0,
        );
        f.returns_value = true;
        let e = verify_module(&module_with(f)).unwrap_err();
        assert!(e.to_string().contains("lacks a value"), "{e}");
    }

    #[test]
    fn rejects_duplicate_globals() {
        let m = Module {
            functions: vec![],
            globals: vec![
                crate::ir::Global::zeroed("g", 8),
                crate::ir::Global::zeroed("g", 8),
            ],
        };
        assert!(verify_module(&m).is_err());
    }
}
