//! Ergonomic construction of IR modules and functions.
//!
//! [`ModuleBuilder`] collects globals and functions; [`FunctionBuilder`]
//! offers three-address primitives plus structured-control-flow helpers
//! (`if_then`, `if_then_else`, [`FunctionBuilder::counted_loop`],
//! [`FunctionBuilder::while_loop`]). The workload suite is written entirely
//! against this API.
//!
//! Because IR values are block-local (see [`crate::ir`]), the structured
//! helpers re-read loop state from local slots inside every block they
//! create; closures receive freshly loaded values.
//!
//! # Examples
//!
//! Build, verify and interpret a function that sums `0..n`:
//!
//! ```
//! use biaslab_isa::Cond;
//! use biaslab_toolchain::{interp::Interpreter, ModuleBuilder};
//!
//! let mut mb = ModuleBuilder::new();
//! mb.function("sum", 1, true, |fb| {
//!     let n = fb.param(0);
//!     let acc = fb.local_scalar();
//!     let zero = fb.const_(0);
//!     fb.set(acc, zero);
//!     let i = fb.local_scalar();
//!     fb.counted_loop(i, 0, n, 1, |fb, iv| {
//!         let a = fb.get(acc);
//!         let s = fb.add(a, iv);
//!         fb.set(acc, s);
//!     });
//!     let result = fb.get(acc);
//!     fb.ret(Some(result));
//! });
//! let module = mb.finish().expect("valid module");
//! let mut interp = Interpreter::new(&module);
//! let out = interp.call_by_name("sum", &[10]).unwrap();
//! assert_eq!(out.return_value, Some(45));
//! ```

use biaslab_isa::{AluOp, Cond, Width};

use crate::ir::{
    Block, BlockId, FuncId, Function, Global, GlobalId, LocalId, LocalSlot, LoopInfo, Module, Op,
    Terminator, Val,
};
use crate::verify::{verify_module, VerifyError};

/// Builds a [`Module`] out of globals and functions.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(),
        }
    }

    /// Adds a global and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name already exists.
    pub fn global(&mut self, global: Global) -> GlobalId {
        assert!(
            self.module.globals.iter().all(|g| g.name != global.name),
            "duplicate global {}",
            global.name
        );
        self.module.globals.push(global);
        GlobalId(self.module.globals.len() as u32 - 1)
    }

    /// Forward-declares a function (for mutual recursion); the body must be
    /// supplied later with [`ModuleBuilder::define`].
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or more than 6 parameters.
    pub fn declare(&mut self, name: &str, param_count: u32, returns_value: bool) -> FuncId {
        assert!(param_count <= 6, "at most 6 parameters supported");
        assert!(
            self.module.functions.iter().all(|f| f.name != name),
            "duplicate function {name}"
        );
        let mut locals = Vec::new();
        for _ in 0..param_count {
            locals.push(LocalSlot::scalar());
        }
        self.module.functions.push(Function {
            name: name.to_owned(),
            param_count,
            returns_value,
            locals,
            blocks: Vec::new(),
            loops: Vec::new(),
            next_val: 0,
        });
        FuncId(self.module.functions.len() as u32 - 1)
    }

    /// Supplies the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function already has a body.
    pub fn define(&mut self, id: FuncId, build: impl FnOnce(&mut FunctionBuilder)) {
        let func = &mut self.module.functions[id.0 as usize];
        assert!(
            func.blocks.is_empty(),
            "function {} already defined",
            func.name
        );
        let mut fb = FunctionBuilder::new(func);
        build(&mut fb);
        fb.finish();
    }

    /// Declares and defines a function in one step.
    pub fn function(
        &mut self,
        name: &str,
        param_count: u32,
        returns_value: bool,
        build: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let id = self.declare(name, param_count, returns_value);
        self.define(id, build);
        id
    }

    /// Finishes construction, verifying the module.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] if the module is malformed.
    pub fn finish(self) -> Result<Module, VerifyError> {
        verify_module(&self.module)?;
        Ok(self.module)
    }

    /// Finishes construction without verification (tests only).
    #[must_use]
    pub fn finish_unchecked(self) -> Module {
        self.module
    }
}

/// Builds one function's CFG. Created by [`ModuleBuilder::define`].
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    func: &'a mut Function,
    current: BlockId,
    /// Blocks under construction; moved into `func` on finish.
    blocks: Vec<PendingBlock>,
    terminated: bool,
}

#[derive(Debug)]
struct PendingBlock {
    ops: Vec<Op>,
    term: Option<Terminator>,
}

impl<'a> FunctionBuilder<'a> {
    fn new(func: &'a mut Function) -> FunctionBuilder<'a> {
        FunctionBuilder {
            func,
            current: BlockId(0),
            blocks: vec![PendingBlock {
                ops: Vec::new(),
                term: None,
            }],
            terminated: false,
        }
    }

    fn finish(self) {
        for (i, pb) in self.blocks.into_iter().enumerate() {
            let term = pb
                .term
                .unwrap_or_else(|| panic!("block bb{i} in {} lacks a terminator", self.func.name));
            self.func.blocks.push(Block { ops: pb.ops, term });
        }
    }

    fn push(&mut self, op: Op) {
        assert!(!self.terminated, "emitting into a terminated block");
        self.blocks[self.current.0 as usize].ops.push(op);
    }

    fn fresh(&mut self) -> Val {
        self.func.fresh_val()
    }

    // ----- locals ---------------------------------------------------------

    /// The local slot holding parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a valid parameter index.
    #[must_use]
    pub fn param(&self, index: u32) -> LocalId {
        assert!(
            index < self.func.param_count,
            "parameter {index} out of range"
        );
        LocalId(index)
    }

    /// Allocates an 8-byte scalar local slot.
    pub fn local_scalar(&mut self) -> LocalId {
        self.func.locals.push(LocalSlot::scalar());
        LocalId(self.func.locals.len() as u32 - 1)
    }

    /// Allocates a stack buffer of `size` bytes. Its address can be taken
    /// with [`FunctionBuilder::addr`]; buffers always live on the stack, so
    /// their cache behaviour shifts with the environment size.
    pub fn local_buffer(&mut self, size: u32) -> LocalId {
        self.func.locals.push(LocalSlot::buffer(size));
        LocalId(self.func.locals.len() as u32 - 1)
    }

    // ----- blocks ---------------------------------------------------------

    /// Creates a new (empty, unterminated) block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(PendingBlock {
            ops: Vec::new(),
            term: None,
        });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Switches emission to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.blocks[block.0 as usize].term.is_none(),
            "switching to terminated block {block}"
        );
        self.current = block;
        self.terminated = false;
    }

    /// The block currently being emitted into.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    // ----- straight-line ops ----------------------------------------------

    /// Emits `dst = value` and returns `dst`.
    pub fn const_(&mut self, value: u64) -> Val {
        let dst = self.fresh();
        self.push(Op::Const { dst, value });
        dst
    }

    /// Emits a three-register ALU op.
    pub fn bin(&mut self, op: AluOp, a: Val, b: Val) -> Val {
        let dst = self.fresh();
        self.push(Op::Bin { op, dst, a, b });
        dst
    }

    /// Emits an ALU op with an immediate right operand.
    pub fn bin_imm(&mut self, op: AluOp, a: Val, imm: i64) -> Val {
        let dst = self.fresh();
        self.push(Op::BinImm { op, dst, a, imm });
        dst
    }

    /// `a + b`
    pub fn add(&mut self, a: Val, b: Val) -> Val {
        self.bin(AluOp::Add, a, b)
    }

    /// `a - b`
    pub fn sub(&mut self, a: Val, b: Val) -> Val {
        self.bin(AluOp::Sub, a, b)
    }

    /// `a * b`
    pub fn mul(&mut self, a: Val, b: Val) -> Val {
        self.bin(AluOp::Mul, a, b)
    }

    /// `a + imm`
    pub fn add_imm(&mut self, a: Val, imm: i64) -> Val {
        self.bin_imm(AluOp::Add, a, imm)
    }

    /// `a * imm`
    pub fn mul_imm(&mut self, a: Val, imm: i64) -> Val {
        self.bin_imm(AluOp::Mul, a, imm)
    }

    /// `a & imm`
    pub fn and_imm(&mut self, a: Val, imm: i64) -> Val {
        self.bin_imm(AluOp::And, a, imm)
    }

    /// Reads the scalar stored in `local`.
    pub fn get(&mut self, local: LocalId) -> Val {
        let dst = self.fresh();
        self.push(Op::LoadLocal {
            dst,
            local,
            offset: 0,
        });
        dst
    }

    /// Writes `src` to `local`.
    pub fn set(&mut self, local: LocalId, src: Val) {
        self.push(Op::StoreLocal {
            local,
            offset: 0,
            src,
        });
    }

    /// Takes the address of `local` (pinning it to the stack).
    pub fn addr(&mut self, local: LocalId) -> Val {
        let dst = self.fresh();
        self.push(Op::AddrLocal { dst, local });
        dst
    }

    /// Takes the address of a global.
    pub fn addr_global(&mut self, global: GlobalId) -> Val {
        let dst = self.fresh();
        self.push(Op::AddrGlobal { dst, global });
        dst
    }

    /// Loads `width` bytes from `addr + offset` (zero-extended).
    pub fn load(&mut self, width: Width, addr: Val, offset: i32) -> Val {
        let dst = self.fresh();
        self.push(Op::Load {
            width,
            dst,
            addr,
            offset,
        });
        dst
    }

    /// Stores `src` (truncated to `width`) at `addr + offset`.
    pub fn store(&mut self, width: Width, addr: Val, offset: i32, src: Val) {
        self.push(Op::Store {
            width,
            addr,
            offset,
            src,
        });
    }

    /// Calls `func` and returns its result value.
    pub fn call(&mut self, func: FuncId, args: &[Val]) -> Val {
        let dst = self.fresh();
        self.push(Op::Call {
            dst: Some(dst),
            func,
            args: args.to_vec(),
        });
        dst
    }

    /// Calls `func`, discarding any result.
    pub fn call_void(&mut self, func: FuncId, args: &[Val]) {
        self.push(Op::Call {
            dst: None,
            func,
            args: args.to_vec(),
        });
    }

    /// Folds `src` into the machine checksum.
    pub fn chk(&mut self, src: Val) {
        self.push(Op::Chk { src });
    }

    // ----- terminators ------------------------------------------------------

    fn terminate(&mut self, term: Terminator) {
        assert!(
            !self.terminated,
            "block {} already terminated",
            self.current
        );
        self.blocks[self.current.0 as usize].term = Some(term);
        self.terminated = true;
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Cond, a: Val, b: Val, then_block: BlockId, else_block: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            a,
            b,
            then_block,
            else_block,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Val>) {
        self.terminate(Terminator::Ret { value });
    }

    // ----- structured control flow ------------------------------------------

    /// Emits `if cond(a, b) { then }`, leaving emission in the join block.
    pub fn if_then(&mut self, cond: Cond, a: Val, b: Val, then: impl FnOnce(&mut Self)) {
        let then_block = self.new_block();
        let join = self.new_block();
        self.branch(cond, a, b, then_block, join);
        self.switch_to(then_block);
        then(self);
        if !self.terminated {
            self.jump(join);
        }
        self.switch_to(join);
    }

    /// Emits `if cond(a, b) { then } else { otherwise }`, leaving emission in
    /// the join block.
    pub fn if_then_else(
        &mut self,
        cond: Cond,
        a: Val,
        b: Val,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        let then_block = self.new_block();
        let else_block = self.new_block();
        let join = self.new_block();
        self.branch(cond, a, b, then_block, else_block);
        self.switch_to(then_block);
        then(self);
        if !self.terminated {
            self.jump(join);
        }
        self.switch_to(else_block);
        otherwise(self);
        if !self.terminated {
            self.jump(join);
        }
        self.switch_to(join);
    }

    /// Emits a counted loop `for (i = start; i <s bound; i += step)`.
    ///
    /// `i` must be a scalar local dedicated to this loop; `bound` is re-read
    /// from its local every iteration, so it is loop-invariant as long as the
    /// body does not store to it. The body closure receives the current
    /// induction value (freshly loaded in the body block).
    ///
    /// If the body stays a single basic block, the loop is recorded in
    /// [`Function::loops`] and becomes a candidate for unrolling at `O3`.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn counted_loop(
        &mut self,
        i: LocalId,
        start: i64,
        bound: LocalId,
        step: i64,
        body: impl FnOnce(&mut Self, Val),
    ) {
        assert!(step != 0, "loop step must be nonzero");
        let header = self.new_block();
        let body_block = self.new_block();
        let exit = self.new_block();

        let start_val = self.const_(start as u64);
        self.set(i, start_val);
        self.jump(header);

        self.switch_to(header);
        let iv = self.get(i);
        let bv = self.get(bound);
        let cond = if step > 0 { Cond::Lt } else { Cond::Ge };
        // For positive steps loop while i < bound; for negative steps loop
        // while i > bound, expressed as bound < i.
        if step > 0 {
            self.branch(cond, iv, bv, body_block, exit);
        } else {
            self.branch(Cond::Lt, bv, iv, body_block, exit);
        }

        self.switch_to(body_block);
        let blocks_before = self.blocks.len();
        let iv_body = self.get(i);
        body(self, iv_body);
        let single_block = self.blocks.len() == blocks_before && self.current == body_block;
        let iv_end = self.get(i);
        let next = self.bin_imm(AluOp::Add, iv_end, step);
        self.set(i, next);
        self.jump(header);

        if single_block {
            self.func.loops.push(LoopInfo {
                header,
                body: body_block,
                induction: i,
            });
        }
        self.switch_to(exit);
    }

    /// Emits a general `while` loop. `cond` is rebuilt in the header block
    /// each iteration and must end by returning the comparison triple; the
    /// body may create arbitrary control flow.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> (Cond, Val, Val),
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.new_block();
        let body_block = self.new_block();
        let exit = self.new_block();
        self.jump(header);

        self.switch_to(header);
        let (c, a, b) = cond(self);
        self.branch(c, a, b, body_block, exit);

        self.switch_to(body_block);
        body(self);
        if !self.terminated {
            self.jump(header);
        }
        self.switch_to(exit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_trivial_function() {
        let mut mb = ModuleBuilder::new();
        mb.function("nop", 0, false, |fb| fb.ret(None));
        let m = mb.finish().unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].blocks.len(), 1);
    }

    #[test]
    fn counted_loop_registers_loop_info_for_single_block_bodies() {
        let mut mb = ModuleBuilder::new();
        mb.function("f", 1, false, |fb| {
            let n = fb.param(0);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                fb.chk(iv);
            });
            fb.ret(None);
        });
        let m = mb.finish().unwrap();
        assert_eq!(m.functions[0].loops.len(), 1);
    }

    #[test]
    fn counted_loop_with_inner_control_flow_is_not_recorded() {
        let mut mb = ModuleBuilder::new();
        mb.function("f", 1, false, |fb| {
            let n = fb.param(0);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let two = fb.const_(2);
                let r = fb.bin(AluOp::Rem, iv, two);
                let zero = fb.const_(0);
                fb.if_then(Cond::Eq, r, zero, |fb| {
                    let v = fb.get(i);
                    fb.chk(v);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish().unwrap();
        assert!(m.functions[0].loops.is_empty());
    }

    #[test]
    fn if_then_else_produces_diamond() {
        let mut mb = ModuleBuilder::new();
        mb.function("f", 2, true, |fb| {
            let a = fb.param(0);
            let b = fb.param(1);
            let out = fb.local_scalar();
            let av = fb.get(a);
            let bv = fb.get(b);
            fb.if_then_else(
                Cond::Lt,
                av,
                bv,
                |fb| {
                    let v = fb.get(b);
                    fb.set(out, v);
                },
                |fb| {
                    let v = fb.get(a);
                    fb.set(out, v);
                },
            );
            let r = fb.get(out);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        // entry + then + else + join = 4 blocks
        assert_eq!(m.functions[0].blocks.len(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_names_rejected() {
        let mut mb = ModuleBuilder::new();
        mb.function("f", 0, false, |fb| fb.ret(None));
        mb.declare("f", 0, false);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn missing_terminator_panics() {
        let mut mb = ModuleBuilder::new();
        mb.function("f", 0, false, |fb| {
            fb.const_(1);
            // no terminator
        });
    }

    #[test]
    #[should_panic(expected = "at most 6 parameters")]
    fn too_many_params_rejected() {
        let mut mb = ModuleBuilder::new();
        mb.declare("f", 7, false);
    }
}
