//! The program loader: executable + environment → process image.
//!
//! This is where the paper's environment-size bias enters the system. A
//! UNIX kernel copies the environment strings (and the pointer vector that
//! indexes them) onto the **top of the new process's stack** before the
//! program starts; everything the program later puts on the stack sits
//! below them. Growing `$PATH` by one byte therefore moves the initial
//! stack pointer — and with it the cache-set and TLB-page mapping of every
//! stack frame and stack buffer in the program. The loader reproduces that
//! layout exactly:
//!
//! ```text
//! STACK_TOP ─▶ ┌──────────────────────────────┐
//!              │ "NAME=VALUE\0" strings        │
//!              │ envp pointer array (8 B each) │
//!              ├──────────────────────────────┤ ◀─ aligned down to 16
//!              │ initial sp                    │
//!              │ … frames grow down …          │
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::layout::{align_down, STACK_MAX, STACK_TOP};
use crate::link::Executable;
use crate::mem::PagedMem;

/// Process-wide monotonic image-generation counter. Every
/// [`crate::link::Linker::link`] stamps the next value on the produced
/// [`Executable`] (generations start at 1; 0 means "no image"), and the
/// loader copies it onto the [`Process`], so a consumer holding decoded
/// derivatives of an older image can detect staleness with one compare.
static IMAGE_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Draws the next image generation (used by the linker at stamp time).
#[must_use]
pub fn next_image_generation() -> u64 {
    IMAGE_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// One environment variable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvVar {
    /// Variable name (no `=`).
    pub name: String,
    /// Variable value.
    pub value: String,
}

impl EnvVar {
    /// Creates a variable.
    #[must_use]
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> EnvVar {
        EnvVar {
            name: name.into(),
            value: value.into(),
        }
    }

    /// Bytes this variable occupies on the stack (`NAME=VALUE\0`).
    #[must_use]
    pub fn stack_bytes(&self) -> u32 {
        (self.name.len() + 1 + self.value.len() + 1) as u32
    }
}

/// A process environment: an ordered list of variables.
///
/// # Examples
///
/// ```
/// use biaslab_toolchain::load::Environment;
///
/// let env = Environment::of_total_size(1000);
/// assert_eq!(env.stack_bytes(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Environment {
    vars: Vec<EnvVar>,
}

impl Environment {
    /// The empty environment.
    #[must_use]
    pub fn new() -> Environment {
        Environment::default()
    }

    /// An environment whose total stack footprint (strings plus pointer
    /// array) is exactly `bytes` — the paper's experimental knob. Built
    /// from a single `BIAS` padding variable when possible.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 0 and too small to hold any variable
    /// (minimum is 16: an 8-byte pointer array terminator plus `B=\0` padded).
    #[must_use]
    pub fn of_total_size(bytes: u32) -> Environment {
        Environment::of_total_size_with_fill(bytes, 'x')
    }

    /// Like [`Environment::of_total_size`], but with a chosen padding
    /// character. Two environments of the same size and different fill are
    /// the causal-analysis *placebo*: they occupy identical stack bytes, so
    /// any measured difference between them would falsify the
    /// stack-placement explanation.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is nonzero but below the 23-byte minimum
    /// footprint, or `fill` is not ASCII.
    #[must_use]
    pub fn of_total_size_with_fill(bytes: u32, fill: char) -> Environment {
        assert!(fill.is_ascii(), "fill must be a single-byte character");
        if bytes == 0 {
            return Environment::new();
        }
        // Footprint = strlen("BIAS=" + value) + 1  +  8 * (nvars + 1).
        assert!(bytes >= 23, "minimum non-empty environment is 23 bytes");
        let value_len = bytes - 16 - 6; // "BIAS=" + NUL = 6, pointers = 16
        let mut env = Environment::new();
        env.push(EnvVar::new(
            "BIAS",
            fill.to_string().repeat(value_len as usize),
        ));
        debug_assert_eq!(env.stack_bytes(), bytes);
        env
    }

    /// Appends a variable.
    pub fn push(&mut self, var: EnvVar) {
        self.vars.push(var);
    }

    /// The variables in order.
    #[must_use]
    pub fn vars(&self) -> &[EnvVar] {
        &self.vars
    }

    /// Total bytes the environment occupies on the stack: all strings plus
    /// the null-terminated pointer array.
    #[must_use]
    pub fn stack_bytes(&self) -> u32 {
        let strings: u32 = self.vars.iter().map(EnvVar::stack_bytes).sum();
        strings + 8 * (self.vars.len() as u32 + 1)
    }
}

impl FromIterator<EnvVar> for Environment {
    fn from_iter<T: IntoIterator<Item = EnvVar>>(iter: T) -> Environment {
        Environment {
            vars: iter.into_iter().collect(),
        }
    }
}

/// A loaded process, ready to run on a simulated machine.
#[derive(Debug, Clone)]
pub struct Process {
    /// Data and stack memory (text is fetched from the executable).
    pub mem: PagedMem,
    /// Initial program counter (the startup shim).
    pub entry: u32,
    /// Initial stack pointer (below the environment block).
    pub sp: u32,
    /// Initial global pointer.
    pub gp: u32,
    /// Arguments placed in `r1..r6` at startup.
    pub args: Vec<u64>,
    /// Bytes the environment occupies above `sp`.
    pub env_bytes: u32,
    /// Generation of the image this process was loaded from (see
    /// [`Executable::image_generation`]).
    pub image_generation: u64,
}

/// Loader failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The environment exceeds half the stack budget.
    EnvTooLarge(u32),
    /// More than 6 arguments were supplied.
    TooManyArgs(usize),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::EnvTooLarge(n) => write!(f, "environment of {n} bytes exceeds the stack"),
            LoadError::TooManyArgs(n) => write!(f, "{n} arguments exceed the 6-register ABI"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Builds process images from executables.
#[derive(Debug, Clone, Default)]
pub struct Loader {
    stack_shift: u32,
}

impl Loader {
    /// A loader with the default (zero) extra stack shift.
    #[must_use]
    pub fn new() -> Loader {
        Loader::default()
    }

    /// Shifts the initial stack pointer down by `bytes` *in addition to*
    /// the environment block — the loader-level intervention used by the
    /// causal-analysis experiments to move the stack without touching the
    /// environment.
    #[must_use]
    pub fn stack_shift(mut self, bytes: u32) -> Loader {
        self.stack_shift = bytes;
        self
    }

    /// Produces a process image for `exe` under environment `env`, with
    /// `args` delivered in `r1..r6`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if the environment is oversized or more than
    /// 6 arguments are given.
    pub fn load(
        &self,
        exe: &Executable,
        env: &Environment,
        args: &[u64],
    ) -> Result<Process, LoadError> {
        if args.len() > 6 {
            return Err(LoadError::TooManyArgs(args.len()));
        }
        let env_bytes = env.stack_bytes() + self.stack_shift;
        if env_bytes > STACK_MAX / 2 {
            return Err(LoadError::EnvTooLarge(env_bytes));
        }

        let mut mem = PagedMem::new();
        // Data segment.
        mem.write_bytes(exe.data_base(), exe.data());

        // Environment block: strings first (descending from STACK_TOP),
        // then the pointer array beneath them.
        let mut cursor = STACK_TOP;
        let mut ptrs = Vec::with_capacity(env.vars().len());
        for var in env.vars() {
            let s = format!("{}={}", var.name, var.value);
            cursor -= s.len() as u32 + 1;
            mem.write_bytes(cursor, s.as_bytes());
            mem.write_u8(cursor + s.len() as u32, 0);
            ptrs.push(cursor);
        }
        cursor -= 8; // NULL terminator of the pointer array
        mem.write_u64(cursor, 0);
        for &p in ptrs.iter().rev() {
            cursor -= 8;
            mem.write_u64(cursor, u64::from(p));
        }
        cursor -= self.stack_shift;

        let sp = align_down(cursor, crate::layout::STACK_ALIGN);
        Ok(Process {
            mem,
            entry: exe.entry(),
            sp,
            gp: exe.gp(),
            args: args.to_vec(),
            env_bytes,
            image_generation: exe.image_generation(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::codegen::compile;
    use crate::link::Linker;
    use crate::opt::{optimize, OptLevel};

    fn tiny_exe() -> Executable {
        let mut mb = ModuleBuilder::new();
        mb.function("main", 0, false, |fb| fb.ret(None));
        let m = mb.finish().unwrap();
        Linker::new()
            .link(&compile(&optimize(&m, OptLevel::O2), OptLevel::O2), "main")
            .unwrap()
    }

    #[test]
    fn empty_environment_gives_aligned_top_stack() {
        let p = Loader::new()
            .load(&tiny_exe(), &Environment::new(), &[])
            .unwrap();
        // Only the 8-byte envp NULL sits above sp.
        assert_eq!(p.sp, align_down(STACK_TOP - 8, 16));
        assert_eq!(p.sp % 16, 0);
    }

    #[test]
    fn environment_size_moves_sp_down() {
        let exe = tiny_exe();
        let p0 = Loader::new()
            .load(&exe, &Environment::of_total_size(0), &[])
            .unwrap();
        let p1 = Loader::new()
            .load(&exe, &Environment::of_total_size(100), &[])
            .unwrap();
        let p2 = Loader::new()
            .load(&exe, &Environment::of_total_size(612), &[])
            .unwrap();
        assert!(p1.sp < p0.sp);
        assert!(p2.sp < p1.sp);
        // One extra byte can change sp (this is the paper's point): find a
        // size where it does.
        let mut moved = false;
        for n in 100..150 {
            let a = Loader::new()
                .load(&exe, &Environment::of_total_size(n), &[])
                .unwrap();
            let b = Loader::new()
                .load(&exe, &Environment::of_total_size(n + 1), &[])
                .unwrap();
            if a.sp != b.sp {
                moved = true;
                break;
            }
        }
        assert!(moved);
    }

    #[test]
    fn of_total_size_is_exact() {
        for n in [23u32, 24, 64, 100, 613, 4096] {
            assert_eq!(Environment::of_total_size(n).stack_bytes(), n, "n={n}");
        }
    }

    #[test]
    fn env_strings_are_written_to_memory() {
        let exe = tiny_exe();
        let mut env = Environment::new();
        env.push(EnvVar::new("HOME", "/root"));
        let p = Loader::new().load(&exe, &env, &[]).unwrap();
        let s = p.mem.read_bytes(STACK_TOP - 11, 10);
        assert_eq!(&s, b"HOME=/root");
        // Pointer array below the strings points at the string.
        let ptr = p.mem.read_u64(STACK_TOP - 11 - 16);
        assert_eq!(ptr, u64::from(STACK_TOP - 11));
    }

    #[test]
    fn stack_shift_moves_sp_without_env() {
        let exe = tiny_exe();
        let a = Loader::new().load(&exe, &Environment::new(), &[]).unwrap();
        let b = Loader::new()
            .stack_shift(64)
            .load(&exe, &Environment::new(), &[])
            .unwrap();
        assert_eq!(a.sp - b.sp, 64);
    }

    #[test]
    fn data_segment_is_populated() {
        use crate::ir::Global;
        let mut mb = ModuleBuilder::new();
        mb.global(Global::from_words("g", &[0xABCD]));
        mb.function("main", 0, false, |fb| fb.ret(None));
        let m = mb.finish().unwrap();
        let exe = Linker::new()
            .link(&compile(&optimize(&m, OptLevel::O0), OptLevel::O0), "main")
            .unwrap();
        let p = Loader::new().load(&exe, &Environment::new(), &[]).unwrap();
        let addr = exe.symbol("g").unwrap().addr;
        assert_eq!(p.mem.read_u64(addr), 0xABCD);
    }

    #[test]
    fn too_many_args_rejected() {
        let exe = tiny_exe();
        let err = Loader::new()
            .load(&exe, &Environment::new(), &[0; 7])
            .unwrap_err();
        assert_eq!(err, LoadError::TooManyArgs(7));
    }

    #[test]
    fn oversized_environment_rejected() {
        let exe = tiny_exe();
        let err = Loader::new()
            .load(&exe, &Environment::of_total_size(STACK_MAX), &[])
            .unwrap_err();
        assert!(matches!(err, LoadError::EnvTooLarge(_)));
    }
}
