//! Dead-code elimination and unreachable-block removal.

use std::collections::HashSet;

use crate::ir::{BlockId, Function, Val};

/// Removes side-effect-free ops whose results are never used. Runs to a
/// fixpoint within each block (removing one op can kill its operands'
/// definitions too).
pub fn dce_function(f: &mut Function) {
    loop {
        let mut used: HashSet<Val> = HashSet::new();
        for block in &f.blocks {
            for op in &block.ops {
                used.extend(op.uses());
            }
            used.extend(block.term.uses());
        }
        let mut removed = false;
        for block in &mut f.blocks {
            let before = block.ops.len();
            block
                .ops
                .retain(|op| op.has_side_effect() || op.def().is_none_or(|d| used.contains(&d)));
            removed |= block.ops.len() != before;
        }
        if !removed {
            break;
        }
    }
}

/// Removes blocks unreachable from the entry, compacting ids and remapping
/// terminators and loop metadata. Loops whose header or body was removed
/// are dropped.
pub fn remove_unreachable_blocks(f: &mut Function) {
    let mut reachable = vec![false; f.blocks.len()];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for succ in f.blocks[b].term.successors() {
            stack.push(succ.0 as usize);
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }

    let mut remap = vec![None; f.blocks.len()];
    let mut next = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap[i] = Some(BlockId(next));
            next += 1;
        }
    }

    let mut kept = Vec::with_capacity(next as usize);
    for (i, block) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if reachable[i] {
            kept.push(block);
        }
    }
    for block in &mut kept {
        block
            .term
            .map_successors(|b| remap[b.0 as usize].expect("successor of reachable block"));
    }
    f.blocks = kept;
    f.loops.retain_mut(
        |l| match (remap[l.header.0 as usize], remap[l.body.0 as usize]) {
            (Some(h), Some(b)) => {
                l.header = h;
                l.body = b;
                true
            }
            _ => false,
        },
    );
}

#[cfg(test)]
mod tests {
    use biaslab_isa::Cond;

    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{Op, Terminator};
    use crate::verify::verify_module;

    #[test]
    fn removes_dead_chains() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, true, |fb| {
            let a = fb.const_(1); // dead: only feeds dead b
            let _b = fb.add_imm(a, 2); // dead
            let live = fb.const_(9);
            fb.ret(Some(live));
        });
        let mut m = mb.finish().unwrap();
        dce_function(&mut m.functions[0]);
        assert_eq!(m.functions[0].blocks[0].ops.len(), 1);
        verify_module(&m).unwrap();
    }

    #[test]
    fn keeps_side_effects() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, false, |fb| {
            let a = fb.const_(1);
            fb.chk(a); // side effect, must stay (and keep `a` alive)
            fb.ret(None);
        });
        let mut m = mb.finish().unwrap();
        dce_function(&mut m.functions[0]);
        assert_eq!(m.functions[0].blocks[0].ops.len(), 2);
    }

    #[test]
    fn keeps_stores_and_calls() {
        let mut mb = ModuleBuilder::new();
        let callee = mb.function("callee", 0, true, |fb| {
            let v = fb.const_(3);
            fb.ret(Some(v));
        });
        mb.function("t", 0, false, |fb| {
            let s = fb.local_scalar();
            let v = fb.const_(5);
            fb.set(s, v); // store: side effect
            let _unused = fb.call(callee, &[]); // call result unused but call stays
            fb.ret(None);
        });
        let mut m = mb.finish().unwrap();
        dce_function(&mut m.functions[1]);
        let ops = &m.functions[1].blocks[0].ops;
        assert!(ops.iter().any(|o| matches!(o, Op::StoreLocal { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::Call { .. })));
    }

    #[test]
    fn unreachable_blocks_are_compacted() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, true, |fb| {
            let a = fb.const_(1);
            let b = fb.const_(2);
            let out = fb.local_scalar();
            fb.if_then_else(
                Cond::Lt,
                a,
                b,
                |fb| {
                    let v = fb.const_(10);
                    fb.set(out, v);
                },
                |fb| {
                    let v = fb.const_(20);
                    fb.set(out, v);
                },
            );
            let r = fb.get(out);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        // Fold the constant branch, stranding the else block.
        super::super::simplify::simplify_function(&mut m.functions[0], false);
        let before = m.functions[0].blocks.len();
        remove_unreachable_blocks(&mut m.functions[0]);
        assert!(m.functions[0].blocks.len() < before);
        verify_module(&m).unwrap();
        // Terminators all point at valid blocks and the function still
        // computes 10.
        let out = crate::interp::Interpreter::new(&m)
            .call_by_name("t", &[])
            .unwrap();
        assert_eq!(out.return_value, Some(10));
    }

    #[test]
    fn loop_metadata_survives_compaction_when_blocks_survive() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 1, false, |fb| {
            let n = fb.param(0);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| fb.chk(iv));
            fb.ret(None);
        });
        let mut m = mb.finish().unwrap();
        let f = &mut m.functions[0];
        let loops_before = f.loops.clone();
        remove_unreachable_blocks(f);
        assert_eq!(f.loops, loops_before, "no blocks removed, loops unchanged");
    }

    #[test]
    fn no_blocks_removed_is_a_noop() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, false, |fb| fb.ret(None));
        let mut m = mb.finish().unwrap();
        let before = m.functions[0].clone();
        remove_unreachable_blocks(&mut m.functions[0]);
        assert_eq!(m.functions[0], before);
        assert!(matches!(
            m.functions[0].blocks[0].term,
            Terminator::Ret { .. }
        ));
    }
}
