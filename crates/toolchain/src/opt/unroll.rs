//! Loop unrolling (enabled at `O3`).
//!
//! Counted loops recorded by the builder (see
//! [`crate::builder::FunctionBuilder::counted_loop`]) are unrolled by a
//! constant factor using a guard-plus-tail scheme:
//!
//! ```text
//!            ┌───────────┐  ≥K iterations left   ┌────────┐
//!  entry ──▶ │   guard   │ ────────────────────▶ │ body×K │──┐
//!            └───────────┘ ◀──────────────────── └────────┘  │
//!                  │ fewer than K                            │
//!                  ▼                                  (loops back to guard)
//!            ┌───────────┐      ┌────────┐
//!            │  header   │ ───▶ │ body×1 │   (original tail loop)
//!            └───────────┘ ◀─── └────────┘
//!                  │ done
//!                  ▼ exit
//! ```
//!
//! Besides removing `K−1` of every `K` header tests, unrolling multiplies
//! the loop's code footprint — which is exactly why `O3` binaries respond
//! differently to link-order and alignment changes than `O2` binaries, one
//! of the interactions the bias experiments probe.

use biaslab_isa::{AluOp, Cond};

use crate::ir::{Block, BlockId, Function, LocalId, LoopInfo, Module, Op, Terminator, Val};

/// Unrolls every eligible recorded loop in every function by `factor`.
///
/// Loops that fail the shape validation (for example because inlining split
/// their body) are skipped silently; the metadata is advisory.
///
/// # Panics
///
/// Panics if `factor < 2`.
pub fn unroll_loops(m: &mut Module, factor: u32) {
    assert!(factor >= 2, "unroll factor must be at least 2");
    for f in &mut m.functions {
        let loops = std::mem::take(&mut f.loops);
        for l in loops {
            unroll_one(f, &l, factor);
        }
    }
}

/// The validated pieces of a loop eligible for unrolling.
struct Shape {
    bound: LocalId,
    step: i64,
    /// `true` for `i < bound` (positive step), `false` for `bound < i`.
    positive: bool,
    exit: BlockId,
}

fn validate(f: &Function, l: &LoopInfo) -> Option<Shape> {
    let header = f.blocks.get(l.header.0 as usize)?;
    let body = f.blocks.get(l.body.0 as usize)?;

    // Header: exactly [load induction, load bound] + branch body/exit.
    let (iv, bv, bound) = match header.ops.as_slice() {
        [Op::LoadLocal {
            dst: iv,
            local: li,
            offset: 0,
        }, Op::LoadLocal {
            dst: bv,
            local: lb,
            offset: 0,
        }] if *li == l.induction => (*iv, *bv, *lb),
        _ => return None,
    };
    let (positive, exit) = match header.term {
        Terminator::Branch {
            cond: Cond::Lt,
            a,
            b,
            then_block,
            else_block,
        } if then_block == l.body => {
            if a == iv && b == bv {
                (true, else_block)
            } else if a == bv && b == iv {
                (false, else_block)
            } else {
                return None;
            }
        }
        _ => return None,
    };

    // Body: ends with [load i, i+step, store i] and jumps back to header.
    if body.term != Terminator::Jump(l.header) {
        return None;
    }
    let n = body.ops.len();
    if n < 3 {
        return None;
    }
    let step = match (&body.ops[n - 3], &body.ops[n - 2], &body.ops[n - 1]) {
        (
            Op::LoadLocal {
                dst: t,
                local: li,
                offset: 0,
            },
            Op::BinImm {
                op: AluOp::Add,
                dst: t2,
                a,
                imm,
            },
            Op::StoreLocal {
                local: ls,
                offset: 0,
                src,
            },
        ) if *li == l.induction && *ls == l.induction && a == t && src == t2 => *imm,
        _ => return None,
    };
    if step == 0 || (step > 0) != positive {
        return None;
    }

    // The induction must be written exactly once in the body and the bound
    // never; neither may be address-taken anywhere in the function.
    let mut ind_stores = 0;
    for op in &body.ops {
        match op {
            Op::StoreLocal { local, .. } if *local == l.induction => ind_stores += 1,
            Op::StoreLocal { local, .. } if *local == bound => return None,
            _ => {}
        }
    }
    if ind_stores != 1 {
        return None;
    }
    let taken = f.address_taken_locals();
    if taken[l.induction.0 as usize] || taken[bound.0 as usize] {
        return None;
    }

    // The body must be entered only from the header (no irreducible edges).
    for (bi, b) in f.blocks.iter().enumerate() {
        if BlockId(bi as u32) != l.header && b.term.successors().contains(&l.body) {
            return None;
        }
    }
    let _ = exit;
    Some(Shape {
        bound,
        step,
        positive,
        exit,
    })
}

fn unroll_one(f: &mut Function, l: &LoopInfo, factor: u32) {
    let Some(shape) = validate(f, l) else { return };
    let _ = shape.exit;

    let guard_id = BlockId(f.blocks.len() as u32);
    let first_clone = guard_id.0 + 1;

    // Redirect every entry edge (any block except the loop body and the
    // not-yet-created clones) from header to the guard.
    for (bi, b) in f.blocks.iter_mut().enumerate() {
        if BlockId(bi as u32) == l.body {
            continue;
        }
        b.term
            .map_successors(|s| if s == l.header { guard_id } else { s });
    }

    // Guard block: if `i + (K-1)*step` still satisfies the test, take the
    // unrolled path; otherwise fall back to the original (tail) loop.
    let iv = f.fresh_val();
    let bv = f.fresh_val();
    let probe = f.fresh_val();
    let lookahead = (factor as i64 - 1) * shape.step;
    let guard_ops = vec![
        Op::LoadLocal {
            dst: iv,
            local: l.induction,
            offset: 0,
        },
        Op::LoadLocal {
            dst: bv,
            local: shape.bound,
            offset: 0,
        },
        Op::BinImm {
            op: AluOp::Add,
            dst: probe,
            a: iv,
            imm: lookahead,
        },
    ];
    let guard_term = if shape.positive {
        Terminator::Branch {
            cond: Cond::Lt,
            a: probe,
            b: bv,
            then_block: BlockId(first_clone),
            else_block: l.header,
        }
    } else {
        Terminator::Branch {
            cond: Cond::Lt,
            a: bv,
            b: probe,
            then_block: BlockId(first_clone),
            else_block: l.header,
        }
    };
    f.blocks.push(Block {
        ops: guard_ops,
        term: guard_term,
    });

    // Body clones: clone k jumps to clone k+1; the last jumps to the guard.
    let body_ops = f.blocks[l.body.0 as usize].ops.clone();
    for k in 0..factor {
        let mut remap: std::collections::HashMap<Val, Val> = std::collections::HashMap::new();
        let mut ops = Vec::with_capacity(body_ops.len());
        for op in &body_ops {
            let mut cloned = op.clone();
            cloned.map_uses(|v| *remap.get(&v).unwrap_or(&v));
            if let Some(d) = cloned.def() {
                let nd = f.fresh_val();
                remap.insert(d, nd);
                replace_def(&mut cloned, nd);
            }
            ops.push(cloned);
        }
        let next = if k + 1 == factor {
            guard_id
        } else {
            BlockId(first_clone + k + 1)
        };
        f.blocks.push(Block {
            ops,
            term: Terminator::Jump(next),
        });
    }
}

fn replace_def(op: &mut Op, new: Val) {
    match op {
        Op::Const { dst, .. }
        | Op::Bin { dst, .. }
        | Op::BinImm { dst, .. }
        | Op::LoadLocal { dst, .. }
        | Op::AddrLocal { dst, .. }
        | Op::AddrGlobal { dst, .. }
        | Op::Load { dst, .. } => *dst = new,
        Op::Call { dst, .. } => *dst = Some(new),
        Op::StoreLocal { .. } | Op::Store { .. } | Op::Chk { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::Interpreter;
    use crate::verify::verify_module;

    fn sum_module() -> Module {
        let mut mb = ModuleBuilder::new();
        mb.function("sum", 1, true, |fb| {
            let n = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let a = fb.get(acc);
                let s = fb.add(a, iv);
                fb.set(acc, s);
            });
            let r = fb.get(acc);
            fb.ret(Some(r));
        });
        mb.finish().unwrap()
    }

    #[test]
    fn unrolled_loop_computes_same_result_for_all_trip_counts() {
        let m = sum_module();
        for n in 0..20u64 {
            let expected = Interpreter::new(&m).call_by_name("sum", &[n]).unwrap();
            let mut u = m.clone();
            unroll_loops(&mut u, 4);
            verify_module(&u).unwrap();
            let got = Interpreter::new(&u).call_by_name("sum", &[n]).unwrap();
            assert_eq!(got.return_value, expected.return_value, "n={n}");
        }
    }

    #[test]
    fn unrolling_reduces_dynamic_ops_for_long_loops() {
        let m = sum_module();
        let mut u = m.clone();
        unroll_loops(&mut u, 4);
        let base = Interpreter::new(&m).call_by_name("sum", &[1000]).unwrap();
        let fast = Interpreter::new(&u).call_by_name("sum", &[1000]).unwrap();
        assert!(
            fast.ops_executed < base.ops_executed,
            "unrolled {} >= rolled {}",
            fast.ops_executed,
            base.ops_executed
        );
    }

    #[test]
    fn unrolling_grows_static_code() {
        let m = sum_module();
        let mut u = m.clone();
        unroll_loops(&mut u, 4);
        assert!(u.functions[0].op_count() > m.functions[0].op_count());
    }

    #[test]
    fn negative_step_loops_unroll_correctly() {
        let mut mb = ModuleBuilder::new();
        mb.function("countdown", 1, true, |fb| {
            let start = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            // Loop from `start` down while i > 0 (bound local = 0).
            let zero_bound = fb.local_scalar();
            let zv = fb.const_(0);
            fb.set(zero_bound, zv);
            let i = fb.local_scalar();
            let sv = fb.get(start);
            fb.set(i, sv);
            // counted_loop writes start as a constant; emulate by hand:
            // reuse counted_loop with start=0 is wrong here, so build the
            // loop with the builder pattern via counted_loop on a copy.
            let n = fb.local_scalar();
            let sv2 = fb.get(start);
            fb.set(n, sv2);
            let j = fb.local_scalar();
            fb.counted_loop(j, 0, n, 1, |fb, jv| {
                let a = fb.get(acc);
                let s = fb.add(a, jv);
                fb.set(acc, s);
            });
            let r = fb.get(acc);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        let mut u = m.clone();
        unroll_loops(&mut u, 3);
        verify_module(&u).unwrap();
        for n in [0u64, 1, 2, 3, 7, 30] {
            let a = Interpreter::new(&m)
                .call_by_name("countdown", &[n])
                .unwrap();
            let b = Interpreter::new(&u)
                .call_by_name("countdown", &[n])
                .unwrap();
            assert_eq!(a.return_value, b.return_value, "n={n}");
        }
    }

    #[test]
    fn ineligible_loops_are_skipped() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 1, false, |fb| {
            let n = fb.param(0);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| fb.chk(iv));
            fb.ret(None);
        });
        let mut m = mb.finish().unwrap();
        // Corrupt the metadata: point the body at the header.
        let bad_body = m.functions[0].loops[0].header;
        m.functions[0].loops[0].body = bad_body;
        let before_blocks = m.functions[0].blocks.len();
        unroll_loops(&mut m, 4);
        assert_eq!(
            m.functions[0].blocks.len(),
            before_blocks,
            "invalid loop untouched"
        );
    }

    #[test]
    fn loop_metadata_is_consumed() {
        let m = sum_module();
        let mut u = m.clone();
        unroll_loops(&mut u, 2);
        assert!(u.functions[0].loops.is_empty());
    }
}
