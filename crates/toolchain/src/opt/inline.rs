//! Function inlining (enabled at `O3`).
//!
//! Call sites whose callee is small enough and not self-recursive are
//! replaced by a copy of the callee's CFG. Arguments flow through the
//! callee's parameter locals (appended to the caller's frame) and the
//! return value through a fresh result local, so the transformation needs
//! no SSA machinery: it is pure block surgery.

use crate::ir::{Block, BlockId, Function, LocalId, LocalSlot, Module, Op, Terminator, Val};

/// Upper bound on a caller's size after inlining; stops runaway growth when
/// small callees call other small callees.
const GROWTH_LIMIT: usize = 4096;

/// Inlines eligible call sites in every function of `m`.
///
/// A callee is eligible when its op count is at most `threshold` and it is
/// not directly self-recursive. Inlining is applied repeatedly (calls
/// exposed by earlier inlining are considered too) until no eligible site
/// remains or the growth limit is reached.
pub fn inline_functions(m: &mut Module, threshold: usize) {
    let inlinable: Vec<Option<Function>> = m
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| {
            // Callees containing loops are not inlined: their run time is
            // dominated by the loop, the call overhead is amortized, and
            // inlining them only floods the caller's register budget (the
            // same heuristic gcc's inliner applies).
            let eligible = !f.blocks.is_empty()
                && f.op_count() <= threshold
                && !has_cycle(f)
                && !f.calls(crate::ir::FuncId(i as u32));
            eligible.then(|| f.clone())
        })
        .collect();

    for f in &mut m.functions {
        let mut guard = 0;
        while f.op_count() < GROWTH_LIMIT && guard < 256 {
            guard += 1;
            let Some((bi, oi, callee_id)) = find_site(f, &inlinable) else {
                break;
            };
            let callee = inlinable[callee_id]
                .as_ref()
                .expect("checked by find_site")
                .clone();
            inline_at(f, bi, oi, &callee);
        }
    }
}

/// Whether the function's CFG contains a cycle (a real loop, not merely an
/// index-backward jump to an if/else join block): iterative DFS looking for
/// a grey-node edge.
fn has_cycle(f: &Function) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; f.blocks.len()];
    // Stack of (block, next-successor-index).
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = Color::Grey;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f.blocks[b].term.successors();
        if *next < succs.len() {
            let s = succs[*next].0 as usize;
            *next += 1;
            match color[s] {
                Color::Grey => return true,
                Color::White => {
                    color[s] = Color::Grey;
                    stack.push((s, 0));
                }
                Color::Black => {}
            }
        } else {
            color[b] = Color::Black;
            stack.pop();
        }
    }
    false
}

fn find_site(f: &Function, inlinable: &[Option<Function>]) -> Option<(usize, usize, usize)> {
    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            if let Op::Call { func, .. } = op {
                let id = func.0 as usize;
                if inlinable.get(id).is_some_and(Option::is_some)
                    && f.name != {
                        // Never inline a function into itself (mutual recursion
                        // through a small helper would otherwise loop forever).
                        inlinable[id].as_ref().expect("present").name.clone()
                    }
                {
                    return Some((bi, oi, id));
                }
            }
        }
    }
    None
}

fn inline_at(f: &mut Function, bi: usize, oi: usize, callee: &Function) {
    let local_base = f.locals.len() as u32;
    let val_base = f.next_val;
    f.next_val += callee.next_val;
    let block_base = f.blocks.len() as u32;
    let cont_id = BlockId(block_base + callee.blocks.len() as u32);

    // Result local, if the callee returns a value.
    let result_local = callee.returns_value.then(|| {
        f.locals.push(LocalSlot::scalar());
        LocalId(f.locals.len() as u32 - 1)
    });

    // Append the callee's locals (params first — they keep their order).
    for slot in &callee.locals {
        f.locals.push(slot.clone());
    }
    let param_local = |k: u32| LocalId(local_base + if callee.returns_value { 1 } else { 0 } + k);
    // NOTE: result local was pushed *before* callee locals, so callee local
    // `l` maps to `local_base + returns_as_u32 + l`.
    let local_off = local_base + u32::from(callee.returns_value);

    // Split the call block.
    let call_block = &mut f.blocks[bi];
    let mut tail_ops: Vec<Op> = call_block.ops.split_off(oi + 1);
    let call_op = call_block.ops.pop().expect("call op present");
    let (dst, args) = match call_op {
        Op::Call { dst, args, .. } => (dst, args),
        other => unreachable!("expected call at split point, found {other:?}"),
    };

    // Values defined before the call but used after it can no longer flow
    // directly (values are block-local); carry them through fresh locals,
    // renaming the uses in the tail.
    let pre_defs: std::collections::HashSet<Val> =
        call_block.ops.iter().filter_map(Op::def).collect();
    let mut tail_uses: std::collections::HashSet<Val> = std::collections::HashSet::new();
    for op in &tail_ops {
        tail_uses.extend(op.uses());
    }
    let mut original_term = std::mem::replace(
        &mut f.blocks[bi].term,
        Terminator::Jump(BlockId(block_base)),
    );
    tail_uses.extend(original_term.uses_for_rewrite());
    let mut carried_reloads: Vec<Op> = Vec::new();
    let mut renames: std::collections::HashMap<Val, Val> = std::collections::HashMap::new();
    // Carry in value order: set iteration order is process-random and the
    // emitted store/reload sequence (hence code layout) must not depend on it.
    let mut carried_vals: Vec<Val> = pre_defs
        .iter()
        .filter(|v| tail_uses.contains(v))
        .copied()
        .collect();
    carried_vals.sort_unstable();
    for v in carried_vals {
        f.locals.push(LocalSlot::scalar());
        let carry = LocalId(f.locals.len() as u32 - 1);
        f.blocks[bi].ops.push(Op::StoreLocal {
            local: carry,
            offset: 0,
            src: v,
        });
        let fresh = Val(f.next_val);
        f.next_val += 1;
        carried_reloads.push(Op::LoadLocal {
            dst: fresh,
            local: carry,
            offset: 0,
        });
        renames.insert(v, fresh);
    }
    if !renames.is_empty() {
        for op in &mut tail_ops {
            op.map_uses(|v| *renames.get(&v).unwrap_or(&v));
        }
        original_term.map_uses(|v| *renames.get(&v).unwrap_or(&v));
    }
    let call_block = &mut f.blocks[bi];
    // Pass arguments through the callee's parameter locals.
    for (k, &arg) in args.iter().enumerate() {
        call_block.ops.push(Op::StoreLocal {
            local: param_local(k as u32),
            offset: 0,
            src: arg,
        });
    }

    // Clone callee blocks with remapped ids.
    for cb in &callee.blocks {
        let mut ops: Vec<Op> = Vec::with_capacity(cb.ops.len() + 1);
        for op in &cb.ops {
            ops.push(remap_op(op, val_base, local_off));
        }
        let term = match &cb.term {
            Terminator::Jump(b) => Terminator::Jump(BlockId(b.0 + block_base)),
            Terminator::Branch {
                cond,
                a,
                b,
                then_block,
                else_block,
            } => Terminator::Branch {
                cond: *cond,
                a: Val(a.0 + val_base),
                b: Val(b.0 + val_base),
                then_block: BlockId(then_block.0 + block_base),
                else_block: BlockId(else_block.0 + block_base),
            },
            Terminator::Ret { value } => {
                if let (Some(v), Some(res)) = (value, result_local) {
                    ops.push(Op::StoreLocal {
                        local: res,
                        offset: 0,
                        src: Val(v.0 + val_base),
                    });
                }
                Terminator::Jump(cont_id)
            }
        };
        f.blocks.push(Block { ops, term });
    }

    // Continuation block: reload carried values and the result (if used),
    // then the tail.
    let mut cont_ops = Vec::with_capacity(tail_ops.len() + carried_reloads.len() + 1);
    cont_ops.extend(carried_reloads);
    if let (Some(d), Some(res)) = (dst, result_local) {
        cont_ops.push(Op::LoadLocal {
            dst: d,
            local: res,
            offset: 0,
        });
    }
    cont_ops.extend(tail_ops);
    f.blocks.push(Block {
        ops: cont_ops,
        term: original_term,
    });

    // Loop metadata: the split block can no longer be a single-block body;
    // callee loops come along with remapped ids.
    let bi_id = BlockId(bi as u32);
    f.loops.retain(|l| l.body != bi_id && l.header != bi_id);
    for l in &callee.loops {
        f.loops.push(crate::ir::LoopInfo {
            header: BlockId(l.header.0 + block_base),
            body: BlockId(l.body.0 + block_base),
            induction: LocalId(l.induction.0 + local_off),
        });
    }
}

fn remap_op(op: &Op, val_base: u32, local_off: u32) -> Op {
    let v = |x: Val| Val(x.0 + val_base);
    let l = |x: LocalId| LocalId(x.0 + local_off);
    match op {
        Op::Const { dst, value } => Op::Const {
            dst: v(*dst),
            value: *value,
        },
        Op::Bin { op, dst, a, b } => Op::Bin {
            op: *op,
            dst: v(*dst),
            a: v(*a),
            b: v(*b),
        },
        Op::BinImm { op, dst, a, imm } => Op::BinImm {
            op: *op,
            dst: v(*dst),
            a: v(*a),
            imm: *imm,
        },
        Op::LoadLocal { dst, local, offset } => Op::LoadLocal {
            dst: v(*dst),
            local: l(*local),
            offset: *offset,
        },
        Op::StoreLocal { local, offset, src } => Op::StoreLocal {
            local: l(*local),
            offset: *offset,
            src: v(*src),
        },
        Op::AddrLocal { dst, local } => Op::AddrLocal {
            dst: v(*dst),
            local: l(*local),
        },
        Op::AddrGlobal { dst, global } => Op::AddrGlobal {
            dst: v(*dst),
            global: *global,
        },
        Op::Load {
            width,
            dst,
            addr,
            offset,
        } => Op::Load {
            width: *width,
            dst: v(*dst),
            addr: v(*addr),
            offset: *offset,
        },
        Op::Store {
            width,
            addr,
            offset,
            src,
        } => Op::Store {
            width: *width,
            addr: v(*addr),
            offset: *offset,
            src: v(*src),
        },
        Op::Call { dst, func, args } => Op::Call {
            dst: dst.map(v),
            func: *func,
            args: args.iter().map(|a| v(*a)).collect(),
        },
        Op::Chk { src } => Op::Chk { src: v(*src) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::Interpreter;
    use crate::verify::verify_module;

    fn call_count(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, Op::Call { .. }))
            .count()
    }

    #[test]
    fn inlines_small_callee_and_preserves_semantics() {
        let mut mb = ModuleBuilder::new();
        let sq = mb.function("square", 1, true, |fb| {
            let x = fb.param(0);
            let v = fb.get(x);
            let v2 = fb.get(x);
            let p = fb.mul(v, v2);
            fb.ret(Some(p));
        });
        mb.function("main", 1, true, |fb| {
            let n = fb.param(0);
            let nv = fb.get(n);
            let a = fb.call(sq, &[nv]);
            let b = fb.add_imm(a, 1);
            fb.ret(Some(b));
        });
        let mut m = mb.finish().unwrap();
        let expected = Interpreter::new(&m).call_by_name("main", &[9]).unwrap();
        inline_functions(&mut m, 56);
        verify_module(&m).unwrap();
        let main = m.function_by_name("main").unwrap();
        assert_eq!(call_count(m.func(main)), 0, "call should be inlined");
        let got = Interpreter::new(&m).call_by_name("main", &[9]).unwrap();
        assert_eq!(got.return_value, expected.return_value);
        assert_eq!(got.return_value, Some(82));
    }

    #[test]
    fn does_not_inline_recursive_functions() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare("r", 1, true);
        mb.define(f, |fb| {
            let n = fb.param(0);
            let nv = fb.get(n);
            let one = fb.const_(1);
            let out = fb.local_scalar();
            fb.if_then_else(
                biaslab_isa::Cond::Lt,
                nv,
                one,
                |fb| {
                    let z = fb.const_(0);
                    fb.set(out, z);
                },
                |fb| {
                    let v = fb.get(n);
                    let v1 = fb.add_imm(v, -1);
                    let r = fb.call(f, &[v1]);
                    let s = fb.add_imm(r, 1);
                    fb.set(out, s);
                },
            );
            let r = fb.get(out);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        inline_functions(&mut m, 1000);
        verify_module(&m).unwrap();
        let id = m.function_by_name("r").unwrap();
        assert!(call_count(m.func(id)) > 0, "self-recursion must survive");
        let got = Interpreter::new(&m).call_by_name("r", &[5]).unwrap();
        assert_eq!(got.return_value, Some(5));
    }

    #[test]
    fn respects_threshold() {
        let mut mb = ModuleBuilder::new();
        let big = mb.function("big", 1, true, |fb| {
            let x = fb.param(0);
            let mut v = fb.get(x);
            for _ in 0..100 {
                v = fb.add_imm(v, 1);
            }
            fb.ret(Some(v));
        });
        mb.function("main", 0, true, |fb| {
            let z = fb.const_(0);
            let r = fb.call(big, &[z]);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        inline_functions(&mut m, 56);
        let main = m.function_by_name("main").unwrap();
        assert_eq!(
            call_count(m.func(main)),
            1,
            "callee above threshold stays a call"
        );
    }

    #[test]
    fn inlines_through_one_level_of_helpers() {
        let mut mb = ModuleBuilder::new();
        let inc = mb.function("inc", 1, true, |fb| {
            let x = fb.param(0);
            let v = fb.get(x);
            let r = fb.add_imm(v, 1);
            fb.ret(Some(r));
        });
        let twice = mb.function("twice", 1, true, |fb| {
            let x = fb.param(0);
            let v = fb.get(x);
            let a = fb.call(inc, &[v]);
            let b = fb.call(inc, &[a]);
            fb.ret(Some(b));
        });
        mb.function("main", 0, true, |fb| {
            let z = fb.const_(10);
            let r = fb.call(twice, &[z]);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        inline_functions(&mut m, 56);
        verify_module(&m).unwrap();
        let main = m.function_by_name("main").unwrap();
        assert_eq!(call_count(m.func(main)), 0);
        let got = Interpreter::new(&m).call_by_name("main", &[]).unwrap();
        assert_eq!(got.return_value, Some(12));
    }

    #[test]
    fn inlining_inside_loop_body_drops_loop_metadata() {
        let mut mb = ModuleBuilder::new();
        let id_fn = mb.function("id", 1, true, |fb| {
            let x = fb.param(0);
            let v = fb.get(x);
            fb.ret(Some(v));
        });
        mb.function("main", 1, true, |fb| {
            let n = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let r = fb.call(id_fn, &[iv]);
                let a = fb.get(acc);
                let s = fb.add(a, r);
                fb.set(acc, s);
            });
            let r = fb.get(acc);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        assert_eq!(m.functions[1].loops.len(), 1);
        let expected = Interpreter::new(&m).call_by_name("main", &[10]).unwrap();
        inline_functions(&mut m, 56);
        verify_module(&m).unwrap();
        let main_id = m.function_by_name("main").unwrap();
        assert!(
            m.func(main_id).loops.is_empty(),
            "split body invalidates loop"
        );
        let got = Interpreter::new(&m).call_by_name("main", &[10]).unwrap();
        assert_eq!(got.return_value, expected.return_value);
    }
}
