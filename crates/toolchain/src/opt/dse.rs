//! Dead-store elimination for local slots (block-local).
//!
//! A `StoreLocal` is dead when the same slot is overwritten later in the
//! same block with no intervening read that could observe it. Reads to
//! track: `LoadLocal` of the slot; for address-taken slots, any pointer
//! `Load` or `Call`; and — because slots are live across blocks — the
//! block's end counts as a read unless another store to the slot follows.

use std::collections::HashMap;

use crate::ir::{Function, LocalId, Op};

/// Runs dead-store elimination over every block of `f`.
pub fn dse_function(f: &mut Function) {
    let taken = f.address_taken_locals();
    for block in &mut f.blocks {
        // For each slot+offset, the index of the most recent store that has
        // not been observed yet. If another store arrives first, the old
        // one is dead.
        let mut pending: HashMap<(LocalId, u32), usize> = HashMap::new();
        let mut dead: Vec<usize> = Vec::new();
        for (i, op) in block.ops.iter().enumerate() {
            match op {
                Op::StoreLocal { local, offset, .. } => {
                    if let Some(prev) = pending.insert((*local, *offset), i) {
                        dead.push(prev);
                    }
                }
                Op::LoadLocal { local, offset, .. } => {
                    pending.remove(&(*local, *offset));
                }
                // A call or pointer load can observe address-taken slots.
                Op::Call { .. } | Op::Load { .. } => {
                    pending.retain(|(l, _), _| !taken[l.0 as usize]);
                }
                _ => {}
            }
        }
        // Stores still pending at block end stay: the slot is live-out.
        if dead.is_empty() {
            continue;
        }
        dead.sort_unstable();
        let mut keep = Vec::with_capacity(block.ops.len() - dead.len());
        let mut d = 0;
        for (i, op) in block.ops.drain(..).enumerate() {
            if d < dead.len() && dead[d] == i {
                d += 1;
            } else {
                keep.push(op);
            }
        }
        block.ops = keep;
    }
}

#[cfg(test)]
mod tests {
    use biaslab_isa::Width;

    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::Interpreter;
    use crate::ir::Module;

    fn store_count(m: &Module) -> usize {
        m.functions[0]
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, Op::StoreLocal { .. }))
            .count()
    }

    #[test]
    fn removes_overwritten_stores() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, true, |fb| {
            let s = fb.local_scalar();
            let a = fb.const_(1);
            fb.set(s, a); // dead
            let b = fb.const_(2);
            fb.set(s, b); // dead
            let c = fb.const_(3);
            fb.set(s, c); // live
            let r = fb.get(s);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        assert_eq!(store_count(&m), 3);
        dse_function(&mut m.functions[0]);
        assert_eq!(store_count(&m), 1);
        let out = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        assert_eq!(out.return_value, Some(3));
    }

    #[test]
    fn keeps_stores_with_intervening_reads() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, true, |fb| {
            let s = fb.local_scalar();
            let a = fb.const_(1);
            fb.set(s, a);
            let r1 = fb.get(s); // observes the first store
            let b = fb.const_(2);
            fb.set(s, b);
            let r2 = fb.get(s);
            let sum = fb.add(r1, r2);
            fb.ret(Some(sum));
        });
        let mut m = mb.finish().unwrap();
        dse_function(&mut m.functions[0]);
        assert_eq!(store_count(&m), 2);
        let out = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        assert_eq!(out.return_value, Some(3));
    }

    #[test]
    fn calls_observe_address_taken_slots() {
        let mut mb = ModuleBuilder::new();
        let reader = mb.function("reader", 1, true, |fb| {
            let p = fb.param(0);
            let pv = fb.get(p);
            let v = fb.load(Width::B8, pv, 0);
            fb.ret(Some(v));
        });
        mb.function("t", 0, true, |fb| {
            let s = fb.local_buffer(8);
            let addr = fb.addr(s);
            let a = fb.const_(11);
            fb.store(Width::B8, addr, 0, a);
            let seen = fb.call(reader, &[addr]);
            fb.chk(seen);
            let b = fb.const_(22);
            fb.store(Width::B8, addr, 0, b);
            let r = fb.load(Width::B8, addr, 0);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        let before = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        let id = m.function_by_name("t").unwrap().0 as usize;
        dse_function(&mut m.functions[id]);
        let after = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        assert_eq!(before.checksum, after.checksum);
        assert_eq!(after.return_value, Some(22));
    }

    #[test]
    fn live_out_stores_survive() {
        use biaslab_isa::Cond;
        let mut mb = ModuleBuilder::new();
        mb.function("t", 1, true, |fb| {
            let p = fb.param(0);
            let s = fb.local_scalar();
            let a = fb.const_(5);
            fb.set(s, a); // live-out: read in the join block
            let pv = fb.get(p);
            let zero = fb.const_(0);
            fb.if_then(Cond::Ne, pv, zero, |fb| {
                let b = fb.const_(9);
                fb.set(s, b);
            });
            let r = fb.get(s);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        dse_function(&mut m.functions[0]);
        let zero_case = Interpreter::new(&m).call_by_name("t", &[0]).unwrap();
        let one_case = Interpreter::new(&m).call_by_name("t", &[1]).unwrap();
        assert_eq!(zero_case.return_value, Some(5));
        assert_eq!(one_case.return_value, Some(9));
    }
}
