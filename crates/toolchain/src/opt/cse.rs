//! Local common-subexpression elimination by value numbering.
//!
//! Within each block, pure computations with identical operands are merged.
//! Loads participate with a generation scheme that tracks invalidation:
//!
//! * `LoadLocal` of slot `l` is valid until a `StoreLocal` to `l`, or — for
//!   address-taken slots — any pointer store or call.
//! * Pointer `Load`s are valid until any store or call.

use std::collections::HashMap;

use biaslab_isa::{AluOp, Width};

use crate::ir::{Function, LocalId, Op, Terminator, Val};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(u64),
    Bin(AluOp, Val, Val),
    BinImm(AluOp, Val, i64),
    AddrLocal(LocalId),
    AddrGlobal(u32),
    LoadLocal(LocalId, u32, u64),
    Load(Width, Val, i32, u64),
}

/// Runs local value numbering over every block of `f`.
pub fn cse_function(f: &mut Function) {
    let address_taken = f.address_taken_locals();
    for block in &mut f.blocks {
        let mut table: HashMap<Key, Val> = HashMap::new();
        let mut aliases: HashMap<Val, Val> = HashMap::new();
        let mut local_gen: HashMap<LocalId, u64> = HashMap::new();
        let mut mem_gen: u64 = 0;
        let mut gen_counter: u64 = 1;

        let resolve = |aliases: &HashMap<Val, Val>, mut v: Val| -> Val {
            while let Some(&next) = aliases.get(&v) {
                v = next;
            }
            v
        };

        for op in &mut block.ops {
            op.map_uses(|v| resolve(&aliases, v));

            let key = match op {
                Op::Const { value, .. } => Some(Key::Const(*value)),
                Op::Bin { op: alu, a, b, .. } => {
                    let (a, b) = if alu.is_commutative() && b < a {
                        (*b, *a)
                    } else {
                        (*a, *b)
                    };
                    Some(Key::Bin(*alu, a, b))
                }
                Op::BinImm {
                    op: alu, a, imm, ..
                } => Some(Key::BinImm(*alu, *a, *imm)),
                Op::AddrLocal { local, .. } => Some(Key::AddrLocal(*local)),
                Op::AddrGlobal { global, .. } => Some(Key::AddrGlobal(global.0)),
                Op::LoadLocal { local, offset, .. } => {
                    let g = *local_gen.entry(*local).or_insert(0);
                    let g = if address_taken[local.0 as usize] {
                        g.max(mem_gen)
                    } else {
                        g
                    };
                    Some(Key::LoadLocal(*local, *offset, g))
                }
                Op::Load {
                    width,
                    addr,
                    offset,
                    ..
                } => Some(Key::Load(*width, *addr, *offset, mem_gen)),
                _ => None,
            };

            // Invalidation side of the ledger.
            match op {
                Op::StoreLocal { local, .. } => {
                    gen_counter += 1;
                    local_gen.insert(*local, gen_counter);
                    if address_taken[local.0 as usize] {
                        mem_gen = gen_counter;
                    }
                }
                Op::Store { .. } | Op::Call { .. } => {
                    gen_counter += 1;
                    mem_gen = gen_counter;
                }
                _ => {}
            }

            if let (Some(key), Some(dst)) = (key, op.def()) {
                if let Some(&prior) = table.get(&key) {
                    aliases.insert(dst, prior);
                    // Leave a trivially-dead op so the def still exists for
                    // the verifier; DCE collects it.
                    *op = Op::BinImm {
                        op: AluOp::Add,
                        dst,
                        a: prior,
                        imm: 0,
                    };
                } else {
                    table.insert(key, dst);
                }
            }
        }

        match &mut block.term {
            Terminator::Branch { a, b, .. } => {
                *a = resolve(&aliases, *a);
                *b = resolve(&aliases, *b);
            }
            Terminator::Ret { value: Some(v) } => *v = resolve(&aliases, *v),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::Interpreter;
    use crate::opt::{self, OptLevel};

    fn count_loads(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, Op::LoadLocal { .. } | Op::Load { .. }))
            .count()
    }

    #[test]
    fn merges_identical_arithmetic() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 1, true, |fb| {
            let p = fb.param(0);
            let x = fb.get(p);
            let a = fb.mul_imm(x, 3);
            let y = fb.get(p); // duplicate load
            let b = fb.mul_imm(y, 3); // duplicate multiply
            let s = fb.add(a, b);
            fb.ret(Some(s));
        });
        let mut m = mb.finish().unwrap();
        let before = Interpreter::new(&m).call_by_name("t", &[7]).unwrap();
        cse_function(&mut m.functions[0]);
        super::super::dce::dce_function(&mut m.functions[0]);
        crate::verify::verify_module(&m).unwrap();
        let after = Interpreter::new(&m).call_by_name("t", &[7]).unwrap();
        assert_eq!(after.return_value, before.return_value);
        assert_eq!(
            count_loads(&m.functions[0]),
            1,
            "duplicate load should merge"
        );
    }

    #[test]
    fn store_invalidates_local_load() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, true, |fb| {
            let s = fb.local_scalar();
            let one = fb.const_(1);
            fb.set(s, one);
            let a = fb.get(s);
            let two = fb.const_(2);
            fb.set(s, two);
            let b = fb.get(s); // must NOT merge with `a`
            let sum = fb.add(a, b);
            fb.ret(Some(sum));
        });
        let mut m = mb.finish().unwrap();
        cse_function(&mut m.functions[0]);
        let out = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        assert_eq!(out.return_value, Some(3));
    }

    #[test]
    fn pointer_store_invalidates_pointer_loads() {
        use biaslab_isa::Width;
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, true, |fb| {
            let buf = fb.local_buffer(16);
            let p = fb.addr(buf);
            let v1 = fb.const_(10);
            fb.store(Width::B8, p, 0, v1);
            let a = fb.load(Width::B8, p, 0);
            let v2 = fb.const_(20);
            fb.store(Width::B8, p, 0, v2);
            let b = fb.load(Width::B8, p, 0); // must reload
            let sum = fb.add(a, b);
            fb.ret(Some(sum));
        });
        let mut m = mb.finish().unwrap();
        cse_function(&mut m.functions[0]);
        let out = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        assert_eq!(out.return_value, Some(30));
    }

    #[test]
    fn call_invalidates_address_taken_local() {
        let mut mb = ModuleBuilder::new();
        let writer = mb.function("writer", 1, false, |fb| {
            use biaslab_isa::Width;
            let p = fb.param(0);
            let pv = fb.get(p);
            let v = fb.const_(99);
            fb.store(Width::B8, pv, 0, v);
            fb.ret(None);
        });
        mb.function("t", 0, true, |fb| {
            let s = fb.local_buffer(8);
            let p = fb.addr(s);
            use biaslab_isa::Width;
            let v0 = fb.const_(1);
            fb.store(Width::B8, p, 0, v0);
            let a = fb.load(Width::B8, p, 0);
            fb.call_void(writer, &[p]);
            let b = fb.load(Width::B8, p, 0); // must see 99
            let sum = fb.add(a, b);
            fb.ret(Some(sum));
        });
        let mut m = mb.finish().unwrap();
        cse_function(&mut m.functions[1]);
        let out = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        assert_eq!(out.return_value, Some(100));
    }

    #[test]
    fn full_o2_pipeline_is_semantics_preserving_here() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 1, true, |fb| {
            let p = fb.param(0);
            let x = fb.get(p);
            let a = fb.mul_imm(x, 4);
            let y = fb.get(p);
            let b = fb.mul_imm(y, 4);
            let s = fb.add(a, b);
            fb.chk(s);
            fb.ret(Some(s));
        });
        let m = mb.finish().unwrap();
        let base = Interpreter::new(&m).call_by_name("t", &[11]).unwrap();
        let o2 = opt::optimize(&m, OptLevel::O2);
        let out = Interpreter::new(&o2).call_by_name("t", &[11]).unwrap();
        assert_eq!(out.return_value, base.return_value);
        assert_eq!(out.checksum, base.checksum);
    }
}
