//! Optimization levels and the pass pipeline.
//!
//! The pipeline mirrors the structure of a real compiler's `-O` ladder, and
//! the `O2`→`O3` step is the "optimization under test" in the paper's
//! running experiment:
//!
//! | Level | Passes |
//! |-------|--------|
//! | `O0`  | none (all locals in memory, naive code) |
//! | `O1`  | constant folding + algebraic simplification, dead-code elimination |
//! | `O2`  | `O1` + local value numbering (CSE), strength reduction, dead-store elimination, and register promotion of locals at code generation; functions aligned to 16 bytes |
//! | `O3`  | `O2` + inlining, loop unrolling (×4), loop-header alignment; functions aligned to 32 bytes |
//!
//! All passes preserve the reference semantics defined by
//! [`crate::interp::Interpreter`]; the workload test suite checks this
//! differentially for every benchmark at every level.

mod cse;
mod dce;
mod dse;
mod inline;
mod simplify;
mod unroll;

use serde::{Deserialize, Serialize};

use crate::ir::Module;

pub use inline::inline_functions;
pub use unroll::unroll_loops;

/// A compiler optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Basic clean-up: constant folding and dead-code elimination.
    O1,
    /// `O1` plus CSE, strength reduction and register-promoted locals.
    O2,
    /// `O2` plus inlining, ×4 loop unrolling and loop alignment.
    O3,
}

impl OptLevel {
    /// All levels, lowest first.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

    /// Whether the code generator may keep eligible locals in registers.
    #[must_use]
    pub fn promote_locals(self) -> bool {
        self >= OptLevel::O2
    }

    /// Code alignment (bytes) applied to every function by the linker.
    /// Mirrors gcc's growing `-falign-functions` defaults.
    #[must_use]
    pub fn function_align(self) -> u32 {
        match self {
            OptLevel::O0 | OptLevel::O1 => 4,
            OptLevel::O2 => 16,
            OptLevel::O3 => 32,
        }
    }

    /// Whether loop-header blocks are padded to a 16-byte fetch boundary.
    #[must_use]
    pub fn align_loops(self) -> bool {
        self == OptLevel::O3
    }

    /// The unroll factor applied to eligible counted loops, if any.
    #[must_use]
    pub fn unroll_factor(self) -> Option<u32> {
        (self == OptLevel::O3).then_some(4)
    }

    /// Maximum callee size (in IR ops) eligible for inlining, if any.
    #[must_use]
    pub fn inline_threshold(self) -> Option<usize> {
        (self == OptLevel::O3).then_some(180)
    }

    /// The conventional flag spelling, e.g. `"O2"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs the pass pipeline for `level` over a copy of `module`.
///
/// The input module is left untouched; the returned module is verified by
/// construction (each pass preserves the IR invariants).
#[must_use]
pub fn optimize(module: &Module, level: OptLevel) -> Module {
    let mut m = module.clone();
    if level == OptLevel::O0 {
        return m;
    }

    // Unroll before inlining: unrolling needs the single-block loop bodies
    // the builder recorded, and inlining splits blocks at call sites.
    if let Some(factor) = level.unroll_factor() {
        unroll::unroll_loops(&mut m, factor);
    }
    if let Some(threshold) = level.inline_threshold() {
        inline::inline_functions(&mut m, threshold);
    }

    let strength = level >= OptLevel::O2;
    for f in &mut m.functions {
        simplify::simplify_function(f, strength);
        if level >= OptLevel::O2 {
            cse::cse_function(f);
            simplify::simplify_function(f, strength);
            dse::dse_function(f);
        }
        dce::dce_function(f);
        dce::remove_unreachable_blocks(f);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::Interpreter;

    /// Build a module exercising all pass machinery, then check that every
    /// optimization level preserves its semantics.
    fn representative_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let helper = mb.function("double", 1, true, |fb| {
            let x = fb.param(0);
            let v = fb.get(x);
            let two = fb.const_(2);
            let d = fb.mul(v, two);
            fb.ret(Some(d));
        });
        mb.function("main", 1, true, |fb| {
            let n = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let a = fb.get(acc);
                let d = fb.call(helper, &[iv]);
                let s = fb.add(a, d);
                fb.set(acc, s);
                let s2 = fb.get(acc);
                fb.chk(s2);
            });
            let r = fb.get(acc);
            fb.ret(Some(r));
        });
        mb.finish().unwrap()
    }

    #[test]
    fn all_levels_preserve_semantics() {
        let m = representative_module();
        let baseline = Interpreter::new(&m).call_by_name("main", &[37]).unwrap();
        for level in OptLevel::ALL {
            let opt = optimize(&m, level);
            crate::verify::verify_module(&opt).unwrap_or_else(|e| panic!("{level}: {e}"));
            let out = Interpreter::new(&opt).call_by_name("main", &[37]).unwrap();
            assert_eq!(out.return_value, baseline.return_value, "{level}");
            assert_eq!(out.checksum, baseline.checksum, "{level}");
        }
    }

    #[test]
    fn o3_reduces_dynamic_op_count_for_compute_loops() {
        // IR op count captures the unrolling win; the inlining win (call
        // overhead) only appears at the machine level, so measure on a
        // call-free loop.
        let mut mb = ModuleBuilder::new();
        mb.function("main", 1, true, |fb| {
            let n = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let a = fb.get(acc);
                let t = fb.mul_imm(iv, 8);
                let s = fb.add(a, t);
                fb.set(acc, s);
            });
            let r = fb.get(acc);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        let base = Interpreter::new(&optimize(&m, OptLevel::O0))
            .call_by_name("main", &[200])
            .unwrap();
        let o3 = Interpreter::new(&optimize(&m, OptLevel::O3))
            .call_by_name("main", &[200])
            .unwrap();
        assert_eq!(o3.return_value, base.return_value);
        assert!(
            o3.ops_executed < base.ops_executed,
            "O3 ({}) should execute fewer IR ops than O0 ({})",
            o3.ops_executed,
            base.ops_executed
        );
    }

    #[test]
    fn level_properties_are_monotone() {
        assert!(!OptLevel::O1.promote_locals());
        assert!(OptLevel::O2.promote_locals());
        assert_eq!(OptLevel::O3.unroll_factor(), Some(4));
        assert_eq!(OptLevel::O2.unroll_factor(), None);
        assert!(OptLevel::O0.function_align() <= OptLevel::O2.function_align());
        assert!(OptLevel::O2.function_align() <= OptLevel::O3.function_align());
        assert_eq!(OptLevel::O2.to_string(), "O2");
    }

    #[test]
    fn optimize_does_not_mutate_input() {
        let m = representative_module();
        let before = m.clone();
        let _ = optimize(&m, OptLevel::O3);
        assert_eq!(m, before);
    }
}
