//! Constant folding, algebraic simplification, copy propagation and (at
//! `O2`+) strength reduction. All rewrites are block-local.

use std::collections::HashMap;

use biaslab_isa::AluOp;

use crate::ir::{Function, Op, Terminator, Val};

/// Runs simplification over every block of `f`.
///
/// When `strength` is set, multiplications by powers of two are reduced to
/// shifts (the classic strength reduction enabled at `O2`).
pub fn simplify_function(f: &mut Function, strength: bool) {
    for block in &mut f.blocks {
        let mut consts: HashMap<Val, u64> = HashMap::new();
        let mut aliases: HashMap<Val, Val> = HashMap::new();
        let resolve = |aliases: &HashMap<Val, Val>, mut v: Val| -> Val {
            while let Some(&next) = aliases.get(&v) {
                v = next;
            }
            v
        };

        for op in &mut block.ops {
            // Rewrite uses through the alias map first.
            op.map_uses(|v| resolve(&aliases, v));

            let rewritten: Option<Op> = match *op {
                Op::Const { dst, value } => {
                    consts.insert(dst, value);
                    None
                }
                Op::Bin { op: alu, dst, a, b } => {
                    match (consts.get(&a).copied(), consts.get(&b).copied()) {
                        (Some(ca), Some(cb)) => {
                            let value = alu.eval(ca, cb);
                            consts.insert(dst, value);
                            Some(Op::Const { dst, value })
                        }
                        (None, Some(cb)) => Some(Op::BinImm {
                            op: alu,
                            dst,
                            a,
                            imm: cb as i64,
                        }),
                        (Some(ca), None) if alu.is_commutative() => Some(Op::BinImm {
                            op: alu,
                            dst,
                            a: b,
                            imm: ca as i64,
                        }),
                        _ => None,
                    }
                }
                Op::BinImm {
                    op: alu,
                    dst,
                    a,
                    imm,
                } => {
                    if let Some(ca) = consts.get(&a).copied() {
                        let value = alu.eval(ca, imm as u64);
                        consts.insert(dst, value);
                        Some(Op::Const { dst, value })
                    } else {
                        algebraic(alu, dst, a, imm, strength, &mut aliases, &mut consts)
                    }
                }
                _ => None,
            };
            if let Some(new_op) = rewritten {
                *op = new_op;
                // A fresh BinImm may itself simplify (e.g. `x * 8` from a
                // folded const operand); run the algebraic step once more.
                if let Op::BinImm {
                    op: alu,
                    dst,
                    a,
                    imm,
                } = *op
                {
                    if let Some(better) =
                        algebraic(alu, dst, a, imm, strength, &mut aliases, &mut consts)
                    {
                        *op = better;
                    }
                }
            }
        }
        match &mut block.term {
            Terminator::Branch { a, b, .. } => {
                *a = resolve(&aliases, *a);
                *b = resolve(&aliases, *b);
            }
            Terminator::Ret { value: Some(v) } => *v = resolve(&aliases, *v),
            _ => {}
        }
        // Branch folding on constant operands.
        if let Terminator::Branch {
            cond,
            a,
            b,
            then_block,
            else_block,
        } = block.term.clone()
        {
            if let (Some(ca), Some(cb)) = (consts.get(&a), consts.get(&b)) {
                let target = if cond.eval(*ca, *cb) {
                    then_block
                } else {
                    else_block
                };
                block.term = Terminator::Jump(target);
            }
        }
    }
}

/// Algebraic identities on `dst = alu(a, imm)`. Returns a replacement op,
/// or records an alias (making the op dead) and returns `None`… except that
/// alias-only rewrites still need the op to remain for verifier validity,
/// so identities that alias return a no-op `BinImm Add a, 0` replacement.
fn algebraic(
    alu: AluOp,
    dst: Val,
    a: Val,
    imm: i64,
    strength: bool,
    aliases: &mut HashMap<Val, Val>,
    consts: &mut HashMap<Val, u64>,
) -> Option<Op> {
    let alias_to_a = |aliases: &mut HashMap<Val, Val>| {
        aliases.insert(dst, a);
        // Keep a trivially-dead def so every use-before-def invariant holds
        // for any remaining (unrewritten) user; DCE removes it.
        Some(Op::BinImm {
            op: AluOp::Add,
            dst,
            a,
            imm: 0,
        })
    };
    match (alu, imm) {
        (AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor, 0) => alias_to_a(aliases),
        (AluOp::Sll | AluOp::Srl | AluOp::Sra, 0) => alias_to_a(aliases),
        (AluOp::Mul | AluOp::Div, 1) => alias_to_a(aliases),
        (AluOp::Mul | AluOp::And, 0) => {
            consts.insert(dst, 0);
            Some(Op::Const { dst, value: 0 })
        }
        (AluOp::Mul, m) if strength && m > 1 && (m as u64).is_power_of_two() => Some(Op::BinImm {
            op: AluOp::Sll,
            dst,
            a,
            imm: (m as u64).trailing_zeros() as i64,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use biaslab_isa::Cond;

    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::Module;

    fn build(f: impl FnOnce(&mut crate::builder::FunctionBuilder)) -> Module {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, true, f);
        mb.finish().unwrap()
    }

    #[test]
    fn folds_constant_chains() {
        let mut m = build(|fb| {
            let a = fb.const_(6);
            let b = fb.const_(7);
            let c = fb.mul(a, b);
            fb.ret(Some(c));
        });
        simplify_function(&mut m.functions[0], false);
        let ops = &m.functions[0].blocks[0].ops;
        assert!(
            ops.iter().any(|o| matches!(o, Op::Const { value: 42, .. })),
            "expected folded 42, got {ops:?}"
        );
    }

    #[test]
    fn const_operand_becomes_immediate() {
        let mut m = build(|fb| {
            let s = fb.local_scalar();
            let x = fb.get(s);
            let c = fb.const_(5);
            let y = fb.add(x, c);
            fb.ret(Some(y));
        });
        simplify_function(&mut m.functions[0], false);
        let ops = &m.functions[0].blocks[0].ops;
        assert!(
            ops.iter().any(|o| matches!(
                o,
                Op::BinImm {
                    op: AluOp::Add,
                    imm: 5,
                    ..
                }
            )),
            "expected add-immediate, got {ops:?}"
        );
    }

    #[test]
    fn strength_reduction_rewrites_pow2_mul() {
        let mut m = build(|fb| {
            let s = fb.local_scalar();
            let x = fb.get(s);
            let y = fb.mul_imm(x, 8);
            fb.ret(Some(y));
        });
        let mut with = m.clone();
        simplify_function(&mut with.functions[0], true);
        assert!(with.functions[0].blocks[0].ops.iter().any(|o| matches!(
            o,
            Op::BinImm {
                op: AluOp::Sll,
                imm: 3,
                ..
            }
        )));

        simplify_function(&mut m.functions[0], false);
        assert!(m.functions[0].blocks[0].ops.iter().any(|o| matches!(
            o,
            Op::BinImm {
                op: AluOp::Mul,
                imm: 8,
                ..
            }
        )));
    }

    #[test]
    fn folds_branches_on_constants() {
        let mut mb = ModuleBuilder::new();
        mb.function("t", 0, true, |fb| {
            let a = fb.const_(1);
            let b = fb.const_(2);
            let out = fb.local_scalar();
            fb.if_then_else(
                Cond::Lt,
                a,
                b,
                |fb| {
                    let v = fb.const_(10);
                    fb.set(out, v);
                },
                |fb| {
                    let v = fb.const_(20);
                    fb.set(out, v);
                },
            );
            let r = fb.get(out);
            fb.ret(Some(r));
        });
        let mut m = mb.finish().unwrap();
        simplify_function(&mut m.functions[0], false);
        assert!(
            matches!(m.functions[0].blocks[0].term, Terminator::Jump(_)),
            "constant branch should fold to a jump"
        );
    }

    #[test]
    fn identity_add_zero_is_propagated() {
        let mut m = build(|fb| {
            let s = fb.local_scalar();
            let x = fb.get(s);
            let y = fb.add_imm(x, 0);
            let z = fb.add_imm(y, 3);
            fb.ret(Some(z));
        });
        simplify_function(&mut m.functions[0], false);
        // The add-3 must now read directly from the load's value.
        let ops = &m.functions[0].blocks[0].ops;
        let load_dst = ops
            .iter()
            .find_map(|o| match o {
                Op::LoadLocal { dst, .. } => Some(*dst),
                _ => None,
            })
            .unwrap();
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::BinImm { imm: 3, a, .. } if *a == load_dst)));
    }

    #[test]
    fn semantics_preserved_on_random_expression() {
        use crate::interp::Interpreter;
        let m = build(|fb| {
            let s = fb.local_scalar();
            let c9 = fb.const_(9);
            fb.set(s, c9);
            let x = fb.get(s);
            let a = fb.mul_imm(x, 16);
            let b = fb.add_imm(a, 0);
            let c = fb.bin_imm(AluOp::Xor, b, 0b1010);
            let d = fb.bin(AluOp::Sub, c, x);
            fb.ret(Some(d));
        });
        let expected = Interpreter::new(&m).call_by_name("t", &[]).unwrap();
        let mut opt = m.clone();
        simplify_function(&mut opt.functions[0], true);
        crate::verify::verify_module(&opt).unwrap();
        let got = Interpreter::new(&opt).call_by_name("t", &[]).unwrap();
        assert_eq!(got.return_value, expected.return_value);
    }
}
