//! Relocatable object files.
//!
//! The code generator produces one [`ObjectFile`] per function. The linker
//! concatenates them **in the order given** — the property behind the
//! paper's link-order bias — resolving two relocation kinds:
//!
//! * [`RelocKind::Call`]: patches the pc-relative offset of a `jal` once the
//!   callee's address is known;
//! * [`RelocKind::GpAdd`]: patches the 16-bit immediate of an instruction
//!   computing `gp + offset(global)`.
//!
//! Object files have a simple binary serialization (exercised by round-trip
//! tests) so they can be cached or shipped like real `.o` files.

use std::fmt;

use biaslab_isa::{decode, encode, Inst};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::ir::Global;
use crate::opt::OptLevel;

/// A relocation to apply at link time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reloc {
    /// Index of the instruction to patch within the object's code.
    pub at: usize,
    /// What to patch it with.
    pub kind: RelocKind,
}

/// The kind of a relocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelocKind {
    /// Patch a `jal`'s offset to reach the named function.
    Call {
        /// Callee symbol name.
        symbol: String,
    },
    /// Patch a 16-bit immediate with `address(symbol) + addend - gp`.
    /// Only valid for globals within the ±32 KiB gp window.
    GpAdd {
        /// Global symbol name.
        symbol: String,
        /// Constant addend in bytes.
        addend: i32,
    },
    /// Patch a `lui`/`ori` pair (at `at` and `at + 1`) with the full 32-bit
    /// address of the symbol. Used for globals beyond the gp window.
    AbsAddr {
        /// Global symbol name.
        symbol: String,
        /// Constant addend in bytes.
        addend: i32,
    },
}

/// One function's relocatable code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectFile {
    /// The defined symbol (function name).
    pub symbol: String,
    /// Code with unresolved placeholder offsets where relocations apply.
    pub code: Vec<Inst>,
    /// Start alignment requested by the compiler (power of two).
    pub align: u32,
    /// Relocations to resolve at link time.
    pub relocs: Vec<Reloc>,
}

impl ObjectFile {
    /// Code size in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        (self.code.len() * 4) as u32
    }

    /// Serializes to the on-disk object format.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0x4F_42_4C_42); // "BLBO"
        put_str(&mut buf, &self.symbol);
        buf.put_u32_le(self.align);
        buf.put_u32_le(self.code.len() as u32);
        for &inst in &self.code {
            buf.put_u32_le(encode(inst));
        }
        buf.put_u32_le(self.relocs.len() as u32);
        for r in &self.relocs {
            buf.put_u32_le(r.at as u32);
            match &r.kind {
                RelocKind::Call { symbol } => {
                    buf.put_u8(0);
                    put_str(&mut buf, symbol);
                }
                RelocKind::GpAdd { symbol, addend } => {
                    buf.put_u8(1);
                    put_str(&mut buf, symbol);
                    buf.put_i32_le(*addend);
                }
                RelocKind::AbsAddr { symbol, addend } => {
                    buf.put_u8(2);
                    put_str(&mut buf, symbol);
                    buf.put_i32_le(*addend);
                }
            }
        }
        buf.freeze()
    }

    /// Deserializes the on-disk object format.
    ///
    /// # Errors
    ///
    /// Returns [`ObjFormatError`] on a bad magic number, truncated input or
    /// undecodable instruction.
    pub fn from_bytes(mut data: Bytes) -> Result<ObjectFile, ObjFormatError> {
        let magic = get_u32(&mut data)?;
        if magic != 0x4F_42_4C_42 {
            return Err(ObjFormatError::BadMagic(magic));
        }
        let symbol = get_str(&mut data)?;
        let align = get_u32(&mut data)?;
        let n_code = get_u32(&mut data)? as usize;
        if data.remaining() < n_code.saturating_mul(4) {
            // Bound the claimed count by the bytes actually present before
            // allocating, so corrupted headers cannot trigger huge
            // allocations.
            return Err(ObjFormatError::Truncated);
        }
        let mut code = Vec::with_capacity(n_code);
        for _ in 0..n_code {
            let word = get_u32(&mut data)?;
            code.push(decode(word).map_err(|_| ObjFormatError::BadInstruction(word))?);
        }
        let n_relocs = get_u32(&mut data)? as usize;
        // Each serialized relocation is at least 9 bytes.
        if data.remaining() < n_relocs.saturating_mul(9) {
            return Err(ObjFormatError::Truncated);
        }
        let mut relocs = Vec::with_capacity(n_relocs);
        for _ in 0..n_relocs {
            let at = get_u32(&mut data)? as usize;
            let tag = get_u8(&mut data)?;
            let kind = match tag {
                0 => RelocKind::Call {
                    symbol: get_str(&mut data)?,
                },
                1 | 2 => {
                    let symbol = get_str(&mut data)?;
                    if data.remaining() < 4 {
                        return Err(ObjFormatError::Truncated);
                    }
                    let addend = data.get_i32_le();
                    if tag == 1 {
                        RelocKind::GpAdd { symbol, addend }
                    } else {
                        RelocKind::AbsAddr { symbol, addend }
                    }
                }
                t => return Err(ObjFormatError::BadRelocTag(t)),
            };
            relocs.push(Reloc { at, kind });
        }
        Ok(ObjectFile {
            symbol,
            code,
            align,
            relocs,
        })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_u8(data: &mut Bytes) -> Result<u8, ObjFormatError> {
    if data.remaining() < 1 {
        return Err(ObjFormatError::Truncated);
    }
    Ok(data.get_u8())
}

fn get_u32(data: &mut Bytes) -> Result<u32, ObjFormatError> {
    if data.remaining() < 4 {
        return Err(ObjFormatError::Truncated);
    }
    Ok(data.get_u32_le())
}

fn get_str(data: &mut Bytes) -> Result<String, ObjFormatError> {
    let len = get_u32(data)? as usize;
    if data.remaining() < len {
        return Err(ObjFormatError::Truncated);
    }
    let raw = data.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| ObjFormatError::BadString)
}

/// Error decoding a serialized object file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjFormatError {
    /// Wrong magic number.
    BadMagic(u32),
    /// Input ended early.
    Truncated,
    /// An instruction word failed to decode.
    BadInstruction(u32),
    /// Unknown relocation tag.
    BadRelocTag(u8),
    /// Symbol name was not UTF-8.
    BadString,
}

impl fmt::Display for ObjFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjFormatError::BadMagic(m) => write!(f, "bad object magic {m:#010x}"),
            ObjFormatError::Truncated => f.write_str("truncated object file"),
            ObjFormatError::BadInstruction(w) => write!(f, "undecodable instruction {w:#010x}"),
            ObjFormatError::BadRelocTag(t) => write!(f, "unknown relocation tag {t}"),
            ObjFormatError::BadString => f.write_str("symbol name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ObjFormatError {}

/// The output of compiling a whole module: one object per function plus the
/// module's globals, in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledModule {
    /// One object per function, in the module's declaration order. Permute
    /// this vector (or pass an order to the linker) to exercise link-order
    /// bias.
    pub objects: Vec<ObjectFile>,
    /// Module globals, laid out by the linker in this order.
    pub globals: Vec<Global>,
    /// The optimization level the module was compiled at.
    pub level: OptLevel,
}

impl CompiledModule {
    /// Total text size in bytes, before link-time alignment padding.
    #[must_use]
    pub fn code_size(&self) -> u32 {
        self.objects.iter().map(ObjectFile::size).sum()
    }

    /// Index of the object defining `symbol`.
    #[must_use]
    pub fn object_index(&self, symbol: &str) -> Option<usize> {
        self.objects.iter().position(|o| o.symbol == symbol)
    }
}

#[cfg(test)]
mod tests {
    use biaslab_isa::{AluOp, Reg};

    use super::*;

    fn sample() -> ObjectFile {
        ObjectFile {
            symbol: "f".into(),
            code: vec![
                Inst::AluImm {
                    op: AluOp::Add,
                    rd: Reg::r(1),
                    rs1: Reg::ZERO,
                    imm: 5,
                },
                Inst::Jal {
                    rd: Reg::RA,
                    offset: 0,
                },
                Inst::Jalr {
                    rd: Reg::ZERO,
                    rs1: Reg::RA,
                    offset: 0,
                },
            ],
            align: 16,
            relocs: vec![
                Reloc {
                    at: 1,
                    kind: RelocKind::Call { symbol: "g".into() },
                },
                Reloc {
                    at: 0,
                    kind: RelocKind::GpAdd {
                        symbol: "tbl".into(),
                        addend: 8,
                    },
                },
                Reloc {
                    at: 0,
                    kind: RelocKind::AbsAddr {
                        symbol: "big".into(),
                        addend: -4,
                    },
                },
            ],
        }
    }

    #[test]
    fn roundtrip_serialization() {
        let obj = sample();
        let bytes = obj.to_bytes();
        let back = ObjectFile::from_bytes(bytes).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut raw = sample().to_bytes().to_vec();
        raw[0] ^= 0xFF;
        let err = ObjectFile::from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, ObjFormatError::BadMagic(_)));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let full = sample().to_bytes();
        for len in 0..full.len() {
            let err = ObjectFile::from_bytes(full.slice(0..len)).unwrap_err();
            assert!(
                matches!(err, ObjFormatError::Truncated | ObjFormatError::BadMagic(_)),
                "len {len}: {err}"
            );
        }
    }

    #[test]
    fn size_counts_bytes() {
        assert_eq!(sample().size(), 12);
    }

    #[test]
    fn compiled_module_lookup() {
        let cm = CompiledModule {
            objects: vec![sample()],
            globals: vec![],
            level: OptLevel::O2,
        };
        assert_eq!(cm.object_index("f"), Some(0));
        assert_eq!(cm.object_index("missing"), None);
        assert_eq!(cm.code_size(), 12);
    }
}
