//! The linker: object files, **in the order given**, to an executable.
//!
//! Exactly like `ld`, the linker concatenates text sections in argument
//! order, honouring each object's alignment request. Permuting the order
//! therefore moves every function's address — and with them every
//! branch-predictor index, BTB set and I-cache set those addresses map to.
//! This is the mechanism behind the paper's link-order bias, reproduced
//! here byte for byte.
//!
//! The linker also emits a two-instruction startup shim (`jal entry; halt`)
//! at the very start of the text segment, assigns globals their addresses
//! (fixed declaration order, independent of link order) and resolves all
//! relocations.

use std::collections::HashMap;
use std::fmt;

use biaslab_isa::{Inst, Reg};
use serde::{Deserialize, Serialize};

use crate::layout::{align_up, layout_globals, GP_VALUE, TEXT_BASE, TEXT_MAX};
use crate::obj::{CompiledModule, RelocKind};
use crate::opt::OptLevel;

/// A linked symbol: name, start address and size in bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Start address.
    pub addr: u32,
    /// Size in bytes.
    pub size: u32,
}

/// A fully linked program image.
#[derive(Debug, Clone)]
pub struct Executable {
    text_base: u32,
    insts: Vec<Inst>,
    data_base: u32,
    data: Vec<u8>,
    gp: u32,
    entry: u32,
    symbols: Vec<Symbol>,
    level: OptLevel,
    generation: u64,
}

impl Executable {
    /// Base address of the text segment.
    #[must_use]
    #[inline]
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// The linked instructions, in address order from
    /// [`Executable::text_base`].
    #[must_use]
    #[inline]
    pub fn text(&self) -> &[Inst] {
        &self.insts
    }

    /// Text size in bytes.
    #[must_use]
    pub fn text_size(&self) -> u32 {
        (self.insts.len() * 4) as u32
    }

    /// The instruction at `addr`, if it lies within the text segment.
    #[must_use]
    #[inline]
    pub fn inst_at(&self, addr: u32) -> Option<Inst> {
        if addr < self.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        self.insts
            .get(((addr - self.text_base) / 4) as usize)
            .copied()
    }

    /// Base address of the data segment.
    #[must_use]
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// The initialized data image (zero-fill beyond each global's
    /// initializer is implicit).
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The global-pointer value the ABI expects in `gp`.
    #[must_use]
    pub fn gp(&self) -> u32 {
        self.gp
    }

    /// The program entry point (the startup shim).
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// All linked symbols (functions then globals), in address order.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// The image generation stamped at link time: a process-wide monotonic
    /// counter ([`crate::load::next_image_generation`]) that identifies
    /// this exact code layout. Two links — even of identical inputs —
    /// never share a generation, which is what lets downstream decoded
    /// caches (the simulator's basic-block trace cache) invalidate
    /// wholesale instead of diffing text.
    #[must_use]
    #[inline]
    pub fn image_generation(&self) -> u64 {
        self.generation
    }

    /// The optimization level this executable was compiled at.
    #[must_use]
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Looks up a symbol by name.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// The function symbol containing `addr`, if any.
    #[must_use]
    pub fn function_at(&self, addr: u32) -> Option<&Symbol> {
        self.symbols
            .iter()
            .find(|s| s.addr <= addr && addr < s.addr + s.size && s.addr >= self.text_base)
    }

    /// A human-readable disassembly of the whole text segment.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let addr = self.text_base + (i as u32) * 4;
            if let Some(sym) = self.symbols.iter().find(|s| s.addr == addr) {
                let _ = writeln!(out, "{}:", sym.name);
            }
            let _ = writeln!(out, "  {addr:#010x}  {inst}");
        }
        out
    }
}

/// Linker failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A relocation referenced an undefined symbol.
    UnknownSymbol(String),
    /// The entry symbol is not defined by any object.
    UnknownEntry(String),
    /// The text segment exceeded [`TEXT_MAX`].
    TextTooLarge(u32),
    /// The supplied object order is not a permutation of `0..n`.
    BadOrder,
    /// A gp-relative relocation target is out of the ±32 KiB window.
    GpOffsetOutOfRange(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::UnknownSymbol(s) => write!(f, "undefined symbol `{s}`"),
            LinkError::UnknownEntry(s) => write!(f, "entry symbol `{s}` not defined"),
            LinkError::TextTooLarge(n) => write!(f, "text segment of {n} bytes exceeds maximum"),
            LinkError::BadOrder => f.write_str("object order is not a permutation"),
            LinkError::GpOffsetOutOfRange(s) => {
                write!(f, "global `{s}` outside the gp-relative window")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Links [`CompiledModule`]s into [`Executable`]s.
///
/// # Examples
///
/// Linking the same objects in two different orders produces executables
/// with identical behaviour but different code addresses:
///
/// ```
/// use biaslab_toolchain::{codegen, link::Linker, opt, ModuleBuilder, OptLevel};
///
/// let mut mb = ModuleBuilder::new();
/// mb.function("a", 0, false, |fb| fb.ret(None));
/// mb.function("main", 0, false, |fb| fb.ret(None));
/// let m = mb.finish()?;
/// let cm = codegen::compile(&opt::optimize(&m, OptLevel::O2), OptLevel::O2);
///
/// let e1 = Linker::new().link(&cm, "main")?;
/// let e2 = Linker::new().object_order(vec![1, 0]).link(&cm, "main")?;
/// assert_ne!(e1.symbol("main").unwrap().addr, e2.symbol("main").unwrap().addr);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Linker {
    text_offset: u32,
    order: Option<Vec<usize>>,
    pads: Vec<(String, u32)>,
    align_overrides: Vec<(String, u32)>,
}

impl Linker {
    /// A linker with default layout (identity order, no base offset).
    #[must_use]
    pub fn new() -> Linker {
        Linker::default()
    }

    /// Shifts the text segment base by `offset` bytes (rounded up to 4).
    /// Used by the ASLR-style ablation experiments.
    #[must_use]
    pub fn text_offset(mut self, offset: u32) -> Linker {
        self.text_offset = align_up(offset, 4);
        self
    }

    /// Lays out objects in the given order (a permutation of `0..n`).
    #[must_use]
    pub fn object_order(mut self, order: Vec<usize>) -> Linker {
        self.order = Some(order);
        self
    }

    /// Inserts `bytes` of never-executed padding (rounded up to 4)
    /// immediately *before* `symbol`, after its alignment is applied —
    /// so the symbol lands exactly `bytes` past its aligned address and
    /// everything behind it shifts. This is the `biaslint` "padding"
    /// remedy: the gap is nop-filled and unreachable, so program
    /// behavior is untouched and only layout-driven counters can move.
    /// Unknown symbols are ignored (checked at link time by name match).
    #[must_use]
    pub fn pad_symbol(mut self, symbol: &str, bytes: u32) -> Linker {
        self.pads.push((symbol.to_owned(), align_up(bytes, 4)));
        self
    }

    /// Raises `symbol`'s placement alignment to `align` bytes (rounded
    /// up to a power of two, minimum 4) — the `biaslint`
    /// "alignment-directive" remedy, the moral equivalent of
    /// `.p2align` on a function entry.
    #[must_use]
    pub fn align_symbol(mut self, symbol: &str, align: u32) -> Linker {
        self.align_overrides
            .push((symbol.to_owned(), align.next_power_of_two().max(4)));
        self
    }

    /// Links a compiled module.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] for undefined symbols, an invalid order, or
    /// an oversized segment.
    pub fn link(&self, cm: &CompiledModule, entry: &str) -> Result<Executable, LinkError> {
        let n = cm.objects.len();
        let order: Vec<usize> = match &self.order {
            Some(o) => {
                let mut seen = vec![false; n];
                if o.len() != n
                    || o.iter()
                        .any(|&i| i >= n || std::mem::replace(&mut seen[i], true))
                {
                    return Err(LinkError::BadOrder);
                }
                o.clone()
            }
            None => (0..n).collect(),
        };
        if cm.object_index(entry).is_none() {
            return Err(LinkError::UnknownEntry(entry.to_owned()));
        }

        let text_base = TEXT_BASE + self.text_offset;
        // Startup shim: jal ra, entry; halt.
        let shim_len: u32 = 2 * 4;

        // First pass: assign addresses.
        let mut addr = text_base + shim_len;
        let mut func_addrs: HashMap<&str, u32> = HashMap::new();
        let mut placed: Vec<(usize, u32)> = Vec::with_capacity(n);
        for &idx in &order {
            let obj = &cm.objects[idx];
            let align = self
                .align_overrides
                .iter()
                .filter(|(s, _)| *s == obj.symbol)
                .map(|&(_, a)| a)
                .fold(obj.align.max(4), u32::max);
            addr = align_up(addr, align);
            for (s, pad) in &self.pads {
                if *s == obj.symbol {
                    addr += pad;
                }
            }
            func_addrs.insert(obj.symbol.as_str(), addr);
            placed.push((idx, addr));
            addr += obj.size();
        }
        let text_size = addr - text_base;
        if text_size > TEXT_MAX {
            return Err(LinkError::TextTooLarge(text_size));
        }

        // Globals (declaration order; link order moves only code).
        let global_addrs = layout_globals(&cm.globals);
        let mut global_map: HashMap<&str, u32> = HashMap::new();
        for (g, &a) in cm.globals.iter().zip(&global_addrs) {
            global_map.insert(g.name.as_str(), a);
        }

        // Second pass: emit with relocations applied.
        let mut insts = vec![Inst::Nop; (text_size / 4) as usize];
        let entry_addr = func_addrs[entry];
        insts[0] = Inst::Jal {
            rd: Reg::RA,
            offset: entry_addr as i32 - (text_base as i32 + 4),
        };
        insts[1] = Inst::Halt;

        for &(idx, base) in &placed {
            let obj = &cm.objects[idx];
            let word0 = ((base - text_base) / 4) as usize;
            insts[word0..word0 + obj.code.len()].copy_from_slice(&obj.code);
            for reloc in &obj.relocs {
                let at = word0 + reloc.at;
                let inst_addr = text_base + (at as u32) * 4;
                match &reloc.kind {
                    RelocKind::Call { symbol } => {
                        let target = *func_addrs
                            .get(symbol.as_str())
                            .ok_or_else(|| LinkError::UnknownSymbol(symbol.clone()))?;
                        let delta = target as i64 - (i64::from(inst_addr) + 4);
                        match &mut insts[at] {
                            Inst::Jal { offset, .. } => *offset = delta as i32,
                            other => unreachable!("call reloc on non-jal {other}"),
                        }
                    }
                    RelocKind::AbsAddr { symbol, addend } => {
                        let target = *global_map
                            .get(symbol.as_str())
                            .ok_or_else(|| LinkError::UnknownSymbol(symbol.clone()))?;
                        let full = (i64::from(target) + i64::from(*addend)) as u32;
                        match &mut insts[at] {
                            Inst::Lui { imm, .. } => *imm = (full >> 16) as u16,
                            other => unreachable!("abs reloc on non-lui {other}"),
                        }
                        match &mut insts[at + 1] {
                            Inst::AluImm { imm, .. } => *imm = (full & 0xFFFF) as u16 as i16,
                            other => unreachable!("abs reloc pair on {other}"),
                        }
                    }
                    RelocKind::GpAdd { symbol, addend } => {
                        let target = *global_map
                            .get(symbol.as_str())
                            .ok_or_else(|| LinkError::UnknownSymbol(symbol.clone()))?;
                        let off = i64::from(target) + i64::from(*addend) - i64::from(GP_VALUE);
                        let off = i16::try_from(off)
                            .map_err(|_| LinkError::GpOffsetOutOfRange(symbol.clone()))?;
                        match &mut insts[at] {
                            Inst::AluImm { imm, .. }
                            | Inst::Load { offset: imm, .. }
                            | Inst::Store { offset: imm, .. } => *imm = off,
                            other => unreachable!("gp reloc on {other}"),
                        }
                    }
                }
            }
        }

        // Data image.
        let data_size = global_addrs
            .last()
            .zip(cm.globals.last())
            .map_or(0, |(&a, g)| a + g.size - crate::layout::DATA_BASE);
        let mut data = vec![0u8; data_size as usize];
        for (g, &a) in cm.globals.iter().zip(&global_addrs) {
            let start = (a - crate::layout::DATA_BASE) as usize;
            data[start..start + g.init.len()].copy_from_slice(&g.init);
        }

        // Symbol table: shim, functions, globals.
        let mut symbols = vec![Symbol {
            name: "__start".into(),
            addr: text_base,
            size: shim_len,
        }];
        for &(idx, base) in &placed {
            let obj = &cm.objects[idx];
            symbols.push(Symbol {
                name: obj.symbol.clone(),
                addr: base,
                size: obj.size(),
            });
        }
        for (g, &a) in cm.globals.iter().zip(&global_addrs) {
            symbols.push(Symbol {
                name: g.name.clone(),
                addr: a,
                size: g.size,
            });
        }

        Ok(Executable {
            text_base,
            insts,
            data_base: crate::layout::DATA_BASE,
            data,
            gp: GP_VALUE,
            entry: text_base,
            symbols,
            level: cm.level,
            generation: crate::load::next_image_generation(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::codegen::compile;
    use crate::ir::Global;
    use crate::opt::{optimize, OptLevel};

    fn sample_module() -> crate::ir::Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.global(Global::from_words("tbl", &[5, 6, 7]));
        let helper = mb.function("helper", 1, true, |fb| {
            let x = fb.param(0);
            let v = fb.get(x);
            let base = fb.addr_global(g);
            let off = fb.mul_imm(v, 8);
            let a = fb.add(base, off);
            let r = fb.load(biaslab_isa::Width::B8, a, 0);
            fb.ret(Some(r));
        });
        mb.function("main", 0, true, |fb| {
            let one = fb.const_(1);
            let r = fb.call(helper, &[one]);
            fb.chk(r);
            fb.ret(Some(r));
        });
        mb.finish().unwrap()
    }

    fn compiled(level: OptLevel) -> CompiledModule {
        compile(&optimize(&sample_module(), level), level)
    }

    #[test]
    fn links_and_places_shim_first() {
        let exe = Linker::new().link(&compiled(OptLevel::O2), "main").unwrap();
        assert_eq!(exe.entry(), exe.text_base());
        assert!(matches!(exe.text()[0], Inst::Jal { .. }));
        assert!(matches!(exe.text()[1], Inst::Halt));
        assert_eq!(exe.symbol("__start").unwrap().addr, exe.text_base());
    }

    #[test]
    fn functions_are_aligned_per_level() {
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            let exe = Linker::new().link(&compiled(level), "main").unwrap();
            let align = level.function_align().max(4);
            for name in ["helper", "main"] {
                assert_eq!(
                    exe.symbol(name).unwrap().addr % align,
                    0,
                    "{name} at {level}"
                );
            }
        }
    }

    #[test]
    fn link_order_moves_function_addresses() {
        let cm = compiled(OptLevel::O2);
        let e1 = Linker::new().link(&cm, "main").unwrap();
        let e2 = Linker::new()
            .object_order(vec![1, 0])
            .link(&cm, "main")
            .unwrap();
        assert_ne!(
            e1.symbol("main").unwrap().addr,
            e2.symbol("main").unwrap().addr
        );
        // Globals do not move with link order.
        assert_eq!(
            e1.symbol("tbl").unwrap().addr,
            e2.symbol("tbl").unwrap().addr
        );
    }

    #[test]
    fn text_offset_shifts_everything() {
        let cm = compiled(OptLevel::O2);
        let e1 = Linker::new().link(&cm, "main").unwrap();
        let e2 = Linker::new().text_offset(64).link(&cm, "main").unwrap();
        assert_eq!(e2.text_base(), e1.text_base() + 64);
        assert_eq!(
            e2.symbol("main").unwrap().addr % 16,
            e1.symbol("main").unwrap().addr % 16,
            "64 is a multiple of the alignment, so congruence is preserved"
        );
    }

    #[test]
    fn pad_symbol_shifts_exactly_past_the_aligned_address() {
        let cm = compiled(OptLevel::O2);
        let base = Linker::new().link(&cm, "main").unwrap();
        let padded = Linker::new()
            .pad_symbol("main", 12)
            .link(&cm, "main")
            .unwrap();
        assert_eq!(
            padded.symbol("main").unwrap().addr,
            base.symbol("main").unwrap().addr + 12
        );
        // The pad lands in a never-executed nop-filled gap, and the
        // program still computes the same result (relocations re-resolve
        // against the shifted addresses).
        let main_base = base.symbol("main").unwrap();
        for gap in 0..3 {
            assert_eq!(padded.inst_at(main_base.addr + gap * 4).unwrap(), Inst::Nop);
        }
        use crate::load::{Environment, Loader};
        let run = |e: &Executable| {
            let p = Loader::new().load(e, &Environment::new(), &[]).unwrap();
            biaslab_uarch_stub_run(e, p)
        };
        assert_eq!(run(&base), run(&padded));
        // Unknown symbols are a no-op, and pads round up to 4.
        let noop = Linker::new()
            .pad_symbol("nonesuch", 8)
            .link(&cm, "main")
            .unwrap();
        assert_eq!(noop.symbol("main").unwrap().addr, main_base.addr);
        let rounded = Linker::new()
            .pad_symbol("main", 5)
            .link(&cm, "main")
            .unwrap();
        assert_eq!(rounded.symbol("main").unwrap().addr, main_base.addr + 8);
    }

    #[test]
    fn align_symbol_raises_entry_alignment() {
        let cm = compiled(OptLevel::O2); // function_align = 16
        let exe = Linker::new()
            .align_symbol("main", 64)
            .link(&cm, "main")
            .unwrap();
        assert_eq!(exe.symbol("main").unwrap().addr % 64, 0);
        // Never lowers below the object's own request.
        let exe = Linker::new()
            .align_symbol("main", 2)
            .link(&cm, "main")
            .unwrap();
        assert_eq!(exe.symbol("main").unwrap().addr % 16, 0);
    }

    #[test]
    fn layout_ablations_default_to_identity() {
        let cm = compiled(OptLevel::O3);
        let a = Linker::new().link(&cm, "main").unwrap();
        let b = Linker::new().link(&cm, "main").unwrap();
        assert_eq!(a.text(), b.text());
        assert_eq!(a.symbols(), b.symbols());
    }

    #[test]
    fn bad_order_is_rejected() {
        let cm = compiled(OptLevel::O2);
        assert_eq!(
            Linker::new()
                .object_order(vec![0, 0])
                .link(&cm, "main")
                .unwrap_err(),
            LinkError::BadOrder
        );
        assert_eq!(
            Linker::new()
                .object_order(vec![0])
                .link(&cm, "main")
                .unwrap_err(),
            LinkError::BadOrder
        );
    }

    #[test]
    fn unknown_entry_is_rejected() {
        let cm = compiled(OptLevel::O2);
        assert_eq!(
            Linker::new().link(&cm, "nope").unwrap_err(),
            LinkError::UnknownEntry("nope".into())
        );
    }

    #[test]
    fn data_image_holds_initializers() {
        let exe = Linker::new().link(&compiled(OptLevel::O2), "main").unwrap();
        let tbl = exe.symbol("tbl").unwrap();
        let start = (tbl.addr - exe.data_base()) as usize;
        assert_eq!(&exe.data()[start..start + 8], &5u64.to_le_bytes());
    }

    #[test]
    fn inst_at_and_function_at() {
        let exe = Linker::new().link(&compiled(OptLevel::O2), "main").unwrap();
        let main = exe.symbol("main").unwrap().clone();
        assert!(exe.inst_at(main.addr).is_some());
        assert!(exe.inst_at(main.addr + 2).is_none(), "misaligned");
        assert_eq!(exe.function_at(main.addr + 4).unwrap().name, "main");
    }

    #[test]
    fn abs_addr_reaches_globals_beyond_the_gp_window() {
        use crate::interp::Interpreter;
        use crate::load::{Environment, Loader};
        // A 300 KiB filler pushes `far` outside the ±32 KiB gp window;
        // medium-model addressing must still reach it.
        let mut mb = crate::builder::ModuleBuilder::new();
        mb.global(Global {
            name: "filler".into(),
            size: 300 << 10,
            align: 16,
            init: vec![],
        });
        let far = mb.global(Global::from_words("far", &[0xFEED]));
        mb.function("main", 0, true, |fb| {
            let base = fb.addr_global(far);
            let v = fb.load(biaslab_isa::Width::B8, base, 0);
            fb.chk(v);
            fb.ret(Some(v));
        });
        let m = mb.finish().unwrap();
        let expected = Interpreter::new(&m).call_by_name("main", &[]).unwrap();
        let exe = Linker::new()
            .link(&compile(&optimize(&m, OptLevel::O2), OptLevel::O2), "main")
            .unwrap();
        assert!(
            exe.symbol("far").unwrap().addr > GP_VALUE + 0x8000,
            "test must actually exceed the window"
        );
        let process = Loader::new().load(&exe, &Environment::new(), &[]).unwrap();
        let r = biaslab_uarch_stub_run(&exe, process);
        assert_eq!(Some(r), expected.return_value);
    }

    /// Minimal functional executor for linker tests (avoids a dev-dependency
    /// cycle on the simulator crate): executes until `halt`, returns `r1`.
    fn biaslab_uarch_stub_run(exe: &Executable, process: crate::load::Process) -> u64 {
        use biaslab_isa::{Inst, Reg};
        let mut mem = process.mem;
        let mut regs = [0u64; 32];
        regs[Reg::SP.index() as usize] = u64::from(process.sp);
        regs[Reg::GP.index() as usize] = u64::from(process.gp);
        let mut pc = process.entry;
        for _ in 0..1_000_000u32 {
            let inst = exe.inst_at(pc).expect("pc in text");
            let next = pc.wrapping_add(4);
            match inst {
                Inst::Alu { op, rd, rs1, rs2 } => {
                    let v = op.eval(regs[rs1.index() as usize], regs[rs2.index() as usize]);
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = v;
                    }
                }
                Inst::AluImm { op, rd, rs1, imm } => {
                    let v = op.eval(regs[rs1.index() as usize], op.extend_imm(imm));
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = v;
                    }
                }
                Inst::Lui { rd, imm } => regs[rd.index() as usize] = u64::from(imm) << 16,
                Inst::Load {
                    width,
                    rd,
                    base,
                    offset,
                } => {
                    let a = (regs[base.index() as usize] as u32).wrapping_add(offset as i32 as u32);
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = mem.read_le(a, width.bytes());
                    }
                }
                Inst::Store {
                    width,
                    rs,
                    base,
                    offset,
                } => {
                    let a = (regs[base.index() as usize] as u32).wrapping_add(offset as i32 as u32);
                    mem.write_le(a, width.bytes(), regs[rs.index() as usize]);
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset,
                } => {
                    if cond.eval(regs[rs1.index() as usize], regs[rs2.index() as usize]) {
                        pc = next.wrapping_add(offset as u32);
                        continue;
                    }
                }
                Inst::Jal { rd, offset } => {
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = u64::from(next);
                    }
                    pc = next.wrapping_add(offset as u32);
                    continue;
                }
                Inst::Jalr { rd, rs1, offset } => {
                    let t = (regs[rs1.index() as usize] as u32).wrapping_add(offset as i32 as u32);
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = u64::from(next);
                    }
                    pc = t;
                    continue;
                }
                Inst::Chk { .. } | Inst::Nop => {}
                Inst::Halt => return regs[1],
            }
            pc = next;
        }
        panic!("functional stub did not halt");
    }

    #[test]
    fn gp_relative_relocs_still_resolve() {
        use crate::obj::{ObjectFile, Reloc, RelocKind};
        // Hand-build an object using the small-data (GpAdd) model and link
        // it against a near global.
        let mut cm = compiled(OptLevel::O0);
        let idx = cm.object_index("main").unwrap();
        // main's first instruction becomes `addi r1, gp, <tbl>`; we only
        // check the patched immediate, not execution.
        let obj = ObjectFile {
            symbol: "gpuser".into(),
            code: vec![
                biaslab_isa::Inst::AluImm {
                    op: biaslab_isa::AluOp::Add,
                    rd: biaslab_isa::Reg::r(1),
                    rs1: biaslab_isa::Reg::GP,
                    imm: 0,
                },
                biaslab_isa::Inst::Jalr {
                    rd: biaslab_isa::Reg::ZERO,
                    rs1: biaslab_isa::Reg::RA,
                    offset: 0,
                },
            ],
            align: 4,
            relocs: vec![Reloc {
                at: 0,
                kind: RelocKind::GpAdd {
                    symbol: "tbl".into(),
                    addend: 0,
                },
            }],
        };
        cm.objects.push(obj);
        let exe = Linker::new().link(&cm, "main").unwrap();
        let gpuser = exe.symbol("gpuser").unwrap().addr;
        let tbl = exe.symbol("tbl").unwrap().addr;
        match exe.inst_at(gpuser).unwrap() {
            biaslab_isa::Inst::AluImm { imm, .. } => {
                assert_eq!(i64::from(imm), i64::from(tbl) - i64::from(GP_VALUE));
            }
            other => panic!("unexpected {other}"),
        }
        let _ = idx;
    }

    #[test]
    fn disassembly_mentions_symbols() {
        let exe = Linker::new().link(&compiled(OptLevel::O2), "main").unwrap();
        let dis = exe.disassemble();
        assert!(dis.contains("main:"));
        assert!(dis.contains("helper:"));
        assert!(dis.contains("halt"));
    }
}
