//! The compiler's intermediate representation.
//!
//! The IR is a conventional three-address form with one deliberate
//! simplification: **values ([`Val`]) are block-local temporaries**. All
//! data that crosses a basic-block boundary flows through *local slots*
//! ([`LocalId`]) — named stack slots read with [`Op::LoadLocal`] and written
//! with [`Op::StoreLocal`]. This is the classic "before mem2reg" shape; the
//! optimizer keeps slots in memory at `O0`/`O1` and the code generator
//! promotes eligible slots to registers at `O2` and above, which is one of
//! the genuine optimization-level differences the bias experiments measure.
//!
//! Function parameters occupy the first `param_count` local slots and are
//! initialized from the argument registers on entry.
//!
//! # Uninitialized locals
//!
//! Reading a local slot before storing to it in the same activation yields
//! an *unspecified* (deterministic per build, but build-dependent) value —
//! the C rule for uninitialized automatics. In particular the inliner
//! relocates callee slots into the caller's frame, which changes what a
//! premature read observes. Well-defined programs (the workload suite, the
//! builder examples, and the differential fuzzer) initialize every scalar
//! local before reading it.

use std::fmt;

use biaslab_isa::{AluOp, Cond, Width};
use serde::{Deserialize, Serialize};

/// A block-local temporary value (virtual register).
///
/// Defined by exactly one [`Op`] in a block and dead at the block's end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Val(pub u32);

/// Index of a local slot within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocalId(pub u32);

/// Index of a global within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

/// Index of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Index of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// One non-terminator IR operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `dst = value`
    Const {
        /// Defined value.
        dst: Val,
        /// The 64-bit constant.
        value: u64,
    },
    /// `dst = op(a, b)`
    Bin {
        /// ALU operation.
        op: AluOp,
        /// Defined value.
        dst: Val,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
    /// `dst = op(a, imm)`. The immediate may exceed 16 bits; the code
    /// generator materializes it if needed.
    BinImm {
        /// ALU operation.
        op: AluOp,
        /// Defined value.
        dst: Val,
        /// Left operand.
        a: Val,
        /// Right operand (immediate).
        imm: i64,
    },
    /// `dst = local[offset..offset+8]` — read a scalar from a local slot.
    LoadLocal {
        /// Defined value.
        dst: Val,
        /// Slot to read.
        local: LocalId,
        /// Byte offset within the slot (8-aligned).
        offset: u32,
    },
    /// `local[offset..offset+8] = src` — write a scalar to a local slot.
    StoreLocal {
        /// Slot to write.
        local: LocalId,
        /// Byte offset within the slot (8-aligned).
        offset: u32,
        /// Stored value.
        src: Val,
    },
    /// `dst = &local` — take the address of a local slot. Marks the slot
    /// address-taken, pinning it to the stack at every optimization level.
    AddrLocal {
        /// Defined value.
        dst: Val,
        /// Slot whose address is taken.
        local: LocalId,
    },
    /// `dst = &global`
    AddrGlobal {
        /// Defined value.
        dst: Val,
        /// Global whose address is taken.
        global: GlobalId,
    },
    /// `dst = mem[addr + offset]` (zero-extended to 64 bits).
    Load {
        /// Access width.
        width: Width,
        /// Defined value.
        dst: Val,
        /// Address operand.
        addr: Val,
        /// Constant byte offset.
        offset: i32,
    },
    /// `mem[addr + offset] = src` (truncated to width).
    Store {
        /// Access width.
        width: Width,
        /// Address operand.
        addr: Val,
        /// Constant byte offset.
        offset: i32,
        /// Stored value.
        src: Val,
    },
    /// Direct call. Arguments are passed in registers (at most 6).
    Call {
        /// Receives the callee's return value, if used.
        dst: Option<Val>,
        /// Callee.
        func: FuncId,
        /// Argument values.
        args: Vec<Val>,
    },
    /// Fold `src` into the machine checksum (observable output).
    Chk {
        /// Value to fold into the checksum.
        src: Val,
    },
}

impl Op {
    /// The value defined by this op, if any.
    #[must_use]
    pub fn def(&self) -> Option<Val> {
        match *self {
            Op::Const { dst, .. }
            | Op::Bin { dst, .. }
            | Op::BinImm { dst, .. }
            | Op::LoadLocal { dst, .. }
            | Op::AddrLocal { dst, .. }
            | Op::AddrGlobal { dst, .. }
            | Op::Load { dst, .. } => Some(dst),
            Op::Call { dst, .. } => dst,
            Op::StoreLocal { .. } | Op::Store { .. } | Op::Chk { .. } => None,
        }
    }

    /// The values used by this op, in operand order.
    #[must_use]
    pub fn uses(&self) -> Vec<Val> {
        match self {
            Op::Const { .. }
            | Op::AddrLocal { .. }
            | Op::AddrGlobal { .. }
            | Op::LoadLocal { .. } => {
                vec![]
            }
            Op::Bin { a, b, .. } => vec![*a, *b],
            Op::BinImm { a, .. } => vec![*a],
            Op::StoreLocal { src, .. } => vec![*src],
            Op::Load { addr, .. } => vec![*addr],
            Op::Store { addr, src, .. } => vec![*addr, *src],
            Op::Call { args, .. } => args.clone(),
            Op::Chk { src } => vec![*src],
        }
    }

    /// Rewrites every used value through `f` (definitions are untouched).
    pub fn map_uses(&mut self, mut f: impl FnMut(Val) -> Val) {
        match self {
            Op::Const { .. }
            | Op::AddrLocal { .. }
            | Op::AddrGlobal { .. }
            | Op::LoadLocal { .. } => {}
            Op::Bin { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::BinImm { a, .. } => *a = f(*a),
            Op::StoreLocal { src, .. } => *src = f(*src),
            Op::Load { addr, .. } => *addr = f(*addr),
            Op::Store { addr, src, .. } => {
                *addr = f(*addr);
                *src = f(*src);
            }
            Op::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Op::Chk { src } => *src = f(*src),
        }
    }

    /// Whether removing this op (when its result is unused) changes
    /// program behaviour. Loads are pure in this machine model — they can
    /// fault only on unmapped pages, which the verifier-checked workloads
    /// never touch.
    #[must_use]
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Op::StoreLocal { .. } | Op::Store { .. } | Op::Call { .. } | Op::Chk { .. }
        )
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch.
    Branch {
        /// Compare condition.
        cond: Cond,
        /// Left compared value.
        a: Val,
        /// Right compared value.
        b: Val,
        /// Successor when the condition holds.
        then_block: BlockId,
        /// Successor when the condition does not hold.
        else_block: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Returned value, if the function produces one.
        value: Option<Val>,
    },
}

impl Terminator {
    /// The values used by the terminator.
    #[must_use]
    pub fn uses(&self) -> Vec<Val> {
        match self {
            Terminator::Jump(_) => vec![],
            Terminator::Branch { a, b, .. } => vec![*a, *b],
            Terminator::Ret { value } => value.iter().copied().collect(),
        }
    }

    /// The successor blocks, in branch order.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Terminator::Ret { .. } => vec![],
        }
    }

    /// The values used by the terminator (same as [`Terminator::uses`];
    /// named separately for call sites that pair it with
    /// [`Terminator::map_uses`]).
    #[must_use]
    pub fn uses_for_rewrite(&self) -> Vec<Val> {
        self.uses()
    }

    /// Rewrites every used value through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(Val) -> Val) {
        match self {
            Terminator::Jump(_) => {}
            Terminator::Branch { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Terminator::Ret { value: Some(v) } => *v = f(*v),
            Terminator::Ret { value: None } => {}
        }
    }

    /// Rewrites successor block ids through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => {
                *then_block = f(*then_block);
                *else_block = f(*else_block);
            }
            Terminator::Ret { .. } => {}
        }
    }
}

/// A basic block: straight-line ops plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Straight-line operations.
    pub ops: Vec<Op>,
    /// Control-flow exit.
    pub term: Terminator,
}

/// A stack slot local to one function activation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalSlot {
    /// Size in bytes. Scalars are 8; buffers may be any size.
    pub size: u32,
    /// Required alignment (power of two).
    pub align: u32,
}

impl LocalSlot {
    /// An 8-byte scalar slot.
    #[must_use]
    pub fn scalar() -> LocalSlot {
        LocalSlot { size: 8, align: 8 }
    }

    /// A buffer slot of `size` bytes, 16-aligned (matching what compilers
    /// and allocators guarantee for arrays).
    #[must_use]
    pub fn buffer(size: u32) -> LocalSlot {
        LocalSlot { size, align: 16 }
    }
}

/// Metadata describing a simple counted loop, recorded by the builder and
/// consumed by the unrolling pass.
///
/// The shape is `header` (test, two-way branch into `body` or the exit) and
/// `body` (single block ending with a back edge to `header`), with an
/// induction local advanced exactly once in the body by a constant step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// The loop's test block.
    pub header: BlockId,
    /// The loop's single body block.
    pub body: BlockId,
    /// The induction variable's local slot.
    pub induction: LocalId,
}

/// A function: parameters, local slots, and a CFG of basic blocks.
///
/// Block 0 is the entry block. The first `param_count` locals are the
/// parameters, initialized from argument registers on entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name; unique within the module.
    pub name: String,
    /// Number of parameters (≤ 6), stored in locals `0..param_count`.
    pub param_count: u32,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Stack slots.
    pub locals: Vec<LocalSlot>,
    /// Basic blocks; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Counted loops eligible for unrolling, innermost first.
    pub loops: Vec<LoopInfo>,
    /// Next unallocated [`Val`] index (used by passes that create temps).
    pub next_val: u32,
}

impl Function {
    /// Allocates a fresh temporary value id.
    pub fn fresh_val(&mut self) -> Val {
        let v = Val(self.next_val);
        self.next_val += 1;
        v
    }

    /// Total number of ops across all blocks (a proxy for code size used by
    /// the inliner).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len() + 1).sum()
    }

    /// The set of locals whose address is taken (these must live on the
    /// stack at every optimization level).
    #[must_use]
    pub fn address_taken_locals(&self) -> Vec<bool> {
        let mut taken = vec![false; self.locals.len()];
        for block in &self.blocks {
            for op in &block.ops {
                if let Op::AddrLocal { local, .. } = op {
                    taken[local.0 as usize] = true;
                }
            }
        }
        taken
    }

    /// Whether this function (directly) calls `target`.
    #[must_use]
    pub fn calls(&self, target: FuncId) -> bool {
        self.blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|op| matches!(op, Op::Call { func, .. } if *func == target))
    }
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    /// Symbol name; unique within the module.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Required alignment (power of two).
    pub align: u32,
    /// Initial contents; zero-filled to `size` if shorter.
    pub init: Vec<u8>,
}

impl Global {
    /// A zero-initialized global of `size` bytes, 16-aligned.
    #[must_use]
    pub fn zeroed(name: impl Into<String>, size: u32) -> Global {
        Global {
            name: name.into(),
            size,
            align: 16,
            init: Vec::new(),
        }
    }

    /// A global initialized from 64-bit words.
    #[must_use]
    pub fn from_words(name: impl Into<String>, words: &[u64]) -> Global {
        let mut init = Vec::with_capacity(words.len() * 8);
        for w in words {
            init.extend_from_slice(&w.to_le_bytes());
        }
        Global {
            name: name.into(),
            size: init.len() as u32,
            align: 16,
            init,
        }
    }
}

/// A compilation unit: functions plus globals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// All functions. The entry function is selected at link time by name.
    pub functions: Vec<Function>,
    /// All globals.
    pub globals: Vec<Global>,
}

impl Module {
    /// An empty module.
    #[must_use]
    pub fn new() -> Module {
        Module {
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }
}

impl Default for Module {
    fn default() -> Self {
        Module::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_op() -> Op {
        Op::Bin {
            op: AluOp::Add,
            dst: Val(2),
            a: Val(0),
            b: Val(1),
        }
    }

    #[test]
    fn op_def_and_uses() {
        let op = sample_op();
        assert_eq!(op.def(), Some(Val(2)));
        assert_eq!(op.uses(), vec![Val(0), Val(1)]);

        let store = Op::Store {
            width: Width::B8,
            addr: Val(3),
            offset: 0,
            src: Val(4),
        };
        assert_eq!(store.def(), None);
        assert_eq!(store.uses(), vec![Val(3), Val(4)]);
        assert!(store.has_side_effect());
        assert!(!sample_op().has_side_effect());
    }

    #[test]
    fn op_map_uses_rewrites_operands_only() {
        let mut op = sample_op();
        op.map_uses(|v| Val(v.0 + 10));
        assert_eq!(
            op,
            Op::Bin {
                op: AluOp::Add,
                dst: Val(2),
                a: Val(10),
                b: Val(11)
            }
        );
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Cond::Lt,
            a: Val(0),
            b: Val(1),
            then_block: BlockId(1),
            else_block: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret { value: None }.successors(), vec![]);
        assert_eq!(Terminator::Jump(BlockId(7)).successors(), vec![BlockId(7)]);
    }

    #[test]
    fn function_tracks_address_taken_locals() {
        let f = Function {
            name: "f".into(),
            param_count: 0,
            returns_value: false,
            locals: vec![LocalSlot::scalar(), LocalSlot::buffer(64)],
            blocks: vec![Block {
                ops: vec![Op::AddrLocal {
                    dst: Val(0),
                    local: LocalId(1),
                }],
                term: Terminator::Ret { value: None },
            }],
            loops: vec![],
            next_val: 1,
        };
        assert_eq!(f.address_taken_locals(), vec![false, true]);
        assert_eq!(f.op_count(), 2);
    }

    #[test]
    fn module_function_lookup() {
        let mut m = Module::new();
        m.functions.push(Function {
            name: "main".into(),
            param_count: 0,
            returns_value: false,
            locals: vec![],
            blocks: vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            loops: vec![],
            next_val: 0,
        });
        assert_eq!(m.function_by_name("main"), Some(FuncId(0)));
        assert_eq!(m.function_by_name("nope"), None);
        assert_eq!(m.func(FuncId(0)).name, "main");
    }

    #[test]
    fn global_constructors() {
        let g = Global::zeroed("buf", 128);
        assert_eq!(g.size, 128);
        assert!(g.init.is_empty());
        let g = Global::from_words("tbl", &[1, 2]);
        assert_eq!(g.size, 16);
        assert_eq!(&g.init[0..8], &1u64.to_le_bytes());
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const { dst, value } => write!(f, "{dst} = const {value:#x}"),
            Op::Bin { op, dst, a, b } => write!(f, "{dst} = {} {a}, {b}", op.mnemonic()),
            Op::BinImm { op, dst, a, imm } => write!(f, "{dst} = {}i {a}, {imm}", op.mnemonic()),
            Op::LoadLocal { dst, local, offset } => {
                write!(f, "{dst} = local[{}+{offset}]", local.0)
            }
            Op::StoreLocal { local, offset, src } => {
                write!(f, "local[{}+{offset}] = {src}", local.0)
            }
            Op::AddrLocal { dst, local } => write!(f, "{dst} = &local[{}]", local.0),
            Op::AddrGlobal { dst, global } => write!(f, "{dst} = &global[{}]", global.0),
            Op::Load {
                width,
                dst,
                addr,
                offset,
            } => {
                write!(f, "{dst} = load.{} {addr}+{offset}", width.mnemonic())
            }
            Op::Store {
                width,
                addr,
                offset,
                src,
            } => {
                write!(f, "store.{} {addr}+{offset}, {src}", width.mnemonic())
            }
            Op::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call f{}(", func.0)?;
                } else {
                    write!(f, "call f{}(", func.0)?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Op::Chk { src } => write!(f, "chk {src}"),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch {
                cond,
                a,
                b,
                then_block,
                else_block,
            } => {
                write!(
                    f,
                    "br.{} {a}, {b} ? {then_block} : {else_block}",
                    cond.mnemonic()
                )
            }
            Terminator::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Terminator::Ret { value: None } => f.write_str("ret"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}({} params, {} locals){}:",
            self.name,
            self.param_count,
            self.locals.len(),
            if self.returns_value { " -> val" } else { "" },
        )?;
        for (bi, block) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{bi}:")?;
            for op in &block.ops {
                writeln!(f, "  {op}")?;
            }
            writeln!(f, "  {}", block.term)?;
        }
        Ok(())
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (gi, g) in self.globals.iter().enumerate() {
            writeln!(
                f,
                "global[{gi}] {} : {} bytes (align {})",
                g.name, g.size, g.align
            )?;
        }
        for func in &self.functions {
            writeln!(f)?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn module_pretty_prints() {
        let mut mb = ModuleBuilder::new();
        mb.global(Global::zeroed("tbl", 64));
        mb.function("f", 1, true, |fb| {
            let p = fb.param(0);
            let v = fb.get(p);
            let w = fb.mul_imm(v, 3);
            fb.chk(w);
            fb.ret(Some(w));
        });
        let m = mb.finish().unwrap();
        let text = m.to_string();
        assert!(text.contains("global[0] tbl : 64 bytes"));
        assert!(text.contains("fn f(1 params"));
        assert!(text.contains("muli"));
        assert!(text.contains("chk"));
        assert!(text.contains("ret %"));
        assert!(text.contains("bb0:"));
    }

    #[test]
    fn terminators_pretty_print() {
        let t = Terminator::Branch {
            cond: Cond::Ltu,
            a: Val(1),
            b: Val(2),
            then_block: BlockId(3),
            else_block: BlockId(4),
        };
        assert_eq!(t.to_string(), "br.ltu %1, %2 ? bb3 : bb4");
        assert_eq!(Terminator::Jump(BlockId(9)).to_string(), "jump bb9");
    }
}
