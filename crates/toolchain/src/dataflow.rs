//! Bit-vector dataflow analyses over [`crate::ir`] functions.
//!
//! Three classic analyses, shared by the verifier ([`crate::verify`]) and
//! the `biaslint` diagnostics engine in `biaslab-analyze`:
//!
//! * **Liveness** ([`Liveness`]) — backward may-analysis over stack-slot
//!   *cells* (see [`CellMap`]): which `(local, offset)` cells may still be
//!   read on some path from a program point.
//! * **Reaching definitions** ([`ReachingDefs`]) — forward may-analysis:
//!   which [`Op::StoreLocal`] sites (or the synthetic function-entry
//!   definition of each cell) may have produced the value a load observes.
//! * **Value ranges** ([`ValueRanges`]) — forward constant / interval
//!   propagation with widening: the set of run-time values each cell can
//!   hold at block entry, and (via [`ValueRanges::vals_in_block`]) each
//!   block-local [`Val`].
//!
//! Because IR [`Val`]s are block-local by construction (defined exactly
//! once, before use, within one block — the invariant the verifier
//! enforces), all cross-block dataflow moves through local slots, and the
//! dataflow domain is the slot cell, not the SSA value. The *val-level*
//! component of reaching definitions degenerates to a per-block forward
//! scan, exposed as [`val_events`]; the verifier's use-before-def /
//! double-definition diagnostics are a direct rendering of those events.
//!
//! Address-taken slots ([`Function::address_taken_locals`]) escape the
//! analysis: their cells are conservatively treated as live everywhere,
//! defined at entry by an unknown writer, and holding unknown values.
//! That keeps every analysis sound in the presence of pointer loads,
//! stores, and calls without any alias reasoning.

use std::collections::BTreeSet;

#[cfg(test)]
use crate::ir::Terminator;
use crate::ir::{Function, LocalId, Op, Val};

// ---------------------------------------------------------------------------
// Small dense bitset (the same shape as the analyzer's dominator rows).
// ---------------------------------------------------------------------------

/// A fixed-width bitset over `0..len` used for dataflow rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zero set over `0..len`.
    #[must_use]
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Whether bit `i` is set.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// `self |= other`; reports whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Iterates the set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.get(i))
    }
}

// ---------------------------------------------------------------------------
// Cell map: (local, offset) -> dense dataflow index.
// ---------------------------------------------------------------------------

/// Maps `(LocalId, byte offset)` slot accesses to dense *cell* indices.
///
/// Every local slot contributes `ceil(size / 8)` eight-byte cells — the
/// granule at which [`Op::LoadLocal`] / [`Op::StoreLocal`] access memory
/// (the verifier guarantees 8-aligned, in-bounds offsets).
#[derive(Debug, Clone)]
pub struct CellMap {
    starts: Vec<u32>,
    total: u32,
}

impl CellMap {
    /// Builds the cell map of `f`'s local slots.
    #[must_use]
    pub fn of(f: &Function) -> CellMap {
        let mut starts = Vec::with_capacity(f.locals.len() + 1);
        let mut total = 0u32;
        for slot in &f.locals {
            starts.push(total);
            total += slot.size.div_ceil(8).max(1);
        }
        starts.push(total);
        CellMap { starts, total }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the function has no slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The cell of `(local, offset)`, or `None` when either is out of
    /// range (possible only on unverified IR).
    #[must_use]
    pub fn cell(&self, local: LocalId, offset: u32) -> Option<usize> {
        let i = local.0 as usize;
        let lo = *self.starts.get(i)?;
        let hi = *self.starts.get(i + 1)?;
        let c = lo + offset / 8;
        (c < hi).then_some(c as usize)
    }

    /// The cells of one local slot, as a contiguous index range.
    #[must_use]
    pub fn cells_of(&self, local: LocalId) -> std::ops::Range<usize> {
        let i = local.0 as usize;
        match (self.starts.get(i), self.starts.get(i + 1)) {
            (Some(&lo), Some(&hi)) => lo as usize..hi as usize,
            _ => 0..0,
        }
    }

    /// The `(local, byte offset)` a cell index denotes.
    #[must_use]
    pub fn owner(&self, cell: usize) -> (LocalId, u32) {
        let c = cell as u32;
        debug_assert!(c < self.total);
        let i = self.starts.partition_point(|&s| s <= c) - 1;
        (LocalId(i as u32), (c - self.starts[i]) * 8)
    }
}

fn escaped_cells(f: &Function, cells: &CellMap) -> BitSet {
    let mut escaped = BitSet::new(cells.len());
    for (i, taken) in f.address_taken_locals().iter().enumerate() {
        if *taken {
            for c in cells.cells_of(LocalId(i as u32)) {
                escaped.set(c);
            }
        }
    }
    escaped
}

fn block_successors(f: &Function, bi: usize) -> Vec<usize> {
    f.blocks[bi]
        .term
        .successors()
        .iter()
        .map(|s| s.0 as usize)
        .filter(|&s| s < f.blocks.len())
        .collect()
}

// ---------------------------------------------------------------------------
// Val-level block-local reaching definitions (the verifier's walk).
// ---------------------------------------------------------------------------

/// A defect in the block-local [`Val`] discipline, in walk order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValEvent {
    /// Block index.
    pub block: u32,
    /// Op index within the block; `None` for the terminator.
    pub op: Option<u32>,
    /// What went wrong.
    pub kind: ValEventKind,
}

/// The kinds of [`Val`]-discipline defects [`val_events`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValEventKind {
    /// The value is used with no prior definition in its block.
    UseBeforeDef(Val),
    /// The value is defined a second time in the same block.
    DefinedTwice(Val),
    /// The value is (first) defined in more than one block.
    CrossBlockDef(Val),
    /// The value's index is not below `Function::next_val`.
    AboveNextVal(Val),
}

/// Runs the block-local val-level reaching-definitions scan and reports
/// every discipline defect, in deterministic walk order: blocks in index
/// order; within a block, each op's *use* defects precede its *def*
/// defects, and terminator uses come last.
///
/// Because vals are block-local, "reaching definitions" for a val is
/// simply *defined earlier in this block*; this scan is the degenerate
/// single-block case of [`ReachingDefs`] and is what
/// [`crate::verify::verify_module`] renders as diagnostics. It is total:
/// arbitrary (unverified) IR never panics.
#[must_use]
pub fn val_events(f: &Function) -> Vec<ValEvent> {
    let mut events = Vec::new();
    let mut defined_anywhere: BTreeSet<Val> = BTreeSet::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let bu = bi as u32;
        let mut defined: BTreeSet<Val> = BTreeSet::new();
        for (oi, op) in block.ops.iter().enumerate() {
            let ou = Some(oi as u32);
            for used in op.uses() {
                if !defined.contains(&used) {
                    events.push(ValEvent {
                        block: bu,
                        op: ou,
                        kind: ValEventKind::UseBeforeDef(used),
                    });
                }
            }
            if let Some(dst) = op.def() {
                if !defined.insert(dst) {
                    events.push(ValEvent {
                        block: bu,
                        op: ou,
                        kind: ValEventKind::DefinedTwice(dst),
                    });
                } else if !defined_anywhere.insert(dst) {
                    events.push(ValEvent {
                        block: bu,
                        op: ou,
                        kind: ValEventKind::CrossBlockDef(dst),
                    });
                }
                if dst.0 >= f.next_val {
                    events.push(ValEvent {
                        block: bu,
                        op: ou,
                        kind: ValEventKind::AboveNextVal(dst),
                    });
                }
            }
        }
        for used in block.term.uses() {
            if !defined.contains(&used) {
                events.push(ValEvent {
                    block: bu,
                    op: None,
                    kind: ValEventKind::UseBeforeDef(used),
                });
            }
        }
    }
    events
}

// ---------------------------------------------------------------------------
// Liveness.
// ---------------------------------------------------------------------------

/// Backward may-liveness of slot cells.
///
/// A cell is *live* at a point when some path from that point reaches a
/// [`Op::LoadLocal`] of the cell with no intervening [`Op::StoreLocal`]
/// to it. Cells of address-taken slots are conservatively live
/// everywhere (pointer reads cannot be tracked).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// The cell index space.
    pub cells: CellMap,
    escaped: BitSet,
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

impl Liveness {
    /// Computes liveness for `f`. Out-of-range successors and slot
    /// accesses (unverified IR) are ignored rather than panicking.
    #[must_use]
    pub fn of(f: &Function) -> Liveness {
        let cells = CellMap::of(f);
        let nc = cells.len();
        let n = f.blocks.len();
        let escaped = escaped_cells(f, &cells);

        let mut gen = vec![BitSet::new(nc); n];
        let mut kill = vec![BitSet::new(nc); n];
        for (bi, block) in f.blocks.iter().enumerate() {
            for op in &block.ops {
                match *op {
                    Op::LoadLocal { local, offset, .. } => {
                        if let Some(c) = cells.cell(local, offset) {
                            if !escaped.get(c) && !kill[bi].get(c) {
                                gen[bi].set(c);
                            }
                        }
                    }
                    Op::StoreLocal { local, offset, .. } => {
                        if let Some(c) = cells.cell(local, offset) {
                            if !escaped.get(c) && !gen[bi].get(c) {
                                kill[bi].set(c);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        let mut live_in = vec![BitSet::new(nc); n];
        let mut live_out = vec![BitSet::new(nc); n];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                for s in block_successors(f, bi) {
                    let succ_in = live_in[s].clone();
                    changed |= live_out[bi].union_with(&succ_in);
                }
                let mut inn = live_out[bi].clone();
                inn.subtract(&kill[bi]);
                inn.union_with(&gen[bi]);
                changed |= live_in[bi].union_with(&inn);
            }
        }
        for bi in 0..n {
            live_in[bi].union_with(&escaped);
            live_out[bi].union_with(&escaped);
        }
        Liveness {
            cells,
            escaped,
            live_in,
            live_out,
        }
    }

    /// Whether `cell` may be read on some path from the entry of `block`.
    #[must_use]
    pub fn is_live_in(&self, block: usize, cell: usize) -> bool {
        self.live_in[block].get(cell)
    }

    /// Whether `cell` may be read on some path after `block`'s terminator.
    #[must_use]
    pub fn is_live_out(&self, block: usize, cell: usize) -> bool {
        self.live_out[block].get(cell)
    }

    /// Whether the cell belongs to an address-taken (escaped) slot.
    #[must_use]
    pub fn is_escaped(&self, cell: usize) -> bool {
        self.escaped.get(cell)
    }

    /// Every [`Op::StoreLocal`] whose stored cell is dead immediately
    /// after the store (no path reads it before the next overwrite), as
    /// `(block, op)` indices in walk order. Escaped slots never report.
    #[must_use]
    pub fn dead_stores(&self, f: &Function) -> Vec<(u32, u32)> {
        let mut dead = Vec::new();
        for (bi, block) in f.blocks.iter().enumerate() {
            let mut live = self.live_out[bi].clone();
            let mut dead_here = Vec::new();
            for (oi, op) in block.ops.iter().enumerate().rev() {
                match *op {
                    Op::LoadLocal { local, offset, .. } => {
                        if let Some(c) = self.cells.cell(local, offset) {
                            live.set(c);
                        }
                    }
                    Op::StoreLocal { local, offset, .. } => {
                        if let Some(c) = self.cells.cell(local, offset) {
                            if !self.escaped.get(c) {
                                if !live.get(c) {
                                    dead_here.push((bi as u32, oi as u32));
                                }
                                live.clear(c);
                            }
                        }
                    }
                    _ => {}
                }
            }
            dead_here.reverse();
            dead.extend(dead_here);
        }
        dead
    }
}

// ---------------------------------------------------------------------------
// Reaching definitions.
// ---------------------------------------------------------------------------

/// How a cell is considered defined at function entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryFlavor {
    /// The slot is a parameter: defined by the caller.
    Param,
    /// Uninitialized automatic storage: reading it is unspecified.
    Uninit,
    /// Address-taken slot: an untracked pointer writer may define it at
    /// any time, so its entry definition is never killed.
    Escaped,
}

/// One tracked [`Op::StoreLocal`] definition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefSite {
    /// Block index.
    pub block: u32,
    /// Op index within the block.
    pub op: u32,
    /// Stored slot.
    pub local: LocalId,
    /// Stored byte offset.
    pub offset: u32,
    /// Dense cell index ([`CellMap`]).
    pub cell: u32,
}

/// A [`Op::LoadLocal`] that an uninitialized entry definition may reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UninitRead {
    /// Block index.
    pub block: u32,
    /// Op index within the block.
    pub op: u32,
    /// Read slot.
    pub local: LocalId,
    /// Read byte offset.
    pub offset: u32,
}

/// Forward may-analysis: which definitions reach each block entry.
///
/// The definition id space is `0..tracked.len()` for [`DefSite`]s
/// followed by one synthetic entry definition per cell
/// ([`ReachingDefs::entry_def`]), flavored per [`EntryFlavor`].
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// The cell index space.
    pub cells: CellMap,
    /// Tracked store sites, in walk order (block, then op).
    pub tracked: Vec<DefSite>,
    flavors: Vec<EntryFlavor>,
    defs_of_cell: Vec<Vec<u32>>,
    reach_in: Vec<BitSet>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `f`. Robust against unverified
    /// IR (out-of-range accesses and successors are ignored).
    #[must_use]
    pub fn of(f: &Function) -> ReachingDefs {
        let cells = CellMap::of(f);
        let nc = cells.len();
        let n = f.blocks.len();
        let escaped = escaped_cells(f, &cells);

        let mut tracked = Vec::new();
        for (bi, block) in f.blocks.iter().enumerate() {
            for (oi, op) in block.ops.iter().enumerate() {
                if let Op::StoreLocal { local, offset, .. } = *op {
                    if let Some(c) = cells.cell(local, offset) {
                        tracked.push(DefSite {
                            block: bi as u32,
                            op: oi as u32,
                            local,
                            offset,
                            cell: c as u32,
                        });
                    }
                }
            }
        }
        let nd = tracked.len() + nc;
        let mut defs_of_cell: Vec<Vec<u32>> = vec![Vec::new(); nc];
        for (di, d) in tracked.iter().enumerate() {
            defs_of_cell[d.cell as usize].push(di as u32);
        }
        let mut flavors = Vec::with_capacity(nc);
        for c in 0..nc {
            let (local, _) = cells.owner(c);
            flavors.push(if local.0 < f.param_count {
                EntryFlavor::Param
            } else if escaped.get(c) {
                EntryFlavor::Escaped
            } else {
                EntryFlavor::Uninit
            });
        }

        // gen = last def per cell in the block; kill = every other def of
        // a cell the block defines (entry defs of escaped cells excepted).
        let mut gen = vec![BitSet::new(nd); n];
        let mut kill = vec![BitSet::new(nd); n];
        {
            let mut cursor = 0usize;
            for bi in 0..n {
                let start = cursor;
                while cursor < tracked.len() && tracked[cursor].block == bi as u32 {
                    cursor += 1;
                }
                let mut last_of_cell: Vec<Option<u32>> = vec![None; nc];
                for di in start..cursor {
                    last_of_cell[tracked[di].cell as usize] = Some(di as u32);
                }
                for (c, last) in last_of_cell.iter().enumerate() {
                    let Some(last) = *last else { continue };
                    gen[bi].set(last as usize);
                    for &di in &defs_of_cell[c] {
                        if di != last {
                            kill[bi].set(di as usize);
                        }
                    }
                    if flavors[c] != EntryFlavor::Escaped {
                        kill[bi].set(tracked.len() + c);
                    }
                }
            }
        }

        let mut entry_seed = BitSet::new(nd);
        for c in 0..nc {
            entry_seed.set(tracked.len() + c);
        }
        let mut reach_in = vec![BitSet::new(nd); n];
        let mut reach_out = vec![BitSet::new(nd); n];
        if n > 0 {
            reach_in[0].union_with(&entry_seed);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for bi in 0..n {
                let mut out = reach_in[bi].clone();
                out.subtract(&kill[bi]);
                out.union_with(&gen[bi]);
                changed |= reach_out[bi].union_with(&out);
                for s in block_successors(f, bi) {
                    let o = reach_out[bi].clone();
                    changed |= reach_in[s].union_with(&o);
                }
            }
        }
        ReachingDefs {
            cells,
            tracked,
            flavors,
            defs_of_cell,
            reach_in,
        }
    }

    /// The synthetic entry-definition id of `cell`.
    #[must_use]
    pub fn entry_def(&self, cell: usize) -> usize {
        self.tracked.len() + cell
    }

    /// The entry flavor of `cell`.
    #[must_use]
    pub fn flavor(&self, cell: usize) -> EntryFlavor {
        self.flavors[cell]
    }

    /// Whether definition `def_id` may reach the entry of `block`.
    #[must_use]
    pub fn reaches_entry(&self, block: usize, def_id: usize) -> bool {
        self.reach_in[block].get(def_id)
    }

    /// Every load that the *uninitialized* entry definition of its cell
    /// may reach, in walk order: reading one yields an unspecified value
    /// (the C uninitialized-automatics rule this IR inherits).
    #[must_use]
    pub fn maybe_uninit_reads(&self, f: &Function) -> Vec<UninitRead> {
        let mut reads = Vec::new();
        for (bi, block) in f.blocks.iter().enumerate() {
            if bi >= self.reach_in.len() {
                break;
            }
            let mut state = self.reach_in[bi].clone();
            for (oi, op) in block.ops.iter().enumerate() {
                match *op {
                    Op::LoadLocal { local, offset, .. } => {
                        if let Some(c) = self.cells.cell(local, offset) {
                            if self.flavors[c] == EntryFlavor::Uninit
                                && state.get(self.entry_def(c))
                            {
                                reads.push(UninitRead {
                                    block: bi as u32,
                                    op: oi as u32,
                                    local,
                                    offset,
                                });
                            }
                        }
                    }
                    Op::StoreLocal { local, offset, .. } => {
                        if let Some(c) = self.cells.cell(local, offset) {
                            for &di in &self.defs_of_cell[c] {
                                state.clear(di as usize);
                            }
                            if self.flavors[c] != EntryFlavor::Escaped {
                                state.clear(self.entry_def(c));
                            }
                            // Re-assert this site's own definition.
                            if let Some(di) = self.defs_of_cell[c].iter().find(|&&di| {
                                self.tracked[di as usize].block == bi as u32
                                    && self.tracked[di as usize].op == oi as u32
                            }) {
                                state.set(*di as usize);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        reads
    }
}

// ---------------------------------------------------------------------------
// Constant / value-range propagation.
// ---------------------------------------------------------------------------

/// The value lattice: `Bottom ⊑ Const ⊑ Range ⊑ Top`.
///
/// Ranges are unsigned and inclusive. Addresses ([`Op::AddrLocal`],
/// [`Op::AddrGlobal`]) are always [`Lattice::Top`]: their values are
/// exactly the layout-dependent quantity this laboratory studies, and
/// folding them would bake one layout into the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lattice {
    /// No value reaches this point (unreachable / uninitialized tracking).
    Bottom,
    /// Exactly one value.
    Const(u64),
    /// Any value in `lo..=hi`.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Unknown.
    Top,
}

impl Lattice {
    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: Lattice) -> Lattice {
        use Lattice::{Bottom, Const, Range, Top};
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (Top, _) | (_, Top) => Top,
            (Const(a), Const(b)) if a == b => Const(a),
            (Const(a), Const(b)) => Range {
                lo: a.min(b),
                hi: a.max(b),
            },
            (Const(a), Range { lo, hi }) | (Range { lo, hi }, Const(a)) => Range {
                lo: lo.min(a),
                hi: hi.max(a),
            },
            (Range { lo: a, hi: b }, Range { lo: c, hi: d }) => Range {
                lo: a.min(c),
                hi: b.max(d),
            },
        }
    }

    /// Whether the concrete value `v` is admitted by this lattice value.
    #[must_use]
    pub fn contains(self, v: u64) -> bool {
        match self {
            Lattice::Bottom => false,
            Lattice::Const(c) => c == v,
            Lattice::Range { lo, hi } => lo <= v && v <= hi,
            Lattice::Top => true,
        }
    }

    /// The single constant, if this is [`Lattice::Const`].
    #[must_use]
    pub fn as_const(self) -> Option<u64> {
        match self {
            Lattice::Const(c) => Some(c),
            _ => None,
        }
    }
}

/// How many times a block's in-state may grow before widening to Top.
const WIDEN_LIMIT: u8 = 3;

/// Forward constant / value-range propagation over slot cells.
#[derive(Debug, Clone)]
pub struct ValueRanges {
    /// The cell index space.
    pub cells: CellMap,
    in_states: Vec<Vec<Lattice>>,
}

impl ValueRanges {
    /// Computes per-block-entry cell lattices for `f`.
    #[must_use]
    pub fn of(f: &Function) -> ValueRanges {
        let cells = CellMap::of(f);
        let nc = cells.len();
        let n = f.blocks.len();
        let escaped = escaped_cells(f, &cells);

        // Entry: every cell starts Top — parameters hold caller-chosen
        // values, uninitialized reads are unspecified, escaped cells have
        // untracked writers. Precision comes from stores, not entry.
        let mut in_states: Vec<Vec<Lattice>> = vec![vec![Lattice::Bottom; nc]; n];
        if n > 0 {
            in_states[0] = vec![Lattice::Top; nc];
        }
        let mut widen: Vec<Vec<u8>> = vec![vec![0; nc]; n];

        let mut changed = true;
        while changed {
            changed = false;
            for bi in 0..n {
                let out = transfer_cells(f, bi, &in_states[bi], &cells, &escaped);
                for s in block_successors(f, bi) {
                    for c in 0..nc {
                        let old = in_states[s][c];
                        let mut next = old.join(out[c]);
                        if next != old {
                            widen[s][c] = widen[s][c].saturating_add(1);
                            if widen[s][c] > WIDEN_LIMIT {
                                next = Lattice::Top;
                            }
                            if next != old {
                                in_states[s][c] = next;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        ValueRanges { cells, in_states }
    }

    /// The lattice value of `(local, offset)` at the entry of `block`.
    #[must_use]
    pub fn cell_in(&self, block: usize, local: LocalId, offset: u32) -> Lattice {
        match self.cells.cell(local, offset) {
            Some(c) => self.in_states[block][c],
            None => Lattice::Top,
        }
    }

    /// Re-runs the block transfer and returns the lattice of every
    /// block-local [`Val`] (indexed by val number; undefined vals are
    /// [`Lattice::Bottom`]).
    #[must_use]
    pub fn vals_in_block(&self, f: &Function, block: usize) -> Vec<Lattice> {
        let escaped = escaped_cells(f, &self.cells);
        let mut vals = vec![Lattice::Bottom; f.next_val as usize];
        let mut state = self.in_states[block].clone();
        for op in &f.blocks[block].ops {
            step_op(f, op, &mut state, &mut vals, &self.cells, &escaped);
        }
        vals
    }
}

fn transfer_cells(
    f: &Function,
    block: usize,
    inn: &[Lattice],
    cells: &CellMap,
    escaped: &BitSet,
) -> Vec<Lattice> {
    let mut vals = vec![Lattice::Bottom; f.next_val as usize];
    let mut state = inn.to_vec();
    for op in &f.blocks[block].ops {
        step_op(f, op, &mut state, &mut vals, cells, escaped);
    }
    state
}

fn val_of(vals: &[Lattice], v: Val) -> Lattice {
    vals.get(v.0 as usize).copied().unwrap_or(Lattice::Top)
}

fn set_val(vals: &mut [Lattice], v: Val, l: Lattice) {
    if let Some(slot) = vals.get_mut(v.0 as usize) {
        *slot = l;
    }
}

/// Clobbers every escaped cell (an untracked writer may have run).
fn clobber_escaped(state: &mut [Lattice], escaped: &BitSet) {
    for c in escaped.iter() {
        state[c] = Lattice::Top;
    }
}

fn step_op(
    f: &Function,
    op: &Op,
    state: &mut [Lattice],
    vals: &mut [Lattice],
    cells: &CellMap,
    escaped: &BitSet,
) {
    match *op {
        Op::Const { dst, value } => set_val(vals, dst, Lattice::Const(value)),
        Op::Bin { op, dst, a, b } => {
            let l = eval_bin(op, val_of(vals, a), val_of(vals, b));
            set_val(vals, dst, l);
        }
        Op::BinImm { op, dst, a, imm } => {
            let l = eval_bin(op, val_of(vals, a), Lattice::Const(imm as u64));
            set_val(vals, dst, l);
        }
        Op::LoadLocal { dst, local, offset } => {
            let l = match cells.cell(local, offset) {
                Some(c) if !escaped.get(c) => {
                    // An uninitialized read is unspecified: Bottom at a
                    // reachable load means "never stored", which reads as
                    // an arbitrary value.
                    match state[c] {
                        Lattice::Bottom => Lattice::Top,
                        other => other,
                    }
                }
                _ => Lattice::Top,
            };
            set_val(vals, dst, l);
        }
        Op::StoreLocal { local, offset, src } => {
            if let Some(c) = cells.cell(local, offset) {
                if !escaped.get(c) {
                    state[c] = val_of(vals, src);
                }
            }
        }
        Op::AddrLocal { dst, .. } | Op::AddrGlobal { dst, .. } => {
            set_val(vals, dst, Lattice::Top);
        }
        Op::Load { dst, .. } => set_val(vals, dst, Lattice::Top),
        Op::Store { .. } => clobber_escaped(state, escaped),
        Op::Call { dst, .. } => {
            clobber_escaped(state, escaped);
            if let Some(dst) = dst {
                set_val(vals, dst, Lattice::Top);
            }
        }
        Op::Chk { .. } => {}
    }
    let _ = f;
}

/// Interval evaluation of one ALU op. Constants fold exactly through
/// [`biaslab_isa::AluOp::eval`]; `Add`/`Sub`/`Mul` propagate ranges when
/// the bounds provably do not wrap; everything else widens to Top.
fn eval_bin(op: biaslab_isa::AluOp, a: Lattice, b: Lattice) -> Lattice {
    use biaslab_isa::AluOp;
    use Lattice::{Bottom, Const, Range, Top};
    if a == Bottom || b == Bottom {
        // An operand that is never defined reads as arbitrary.
        return Top;
    }
    if let (Const(x), Const(y)) = (a, b) {
        return Const(op.eval(x, y));
    }
    let bounds = |l: Lattice| -> Option<(u64, u64)> {
        match l {
            Const(c) => Some((c, c)),
            Range { lo, hi } => Some((lo, hi)),
            _ => None,
        }
    };
    let (Some((alo, ahi)), Some((blo, bhi))) = (bounds(a), bounds(b)) else {
        return Top;
    };
    match op {
        AluOp::Add => match (alo.checked_add(blo), ahi.checked_add(bhi)) {
            (Some(lo), Some(hi)) => Range { lo, hi },
            _ => Top,
        },
        AluOp::Sub => match (alo.checked_sub(bhi), ahi.checked_sub(blo)) {
            (Some(lo), Some(hi)) => Range { lo, hi },
            _ => Top,
        },
        AluOp::Mul => match (alo.checked_mul(blo), ahi.checked_mul(bhi)) {
            (Some(lo), Some(hi)) => Range { lo, hi },
            _ => Top,
        },
        _ => Top,
    }
}

#[cfg(test)]
mod tests {
    use biaslab_isa::AluOp;

    use super::*;
    use crate::ir::{Block, BlockId, LocalSlot};

    fn func(blocks: Vec<Block>, locals: Vec<LocalSlot>, next_val: u32) -> Function {
        Function {
            name: "t".into(),
            param_count: 0,
            returns_value: false,
            locals,
            blocks,
            loops: vec![],
            next_val,
        }
    }

    fn store_const(local: u32, offset: u32, dst: u32, value: u64) -> Vec<Op> {
        vec![
            Op::Const {
                dst: Val(dst),
                value,
            },
            Op::StoreLocal {
                local: LocalId(local),
                offset,
                src: Val(dst),
            },
        ]
    }

    #[test]
    fn cell_map_spans_buffers() {
        let f = func(
            vec![Block {
                ops: vec![],
                term: Terminator::Ret { value: None },
            }],
            vec![LocalSlot::scalar(), LocalSlot::buffer(24)],
            0,
        );
        let cells = CellMap::of(&f);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells.cell(LocalId(0), 0), Some(0));
        assert_eq!(cells.cell(LocalId(1), 0), Some(1));
        assert_eq!(cells.cell(LocalId(1), 16), Some(3));
        assert_eq!(cells.cell(LocalId(1), 24), None);
        assert_eq!(cells.owner(3), (LocalId(1), 16));
    }

    #[test]
    fn val_events_cover_every_defect_in_walk_order() {
        let mut ops = vec![Op::Chk { src: Val(9) }];
        ops.extend(store_const(0, 0, 0, 1));
        ops.push(Op::Const {
            dst: Val(0),
            value: 2,
        });
        ops.push(Op::Const {
            dst: Val(99),
            value: 3,
        });
        let f = func(
            vec![
                Block {
                    ops,
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    ops: vec![Op::Const {
                        dst: Val(0),
                        value: 4,
                    }],
                    term: Terminator::Ret { value: None },
                },
            ],
            vec![LocalSlot::scalar()],
            5,
        );
        let ev = val_events(&f);
        assert_eq!(
            ev,
            vec![
                ValEvent {
                    block: 0,
                    op: Some(0),
                    kind: ValEventKind::UseBeforeDef(Val(9)),
                },
                ValEvent {
                    block: 0,
                    op: Some(3),
                    kind: ValEventKind::DefinedTwice(Val(0)),
                },
                ValEvent {
                    block: 0,
                    op: Some(4),
                    kind: ValEventKind::AboveNextVal(Val(99)),
                },
                ValEvent {
                    block: 1,
                    op: Some(0),
                    kind: ValEventKind::CrossBlockDef(Val(0)),
                },
            ]
        );
    }

    #[test]
    fn liveness_flows_across_blocks() {
        // b0: store l0 ; jump b1.  b1: load l0 ; ret.
        let mut ops0 = store_const(0, 0, 0, 7);
        ops0.extend(store_const(1, 0, 1, 8));
        let f = func(
            vec![
                Block {
                    ops: ops0,
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    ops: vec![Op::LoadLocal {
                        dst: Val(2),
                        local: LocalId(0),
                        offset: 0,
                    }],
                    term: Terminator::Ret { value: None },
                },
            ],
            vec![LocalSlot::scalar(), LocalSlot::scalar()],
            3,
        );
        let live = Liveness::of(&f);
        let c0 = live.cells.cell(LocalId(0), 0).unwrap();
        let c1 = live.cells.cell(LocalId(1), 0).unwrap();
        assert!(live.is_live_out(0, c0));
        assert!(live.is_live_in(1, c0));
        assert!(!live.is_live_out(0, c1), "l1 is never read again");
        assert!(!live.is_live_out(1, c0));
        // The store to l1 is dead; the store to l0 is not.
        assert_eq!(live.dead_stores(&f), vec![(0, 3)]);
    }

    #[test]
    fn escaped_slots_are_live_everywhere_and_never_dead_stores() {
        let mut ops = store_const(0, 0, 0, 7);
        ops.push(Op::AddrLocal {
            dst: Val(1),
            local: LocalId(0),
        });
        let f = func(
            vec![Block {
                ops,
                term: Terminator::Ret { value: None },
            }],
            vec![LocalSlot::scalar()],
            2,
        );
        let live = Liveness::of(&f);
        let c = live.cells.cell(LocalId(0), 0).unwrap();
        assert!(live.is_escaped(c));
        assert!(live.is_live_in(0, c) && live.is_live_out(0, c));
        assert!(live.dead_stores(&f).is_empty());
    }

    #[test]
    fn reaching_defs_track_stores_and_uninit_entries() {
        // b0: store l0=1 ; branch-ish jump to b1.
        // b1: load l0 (reached only by the store), load l1 (uninit).
        let f = func(
            vec![
                Block {
                    ops: store_const(0, 0, 0, 1),
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    ops: vec![
                        Op::LoadLocal {
                            dst: Val(1),
                            local: LocalId(0),
                            offset: 0,
                        },
                        Op::LoadLocal {
                            dst: Val(2),
                            local: LocalId(1),
                            offset: 0,
                        },
                    ],
                    term: Terminator::Ret { value: None },
                },
            ],
            vec![LocalSlot::scalar(), LocalSlot::scalar()],
            3,
        );
        let rd = ReachingDefs::of(&f);
        assert_eq!(rd.tracked.len(), 1);
        let c0 = rd.cells.cell(LocalId(0), 0).unwrap();
        let c1 = rd.cells.cell(LocalId(1), 0).unwrap();
        assert!(rd.reaches_entry(1, 0), "the store reaches b1");
        assert!(
            !rd.reaches_entry(1, rd.entry_def(c0)),
            "the store kills l0's entry def"
        );
        assert!(rd.reaches_entry(1, rd.entry_def(c1)));
        assert_eq!(rd.flavor(c1), EntryFlavor::Uninit);
        let reads = rd.maybe_uninit_reads(&f);
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].local, LocalId(1));
    }

    #[test]
    fn params_are_defined_at_entry() {
        let mut f = func(
            vec![Block {
                ops: vec![Op::LoadLocal {
                    dst: Val(0),
                    local: LocalId(0),
                    offset: 0,
                }],
                term: Terminator::Ret { value: None },
            }],
            vec![LocalSlot::scalar()],
            1,
        );
        f.param_count = 1;
        let rd = ReachingDefs::of(&f);
        assert!(rd.maybe_uninit_reads(&f).is_empty());
    }

    #[test]
    fn value_ranges_fold_constants_and_join_to_ranges() {
        // b0: store l0=4 ; branch to b1 or b2.
        // b1: store l0=10 ; jump b3.  b2: jump b3.
        // b3: load l0 -> {4,10} = Range(4,10); +1 -> Range(5,11).
        let mut ops0 = store_const(0, 0, 0, 4);
        ops0.push(Op::Const {
            dst: Val(1),
            value: 0,
        });
        let f = func(
            vec![
                Block {
                    ops: ops0,
                    term: Terminator::Branch {
                        cond: biaslab_isa::Cond::Eq,
                        a: Val(1),
                        b: Val(1),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    ops: store_const(0, 0, 2, 10),
                    term: Terminator::Jump(BlockId(3)),
                },
                Block {
                    ops: vec![],
                    term: Terminator::Jump(BlockId(3)),
                },
                Block {
                    ops: vec![
                        Op::LoadLocal {
                            dst: Val(3),
                            local: LocalId(0),
                            offset: 0,
                        },
                        Op::BinImm {
                            op: AluOp::Add,
                            dst: Val(4),
                            a: Val(3),
                            imm: 1,
                        },
                    ],
                    term: Terminator::Ret { value: None },
                },
            ],
            vec![LocalSlot::scalar()],
            5,
        );
        let vr = ValueRanges::of(&f);
        assert_eq!(vr.cell_in(1, LocalId(0), 0), Lattice::Const(4));
        assert_eq!(
            vr.cell_in(3, LocalId(0), 0),
            Lattice::Range { lo: 4, hi: 10 }
        );
        let vals = vr.vals_in_block(&f, 3);
        assert_eq!(vals[3], Lattice::Range { lo: 4, hi: 10 });
        assert_eq!(vals[4], Lattice::Range { lo: 5, hi: 11 });
    }

    #[test]
    fn value_ranges_widen_loops_to_top() {
        // b0: store l0=0 ; jump b1.
        // b1: load l0 ; +1 ; store l0 ; jump b1 (no exit: pure widening).
        let f = func(
            vec![
                Block {
                    ops: store_const(0, 0, 0, 0),
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    ops: vec![
                        Op::LoadLocal {
                            dst: Val(1),
                            local: LocalId(0),
                            offset: 0,
                        },
                        Op::BinImm {
                            op: AluOp::Add,
                            dst: Val(2),
                            a: Val(1),
                            imm: 1,
                        },
                        Op::StoreLocal {
                            local: LocalId(0),
                            offset: 0,
                            src: Val(2),
                        },
                    ],
                    term: Terminator::Jump(BlockId(1)),
                },
            ],
            vec![LocalSlot::scalar()],
            3,
        );
        let vr = ValueRanges::of(&f);
        assert_eq!(vr.cell_in(1, LocalId(0), 0), Lattice::Top);
    }

    #[test]
    fn addresses_never_fold() {
        let f = func(
            vec![
                Block {
                    ops: vec![
                        Op::AddrLocal {
                            dst: Val(0),
                            local: LocalId(0),
                        },
                        Op::StoreLocal {
                            local: LocalId(1),
                            offset: 0,
                            src: Val(0),
                        },
                    ],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    ops: vec![],
                    term: Terminator::Ret { value: None },
                },
            ],
            vec![LocalSlot::scalar(), LocalSlot::scalar()],
            1,
        );
        let vr = ValueRanges::of(&f);
        assert_eq!(vr.cell_in(1, LocalId(1), 0), Lattice::Top);
    }
}
