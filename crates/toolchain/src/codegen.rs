//! Code generation: IR functions to relocatable MRV32 objects.
//!
//! The generator is deliberately conventional:
//!
//! * **Frame layout** (sp-relative, grows down): memory-resident locals at
//!   the bottom, a fixed 32-slot spill area, saved callee-saved registers,
//!   then `fp` and `ra` at the top.
//! * **Register classes**: `r1..r15` are caller-saved temporaries used for
//!   block-local values; `r16..r27` are callee-saved and host *promoted
//!   locals* at `O2`+ (scalar slots whose address is never taken).
//! * **Calls**: arguments in `r1..r6`, result in `r1`; the caller spills
//!   every live temporary around a call — the call overhead that inlining
//!   at `O3` eliminates.
//! * **Alignment**: functions request the alignment of their optimization
//!   level; at `O3` loop-header blocks are additionally padded to 16-byte
//!   fetch boundaries with `nop`s (mirroring `-falign-loops`).
//!
//! Lowering is semantics-preserving by construction and checked
//! differentially against the IR interpreter by the workload test suite.

use std::collections::{HashMap, VecDeque};

use biaslab_isa::{AluOp, Inst, Reg, Width};

use crate::ir::{BlockId, Function, LocalId, Module, Op, Terminator, Val};
use crate::layout::align_up;
use crate::obj::{CompiledModule, ObjectFile, Reloc, RelocKind};
use crate::opt::OptLevel;

/// Number of reserved 8-byte spill slots in every frame.
const SPILL_SLOTS: u32 = 32;
/// First / last temporary register indices (inclusive).
const TEMP_FIRST: u8 = 1;
const TEMP_LAST: u8 = 12;
/// First register hosting promoted locals.
const PROMOTED_FIRST: u8 = 13;
/// Maximum number of promoted locals (r13..r27).
const PROMOTED_MAX: usize = 15;

/// Compiles every function of an (already optimized) module.
///
/// The result's objects appear in declaration order; permute them before
/// linking to exercise link-order bias.
#[must_use]
pub fn compile(module: &Module, level: OptLevel) -> CompiledModule {
    let objects = module
        .functions
        .iter()
        .map(|f| compile_function(module, f, level))
        .collect();
    CompiledModule {
        objects,
        globals: module.globals.clone(),
        level,
    }
}

/// Where a local slot lives at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Home {
    /// sp-relative byte offset.
    Mem(u32),
    /// Promoted to a callee-saved register.
    Reg(Reg),
}

/// The frame layout and register-promotion plan for one function at one
/// optimization level: the part of code generation that decides which
/// locals produce stack traffic, how big the frame is, and what the
/// prologue/epilogue save.
///
/// Exposed so static analyses (the `biaslab-analyze` crate) can reason
/// about a function's run-time stack behavior without compiling it; the
/// code generator itself consumes the same plan, so the two can never
/// disagree.
#[derive(Debug, Clone)]
pub struct FramePlan {
    /// Where each local lives, indexed by `LocalId`.
    pub homes: Vec<Home>,
    /// Total frame size in bytes (16-aligned).
    pub frame: u32,
    /// sp-relative base of the reserved spill slots.
    pub spill_base: u32,
    /// sp-relative base of the callee-saved register area.
    pub saved_base: u32,
    /// Callee-saved registers hosting promoted locals.
    pub saved: Vec<Reg>,
    /// Whether the prologue saves `ra`/`fp` (leaf functions at `O2` and
    /// above skip the pair).
    pub save_ra_fp: bool,
    /// sp-relative offset of the saved `fp` (meaningful if `save_ra_fp`).
    pub fp_off: u32,
    /// sp-relative offset of the saved `ra` (meaningful if `save_ra_fp`).
    pub ra_off: u32,
}

impl FramePlan {
    /// Whether local `i` is memory-resident (produces stack traffic on
    /// every access) rather than promoted to a register.
    #[must_use]
    pub fn in_memory(&self, i: usize) -> bool {
        matches!(self.homes.get(i), Some(Home::Mem(_)))
    }

    /// Stack memory operations executed per function entry: the
    /// prologue's callee-saved stores plus the epilogue's reloads, and
    /// the `ra`/`fp` pair when it is saved.
    #[must_use]
    pub fn entry_stack_ops(&self) -> u32 {
        2 * (self.saved.len() as u32 + if self.save_ra_fp { 2 } else { 0 })
    }
}

/// Computes the [`FramePlan`] for `f` at `level`.
///
/// Scalars whose address is never taken are promoted to callee-saved
/// registers, hottest first: references weigh 16x per level of loop
/// nesting, so innermost-loop locals always win the registers.
#[must_use]
pub fn frame_plan(f: &Function, level: OptLevel) -> FramePlan {
    let taken = f.address_taken_locals();
    // Loop depth of each block: the number of back-edge ranges [target,
    // source] containing it (exact for the builder's reducible layouts).
    let mut depth = vec![0u32; f.blocks.len()];
    for (src, block) in f.blocks.iter().enumerate() {
        for t in block.term.successors() {
            let t = t.0 as usize;
            if t <= src {
                for d in &mut depth[t..=src] {
                    *d += 1;
                }
            }
        }
    }
    let mut scores = vec![0u64; f.locals.len()];
    for (bi, block) in f.blocks.iter().enumerate() {
        let weight = 16u64.saturating_pow(depth[bi].min(4));
        for op in &block.ops {
            if let Op::LoadLocal { local, .. } | Op::StoreLocal { local, .. } = op {
                scores[local.0 as usize] += weight;
            }
        }
    }
    let mut by_score: Vec<usize> = (0..f.locals.len()).collect();
    by_score.sort_by_key(|&i| std::cmp::Reverse(scores[i]));
    let mut promote_set = vec![false; f.locals.len()];
    if level.promote_locals() {
        let mut claimed = 0;
        for &i in &by_score {
            if claimed == PROMOTED_MAX {
                break;
            }
            // Promotion costs a save/restore pair in the prologue and
            // epilogue; only promote locals whose access count beats it.
            if f.locals[i].size == 8 && !taken[i] && scores[i] > 2 {
                promote_set[i] = true;
                claimed += 1;
            }
        }
    }
    let mut homes = Vec::with_capacity(f.locals.len());
    let mut promoted: Vec<Reg> = Vec::new();
    let mut mem_size = 0u32;
    for (i, slot) in f.locals.iter().enumerate() {
        if promote_set[i] {
            let reg = Reg::r(PROMOTED_FIRST + promoted.len() as u8);
            promoted.push(reg);
            homes.push(Home::Reg(reg));
        } else {
            mem_size = align_up(mem_size, slot.align);
            homes.push(Home::Mem(mem_size));
            mem_size += slot.size;
        }
    }
    let spill_base = align_up(mem_size, 8);
    let saved_base = spill_base + 8 * SPILL_SLOTS;
    let is_leaf = !f
        .blocks
        .iter()
        .flat_map(|b| &b.ops)
        .any(|op| matches!(op, Op::Call { .. }));
    let save_ra_fp = !(is_leaf && level >= OptLevel::O2);
    let saved = promoted;
    let mut top = saved_base + 8 * saved.len() as u32;
    let (fp_off, ra_off) = if save_ra_fp {
        let fp = top;
        let ra = top + 8;
        top += 16;
        (fp, ra)
    } else {
        (0, 0)
    };
    let frame = align_up(top.max(16), 16);
    FramePlan {
        homes,
        frame,
        spill_base,
        saved_base,
        saved,
        save_ra_fp,
        fp_off,
        ra_off,
    }
}

#[derive(Debug)]
struct Fixup {
    at: usize,
    target: BlockId,
}

#[derive(Debug)]
struct FuncCtx {
    homes: Vec<Home>,
    frame: u32,
    spill_base: u32,
    saved: Vec<Reg>,
    save_ra_fp: bool,
    insts: Vec<Inst>,
    relocs: Vec<Reloc>,
    fixups: Vec<Fixup>,
    block_starts: Vec<usize>,
}

impl FuncCtx {
    fn emit(&mut self, inst: Inst) -> usize {
        // Peephole: a register move onto itself is a no-op.
        if let Inst::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        } = inst
        {
            if rd == rs1 && rs2 == Reg::ZERO && !self.insts.is_empty() {
                return self.insts.len() - 1;
            }
        }
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn spill_addr(&self, slot: u32) -> i16 {
        (self.spill_base + 8 * slot) as i16
    }
}

/// Compiles one function to an object file.
#[must_use]
pub fn compile_function(module: &Module, f: &Function, level: OptLevel) -> ObjectFile {
    // --- frame layout (shared with the static analyzer) ---------------------
    let FramePlan {
        homes,
        frame,
        spill_base,
        saved_base,
        saved,
        save_ra_fp,
        fp_off,
        ra_off,
    } = frame_plan(f, level);

    let mut ctx = FuncCtx {
        homes,
        frame,
        spill_base,
        saved: saved.clone(),
        save_ra_fp,
        insts: Vec::new(),
        relocs: Vec::new(),
        fixups: Vec::new(),
        block_starts: vec![0; f.blocks.len()],
    };

    // --- prologue -----------------------------------------------------------
    ctx.emit(Inst::AluImm {
        op: AluOp::Sub,
        rd: Reg::SP,
        rs1: Reg::SP,
        imm: frame as i16,
    });
    if save_ra_fp {
        ctx.emit(Inst::Store {
            width: Width::B8,
            rs: Reg::RA,
            base: Reg::SP,
            offset: ra_off as i16,
        });
        ctx.emit(Inst::Store {
            width: Width::B8,
            rs: Reg::FP,
            base: Reg::SP,
            offset: fp_off as i16,
        });
        ctx.emit(Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::FP,
            rs1: Reg::SP,
            imm: frame as i16,
        });
    }
    for (k, &reg) in saved.iter().enumerate() {
        ctx.emit(Inst::Store {
            width: Width::B8,
            rs: reg,
            base: Reg::SP,
            offset: (saved_base + 8 * k as u32) as i16,
        });
    }
    // Parameters: r1..r6 into their homes.
    for p in 0..f.param_count {
        let arg = Reg::r(1 + p as u8);
        match ctx.homes[p as usize] {
            Home::Mem(off) => {
                ctx.emit(Inst::Store {
                    width: Width::B8,
                    rs: arg,
                    base: Reg::SP,
                    offset: off as i16,
                });
            }
            Home::Reg(home) => {
                ctx.emit(Inst::Alu {
                    op: AluOp::Add,
                    rd: home,
                    rs1: arg,
                    rs2: Reg::ZERO,
                });
            }
        }
    }

    // --- blocks -------------------------------------------------------------
    // A block is treated as a loop header if any same-or-later block jumps
    // back to it; at O3 such blocks are padded to a 16-byte boundary.
    let mut back_target = vec![false; f.blocks.len()];
    for (bi, b) in f.blocks.iter().enumerate() {
        for s in b.term.successors() {
            if (s.0 as usize) <= bi {
                back_target[s.0 as usize] = true;
            }
        }
    }

    for (bi, block) in f.blocks.iter().enumerate() {
        if level.align_loops() && back_target[bi] {
            while !(ctx.insts.len() * 4).is_multiple_of(16) {
                ctx.emit(Inst::Nop);
            }
        }
        ctx.block_starts[bi] = ctx.insts.len();
        emit_block(module, f, &mut ctx, block, bi, ra_off, fp_off, saved_base);
    }

    // --- branch fixups --------------------------------------------------------
    for fix in &ctx.fixups {
        let target = ctx.block_starts[fix.target.0 as usize];
        let delta = (target as i64 - fix.at as i64 - 1) * 4;
        let delta = i32::try_from(delta).expect("branch delta fits i32");
        match &mut ctx.insts[fix.at] {
            Inst::Branch { offset, .. } | Inst::Jal { offset, .. } => *offset = delta,
            other => unreachable!("fixup points at non-branch {other}"),
        }
    }

    ObjectFile {
        symbol: f.name.clone(),
        code: ctx.insts,
        align: level.function_align(),
        relocs: ctx.relocs,
    }
}

// --------------------------------------------------------------------------
// Block-local register allocation
// --------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct VState {
    reg: Option<Reg>,
    slot: Option<u32>,
    /// Aliased to a promoted local's register: not evictable, not freed.
    aliased: bool,
}

#[derive(Debug)]
struct BlockAlloc {
    free: Vec<Reg>,
    state: HashMap<Val, VState>,
    reg_val: HashMap<Reg, Val>,
    uses: HashMap<Val, VecDeque<usize>>,
    free_slots: Vec<u32>,
    pinned: Vec<Reg>,
}

impl BlockAlloc {
    fn new(block_uses: HashMap<Val, VecDeque<usize>>) -> BlockAlloc {
        BlockAlloc {
            free: (TEMP_FIRST..=TEMP_LAST).rev().map(Reg::r).collect(),
            state: HashMap::new(),
            reg_val: HashMap::new(),
            uses: block_uses,
            free_slots: (0..SPILL_SLOTS).rev().collect(),
            pinned: Vec::new(),
        }
    }

    fn next_use(&self, v: Val) -> Option<usize> {
        self.uses.get(&v).and_then(|q| q.front().copied())
    }

    fn alloc_reg(&mut self, ctx: &mut FuncCtx) -> Reg {
        if let Some(r) = self.free.pop() {
            return r;
        }
        // Evict the value with the farthest next use. Ties are broken by
        // register index: the map's own iteration order varies per process
        // and must not leak into the emitted code.
        let victim_reg = self
            .reg_val
            .iter()
            .filter(|(r, _)| !self.pinned.contains(r))
            .max_by_key(|(r, v)| {
                (
                    self.next_use(**v).unwrap_or(usize::MAX),
                    std::cmp::Reverse(r.index()),
                )
            })
            .map(|(r, _)| *r)
            .expect("a non-pinned temp register must exist");
        let victim = self.reg_val[&victim_reg];
        self.spill_val(ctx, victim);
        victim_reg
    }

    fn spill_val(&mut self, ctx: &mut FuncCtx, v: Val) {
        let st = self.state.get_mut(&v).expect("spilling unknown value");
        let reg = st.reg.take().expect("spilling register-less value");
        if st.slot.is_none() {
            let slot = self
                .free_slots
                .pop()
                .expect("spill area exhausted: raise SPILL_SLOTS or simplify the block");
            st.slot = Some(slot);
        }
        let off = ctx.spill_addr(st.slot.expect("just set"));
        ctx.emit(Inst::Store {
            width: Width::B8,
            rs: reg,
            base: Reg::SP,
            offset: off,
        });
        self.reg_val.remove(&reg);
    }

    /// Brings `v` into a register (reloading from its spill slot if needed).
    fn ensure_reg(&mut self, ctx: &mut FuncCtx, v: Val) -> Reg {
        if let Some(reg) = self.state.get(&v).and_then(|s| s.reg) {
            self.pinned.push(reg);
            return reg;
        }
        let slot = self
            .state
            .get(&v)
            .and_then(|s| s.slot)
            .unwrap_or_else(|| panic!("use of value {v} with no location"));
        let reg = self.alloc_reg(ctx);
        let off = ctx.spill_addr(slot);
        ctx.emit(Inst::Load {
            width: Width::B8,
            rd: reg,
            base: Reg::SP,
            offset: off,
        });
        let st = self.state.get_mut(&v).expect("checked above");
        st.reg = Some(reg);
        self.reg_val.insert(reg, v);
        self.pinned.push(reg);
        reg
    }

    /// Allocates a destination register for a fresh definition.
    fn def_reg(&mut self, ctx: &mut FuncCtx, v: Val) -> Reg {
        let reg = self.alloc_reg(ctx);
        self.state.insert(
            v,
            VState {
                reg: Some(reg),
                slot: None,
                aliased: false,
            },
        );
        self.reg_val.insert(reg, v);
        self.pinned.push(reg);
        reg
    }

    /// Records that `v` lives in a promoted local's register.
    fn def_alias(&mut self, v: Val, reg: Reg) {
        self.state.insert(
            v,
            VState {
                reg: Some(reg),
                slot: None,
                aliased: true,
            },
        );
    }

    /// Pops the current-position use of each operand and frees dead values.
    fn retire(&mut self, pos: usize, used: &[Val], defined: Option<Val>) {
        for &v in used {
            if let Some(q) = self.uses.get_mut(&v) {
                while q.front().is_some_and(|&p| p <= pos) {
                    q.pop_front();
                }
            }
        }
        let dead: Vec<Val> = used
            .iter()
            .copied()
            .chain(defined)
            .filter(|v| self.next_use(*v).is_none())
            .collect();
        for v in dead {
            if let Some(st) = self.state.remove(&v) {
                if let Some(reg) = st.reg {
                    if !st.aliased {
                        self.reg_val.remove(&reg);
                        self.free.push(reg);
                    }
                }
                if let Some(slot) = st.slot {
                    self.free_slots.push(slot);
                }
            }
        }
        self.pinned.clear();
    }

    /// Spills every live temporary (for a call boundary). Aliased values
    /// survive in callee-saved registers.
    fn spill_all(&mut self, ctx: &mut FuncCtx) {
        let mut live: Vec<Val> = self
            .state
            .iter()
            .filter(|(_, st)| st.reg.is_some() && !st.aliased)
            .map(|(v, _)| *v)
            .collect();
        // Spill in value order: the map's iteration order is process-random
        // and would otherwise reorder the emitted stores and slot choices.
        live.sort_unstable();
        for v in live {
            self.spill_val(ctx, v);
        }
        self.free = (TEMP_FIRST..=TEMP_LAST).rev().map(Reg::r).collect();
    }

    /// Loads argument `k` (0-based) into `r(k+1)` from wherever `v` lives.
    /// Must be called after [`BlockAlloc::spill_all`].
    fn load_arg(&mut self, ctx: &mut FuncCtx, k: usize, v: Val) {
        let dst = Reg::r(1 + k as u8);
        let st = &self.state[&v];
        if st.aliased {
            let reg = st.reg.expect("aliased value has register");
            ctx.emit(Inst::Alu {
                op: AluOp::Add,
                rd: dst,
                rs1: reg,
                rs2: Reg::ZERO,
            });
        } else {
            let slot = st.slot.expect("spilled value has slot");
            let off = ctx.spill_addr(slot);
            ctx.emit(Inst::Load {
                width: Width::B8,
                rd: dst,
                base: Reg::SP,
                offset: off,
            });
        }
    }
}

/// Materializes an arbitrary 64-bit constant into `rd`.
fn materialize(ctx: &mut FuncCtx, rd: Reg, value: u64) {
    let as_i64 = value as i64;
    if (-(1 << 15)..(1 << 15)).contains(&as_i64) {
        ctx.emit(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1: Reg::ZERO,
            imm: as_i64 as i16,
        });
        return;
    }
    if value <= u64::from(u32::MAX) {
        ctx.emit(Inst::Lui {
            rd,
            imm: (value >> 16) as u16,
        });
        if value & 0xFFFF != 0 {
            ctx.emit(Inst::AluImm {
                op: AluOp::Or,
                rd,
                rs1: rd,
                imm: (value & 0xFFFF) as u16 as i16,
            });
        }
        return;
    }
    // Full 64-bit build: lui c3 | ori c2, then shift in c1 and c0.
    let c = |k: u32| ((value >> (16 * k)) & 0xFFFF) as u16;
    ctx.emit(Inst::Lui { rd, imm: c(3) });
    if c(2) != 0 {
        ctx.emit(Inst::AluImm {
            op: AluOp::Or,
            rd,
            rs1: rd,
            imm: c(2) as i16,
        });
    }
    ctx.emit(Inst::AluImm {
        op: AluOp::Sll,
        rd,
        rs1: rd,
        imm: 16,
    });
    if c(1) != 0 {
        ctx.emit(Inst::AluImm {
            op: AluOp::Or,
            rd,
            rs1: rd,
            imm: c(1) as i16,
        });
    }
    ctx.emit(Inst::AluImm {
        op: AluOp::Sll,
        rd,
        rs1: rd,
        imm: 16,
    });
    if c(0) != 0 {
        ctx.emit(Inst::AluImm {
            op: AluOp::Or,
            rd,
            rs1: rd,
            imm: c(0) as i16,
        });
    }
}

/// Whether an IR immediate can ride in an `AluImm` for this operation.
fn imm_fits(op: AluOp, imm: i64) -> bool {
    match op {
        AluOp::And | AluOp::Or | AluOp::Xor => (0..=0xFFFF).contains(&imm),
        _ => (-(1 << 15)..(1 << 15)).contains(&imm),
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_block(
    module: &Module,
    f: &Function,
    ctx: &mut FuncCtx,
    block: &crate::ir::Block,
    bi: usize,
    ra_off: u32,
    fp_off: u32,
    saved_base: u32,
) {
    // Use positions: op index for op operands, ops.len() for the terminator.
    let mut uses: HashMap<Val, VecDeque<usize>> = HashMap::new();
    for (i, op) in block.ops.iter().enumerate() {
        for v in op.uses() {
            uses.entry(v).or_default().push_back(i);
        }
    }
    for v in block.term.uses() {
        uses.entry(v).or_default().push_back(block.ops.len());
    }
    let mut alloc = BlockAlloc::new(uses);

    for (i, op) in block.ops.iter().enumerate() {
        match op {
            Op::Const { dst, value } => {
                let rd = alloc.def_reg(ctx, *dst);
                materialize(ctx, rd, *value);
            }
            Op::Bin { op, dst, a, b } => {
                let ra = alloc.ensure_reg(ctx, *a);
                let rb = alloc.ensure_reg(ctx, *b);
                let rd = alloc.def_reg(ctx, *dst);
                ctx.emit(Inst::Alu {
                    op: *op,
                    rd,
                    rs1: ra,
                    rs2: rb,
                });
            }
            Op::BinImm { op, dst, a, imm } => {
                let ra = alloc.ensure_reg(ctx, *a);
                let rd = alloc.def_reg(ctx, *dst);
                if imm_fits(*op, *imm) {
                    ctx.emit(Inst::AluImm {
                        op: *op,
                        rd,
                        rs1: ra,
                        imm: *imm as i16,
                    });
                } else {
                    materialize(ctx, rd, *imm as u64);
                    ctx.emit(Inst::Alu {
                        op: *op,
                        rd,
                        rs1: ra,
                        rs2: rd,
                    });
                }
            }
            Op::LoadLocal { dst, local, offset } => match ctx.homes[local.0 as usize] {
                Home::Mem(base) => {
                    let rd = alloc.def_reg(ctx, *dst);
                    ctx.emit(Inst::Load {
                        width: Width::B8,
                        rd,
                        base: Reg::SP,
                        offset: (base + offset) as i16,
                    });
                }
                Home::Reg(home) => {
                    if alias_is_safe(f, block, i, *dst, *local, &alloc) {
                        alloc.def_alias(*dst, home);
                    } else {
                        let rd = alloc.def_reg(ctx, *dst);
                        ctx.emit(Inst::Alu {
                            op: AluOp::Add,
                            rd,
                            rs1: home,
                            rs2: Reg::ZERO,
                        });
                    }
                }
            },
            Op::StoreLocal { local, offset, src } => {
                let rs = alloc.ensure_reg(ctx, *src);
                match ctx.homes[local.0 as usize] {
                    Home::Mem(base) => {
                        ctx.emit(Inst::Store {
                            width: Width::B8,
                            rs,
                            base: Reg::SP,
                            offset: (base + offset) as i16,
                        });
                    }
                    Home::Reg(home) => {
                        ctx.emit(Inst::Alu {
                            op: AluOp::Add,
                            rd: home,
                            rs1: rs,
                            rs2: Reg::ZERO,
                        });
                    }
                }
            }
            Op::AddrLocal { dst, local } => {
                let Home::Mem(base) = ctx.homes[local.0 as usize] else {
                    unreachable!("address-taken locals are never promoted")
                };
                let rd = alloc.def_reg(ctx, *dst);
                ctx.emit(Inst::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: Reg::SP,
                    imm: base as i16,
                });
            }
            Op::AddrGlobal { dst, global } => {
                // Medium-model addressing: a lui/ori pair patched with the
                // absolute address, so the data segment is not limited to
                // the ±32 KiB gp window.
                let rd = alloc.def_reg(ctx, *dst);
                let at = ctx.emit(Inst::Lui { rd, imm: 0 });
                ctx.emit(Inst::AluImm {
                    op: AluOp::Or,
                    rd,
                    rs1: rd,
                    imm: 0,
                });
                ctx.relocs.push(Reloc {
                    at,
                    kind: RelocKind::AbsAddr {
                        symbol: module.globals[global.0 as usize].name.clone(),
                        addend: 0,
                    },
                });
            }
            Op::Load {
                width,
                dst,
                addr,
                offset,
            } => {
                let ra = alloc.ensure_reg(ctx, *addr);
                let rd = alloc.def_reg(ctx, *dst);
                if (-(1 << 15)..(1 << 15)).contains(offset) {
                    ctx.emit(Inst::Load {
                        width: *width,
                        rd,
                        base: ra,
                        offset: *offset as i16,
                    });
                } else {
                    materialize(ctx, rd, *offset as i64 as u64);
                    ctx.emit(Inst::Alu {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        rs2: ra,
                    });
                    ctx.emit(Inst::Load {
                        width: *width,
                        rd,
                        base: rd,
                        offset: 0,
                    });
                }
            }
            Op::Store {
                width,
                addr,
                offset,
                src,
            } => {
                let ra = alloc.ensure_reg(ctx, *addr);
                let rs = alloc.ensure_reg(ctx, *src);
                if (-(1 << 15)..(1 << 15)).contains(offset) {
                    ctx.emit(Inst::Store {
                        width: *width,
                        rs,
                        base: ra,
                        offset: *offset as i16,
                    });
                } else {
                    // Compute the address in a scratch register.
                    let scratch = alloc.alloc_reg(ctx);
                    materialize(ctx, scratch, *offset as i64 as u64);
                    ctx.emit(Inst::Alu {
                        op: AluOp::Add,
                        rd: scratch,
                        rs1: scratch,
                        rs2: ra,
                    });
                    ctx.emit(Inst::Store {
                        width: *width,
                        rs,
                        base: scratch,
                        offset: 0,
                    });
                    alloc.free.push(scratch);
                }
            }
            Op::Call { dst, func, args } => {
                // Make sure argument values survive the register shuffle.
                for &a in args {
                    alloc.ensure_reg(ctx, a);
                }
                alloc.pinned.clear();
                alloc.spill_all(ctx);
                for (k, &a) in args.iter().enumerate() {
                    alloc.load_arg(ctx, k, a);
                }
                let at = ctx.emit(Inst::Jal {
                    rd: Reg::RA,
                    offset: 0,
                });
                ctx.relocs.push(Reloc {
                    at,
                    kind: RelocKind::Call {
                        symbol: module.functions[func.0 as usize].name.clone(),
                    },
                });
                if let Some(d) = dst {
                    // The result arrives in r1; claim it for `d`.
                    let r1 = Reg::r(1);
                    alloc.free.retain(|&r| r != r1);
                    alloc.state.insert(
                        *d,
                        VState {
                            reg: Some(r1),
                            slot: None,
                            aliased: false,
                        },
                    );
                    alloc.reg_val.insert(r1, *d);
                }
            }
            Op::Chk { src } => {
                let rs = alloc.ensure_reg(ctx, *src);
                ctx.emit(Inst::Chk { rs });
            }
        }
        alloc.retire(i, &op.uses(), op.def());
    }

    // Terminator.
    let term_pos = block.ops.len();
    match &block.term {
        Terminator::Jump(target) => {
            if target.0 as usize != bi + 1 {
                let at = ctx.emit(Inst::Jal {
                    rd: Reg::ZERO,
                    offset: 0,
                });
                ctx.fixups.push(Fixup {
                    at,
                    target: *target,
                });
            }
        }
        Terminator::Branch {
            cond,
            a,
            b,
            then_block,
            else_block,
        } => {
            let ra = alloc.ensure_reg(ctx, *a);
            let rb = alloc.ensure_reg(ctx, *b);
            let at = ctx.emit(Inst::Branch {
                cond: *cond,
                rs1: ra,
                rs2: rb,
                offset: 0,
            });
            ctx.fixups.push(Fixup {
                at,
                target: *then_block,
            });
            if else_block.0 as usize != bi + 1 {
                let at = ctx.emit(Inst::Jal {
                    rd: Reg::ZERO,
                    offset: 0,
                });
                ctx.fixups.push(Fixup {
                    at,
                    target: *else_block,
                });
            }
        }
        Terminator::Ret { value } => {
            if let Some(v) = value {
                let rv = alloc.ensure_reg(ctx, *v);
                if rv != Reg::r(1) {
                    ctx.emit(Inst::Alu {
                        op: AluOp::Add,
                        rd: Reg::r(1),
                        rs1: rv,
                        rs2: Reg::ZERO,
                    });
                }
            }
            // Epilogue: restore saved registers, fp/ra, pop the frame.
            for (k, &reg) in ctx.saved.clone().iter().enumerate() {
                ctx.emit(Inst::Load {
                    width: Width::B8,
                    rd: reg,
                    base: Reg::SP,
                    offset: (saved_base + 8 * k as u32) as i16,
                });
            }
            if ctx.save_ra_fp {
                ctx.emit(Inst::Load {
                    width: Width::B8,
                    rd: Reg::FP,
                    base: Reg::SP,
                    offset: fp_off as i16,
                });
                ctx.emit(Inst::Load {
                    width: Width::B8,
                    rd: Reg::RA,
                    base: Reg::SP,
                    offset: ra_off as i16,
                });
            }
            ctx.emit(Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: ctx.frame as i16,
            });
            ctx.emit(Inst::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            });
        }
    }
    alloc.retire(term_pos, &block.term.uses(), None);
}

/// A `LoadLocal` from a promoted local may alias the home register only if
/// no store to that local intervenes before the loaded value's last use.
fn alias_is_safe(
    _f: &Function,
    block: &crate::ir::Block,
    at: usize,
    dst: Val,
    local: LocalId,
    alloc: &BlockAlloc,
) -> bool {
    let last_use = alloc
        .uses
        .get(&dst)
        .and_then(|q| q.back().copied())
        .unwrap_or(at);
    for op in &block.ops[at + 1..last_use.min(block.ops.len())] {
        if matches!(op, Op::StoreLocal { local: l, .. } if *l == local) {
            return false;
        }
    }
    // The terminator cannot store; nothing else mutates promoted locals.
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::opt::{optimize, OptLevel};

    fn compile_at(level: OptLevel) -> CompiledModule {
        let mut mb = ModuleBuilder::new();
        let helper = mb.function("helper", 1, true, |fb| {
            let x = fb.param(0);
            let v = fb.get(x);
            let r = fb.mul_imm(v, 3);
            fb.ret(Some(r));
        });
        mb.function("main", 1, true, |fb| {
            let n = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let h = fb.call(helper, &[iv]);
                let a = fb.get(acc);
                let s = fb.add(a, h);
                fb.set(acc, s);
            });
            let r = fb.get(acc);
            fb.chk(r);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        compile(&optimize(&m, level), level)
    }

    #[test]
    fn produces_one_object_per_function() {
        let cm = compile_at(OptLevel::O0);
        assert_eq!(cm.objects.len(), 2);
        assert_eq!(cm.objects[0].symbol, "helper");
        assert_eq!(cm.objects[1].symbol, "main");
    }

    #[test]
    fn call_sites_get_relocations() {
        let cm = compile_at(OptLevel::O0);
        let main = &cm.objects[1];
        assert!(main
            .relocs
            .iter()
            .any(|r| matches!(&r.kind, RelocKind::Call { symbol } if symbol == "helper")));
    }

    #[test]
    fn o3_inlines_away_the_call_reloc() {
        let cm = compile_at(OptLevel::O3);
        let main = &cm.objects[1];
        assert!(
            !main
                .relocs
                .iter()
                .any(|r| matches!(&r.kind, RelocKind::Call { .. })),
            "O3 should inline the helper"
        );
    }

    #[test]
    fn alignment_grows_with_level() {
        assert_eq!(compile_at(OptLevel::O0).objects[0].align, 4);
        assert_eq!(compile_at(OptLevel::O2).objects[0].align, 16);
        assert_eq!(compile_at(OptLevel::O3).objects[0].align, 32);
    }

    #[test]
    fn o2_uses_fewer_stack_accesses_than_o0() {
        let count_mem = |cm: &CompiledModule| {
            cm.objects[1]
                .code
                .iter()
                .filter(|i| matches!(i, Inst::Load { base, .. } | Inst::Store { rs: _, base, .. } if *base == Reg::SP))
                .count()
        };
        let o0 = compile_at(OptLevel::O0);
        let o2 = compile_at(OptLevel::O2);
        assert!(
            count_mem(&o2) < count_mem(&o0),
            "promotion should remove sp-relative traffic (O0 {} vs O2 {})",
            count_mem(&o0),
            count_mem(&o2)
        );
    }

    #[test]
    fn materialize_covers_all_ranges() {
        use crate::layout;
        // Execute materialization sequences with a tiny ALU-only evaluator.
        let check = |value: u64| {
            let mut ctx = FuncCtx {
                homes: vec![],
                frame: 16,
                spill_base: 0,
                saved: vec![],
                save_ra_fp: false,
                insts: vec![],
                relocs: vec![],
                fixups: vec![],
                block_starts: vec![],
            };
            materialize(&mut ctx, Reg::r(5), value);
            let mut regs = [0u64; 32];
            for inst in &ctx.insts {
                match *inst {
                    Inst::AluImm { op, rd, rs1, imm } => {
                        regs[rd.index() as usize] =
                            op.eval(regs[rs1.index() as usize], op.extend_imm(imm));
                    }
                    Inst::Lui { rd, imm } => regs[rd.index() as usize] = u64::from(imm) << 16,
                    other => panic!("unexpected {other}"),
                }
            }
            assert_eq!(regs[5], value, "materialize({value:#x})");
            let _ = layout::PAGE_SIZE;
        };
        for v in [
            0u64,
            1,
            42,
            0x7FFF,
            0x8000,
            0xFFFF,
            0x1_0000,
            0xDEAD_BEEF,
            0xFFFF_FFFF,
            0x1_0000_0000,
            0x1234_5678_9ABC_DEF0,
            u64::MAX,
            (-1i64 as u64),
            (-32768i64 as u64),
            (-32769i64 as u64),
        ] {
            check(v);
        }
    }
}
