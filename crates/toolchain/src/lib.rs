//! # biaslab-toolchain — a miniature compiler, linker and loader
//!
//! This crate is the toolchain substrate of the `biaslab` reproduction of
//! *Producing Wrong Data Without Doing Anything Obviously Wrong!* (ASPLOS
//! 2009). It stands in for gcc/icc, `ld` and the UNIX program loader, and
//! deliberately reproduces the two properties the paper's bias factors act
//! through:
//!
//! * the **linker** lays functions out in **link order**, so permuting the
//!   objects given to [`link::Linker`] moves every code address; and
//! * the **loader** copies the process **environment onto the top of the
//!   stack**, so growing the environment shifts the initial stack pointer
//!   and with it every stack frame and stack buffer.
//!
//! Pipeline:
//!
//! ```text
//! ModuleBuilder → Module (IR) → optimize(OptLevel) → codegen → ObjectFile
//!       → Linker (link order!) → Executable → Loader (environment!) → Process
//! ```
//!
//! The [`interp::Interpreter`] executes IR directly and defines reference
//! semantics; differential tests check that every optimization level and
//! machine produces identical checksums.
//!
//! # Examples
//!
//! Compile and link a module at two optimization levels:
//!
//! ```
//! use biaslab_toolchain::{codegen, link::Linker, opt, ModuleBuilder, OptLevel};
//!
//! let mut mb = ModuleBuilder::new();
//! mb.function("main", 0, true, |fb| {
//!     let v = fb.const_(2);
//!     let w = fb.mul_imm(v, 21);
//!     fb.chk(w);
//!     fb.ret(Some(w));
//! });
//! let module = mb.finish()?;
//!
//! for level in [OptLevel::O2, OptLevel::O3] {
//!     let optimized = opt::optimize(&module, level);
//!     let objects = codegen::compile(&optimized, level);
//!     let exe = Linker::new().link(&objects, "main")?;
//!     assert!(!exe.text().is_empty());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod codegen;
pub mod dataflow;
pub mod interp;
pub mod ir;
pub mod layout;
pub mod link;
pub mod load;
pub mod mem;
pub mod obj;
pub mod opt;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use ir::Module;
pub use opt::OptLevel;
