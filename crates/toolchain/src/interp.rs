//! A reference interpreter for the IR.
//!
//! The interpreter defines the *semantics* the rest of the toolchain must
//! preserve: the workload suite computes expected checksums with it, and the
//! differential tests check that compiling at any optimization level and
//! running on any simulated machine produces the same checksum and return
//! value.
//!
//! Globals are laid out exactly as the linker lays them out (via
//! [`crate::layout::layout_globals`]) so that address arithmetic on global
//! pointers behaves identically in both worlds. Stack frames grow down from
//! [`crate::layout::STACK_TOP`]; the interpreter does not model an
//! environment block because the environment is semantically inert — that
//! inertness is the paper's whole point.

use std::fmt;

use biaslab_isa::checksum_fold;

use crate::ir::{FuncId, Function, Module, Op, Terminator, Val};
use crate::layout::{align_down, align_up, layout_globals, STACK_TOP};
use crate::mem::PagedMem;

/// Result of executing a function to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The function's return value, if it returns one.
    pub return_value: Option<u64>,
    /// Final architectural checksum (see [`biaslab_isa::checksum_fold`]).
    pub checksum: u64,
    /// Number of IR operations executed (terminators included).
    pub ops_executed: u64,
}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The named function does not exist in the module.
    UnknownFunction(String),
    /// The operation budget was exhausted (likely an infinite loop).
    FuelExhausted,
    /// The call stack exceeded the depth limit.
    DepthExceeded,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            InterpError::FuelExhausted => f.write_str("interpreter fuel exhausted"),
            InterpError::DepthExceeded => f.write_str("interpreter call depth exceeded"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The reference interpreter. Holds the module's data image and the
/// execution state (memory, checksum, fuel).
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    global_addrs: Vec<u32>,
    mem: PagedMem,
    checksum: u64,
    fuel: u64,
    ops: u64,
    depth: u32,
    max_depth: u32,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with the module's globals initialized in
    /// memory and a default fuel budget of 2^34 operations.
    #[must_use]
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        let global_addrs = layout_globals(&module.globals);
        let mut mem = PagedMem::new();
        for (g, &addr) in module.globals.iter().zip(&global_addrs) {
            if !g.init.is_empty() {
                mem.write_bytes(addr, &g.init);
            }
        }
        Interpreter {
            module,
            global_addrs,
            mem,
            checksum: 0,
            fuel: 1 << 34,
            ops: 0,
            depth: 0,
            max_depth: 2048,
        }
    }

    /// Replaces the fuel budget (number of IR ops before
    /// [`InterpError::FuelExhausted`]).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Read access to interpreter memory (for tests inspecting globals).
    #[must_use]
    pub fn memory(&self) -> &PagedMem {
        &self.mem
    }

    /// The address assigned to a global.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn global_addr(&self, index: usize) -> u32 {
        self.global_addrs[index]
    }

    /// Runs the named function with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::UnknownFunction`] if `name` is not defined,
    /// or a resource-limit error from execution.
    pub fn call_by_name(&mut self, name: &str, args: &[u64]) -> Result<Outcome, InterpError> {
        let id = self
            .module
            .function_by_name(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_owned()))?;
        self.call(id, args)
    }

    /// Runs function `id` with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns a resource-limit error if fuel or call depth is exceeded.
    pub fn call(&mut self, id: FuncId, args: &[u64]) -> Result<Outcome, InterpError> {
        let ret = self.exec_function(id, args, STACK_TOP)?;
        Ok(Outcome {
            return_value: ret,
            checksum: self.checksum,
            ops_executed: self.ops,
        })
    }

    fn burn(&mut self) -> Result<(), InterpError> {
        if self.ops >= self.fuel {
            return Err(InterpError::FuelExhausted);
        }
        self.ops += 1;
        Ok(())
    }

    fn exec_function(
        &mut self,
        id: FuncId,
        args: &[u64],
        sp_in: u32,
    ) -> Result<Option<u64>, InterpError> {
        if self.depth >= self.max_depth {
            return Err(InterpError::DepthExceeded);
        }
        self.depth += 1;
        let result = self.exec_function_inner(id, args, sp_in);
        self.depth -= 1;
        result
    }

    fn exec_function_inner(
        &mut self,
        id: FuncId,
        args: &[u64],
        sp_in: u32,
    ) -> Result<Option<u64>, InterpError> {
        let f: &Function = self.module.func(id);
        debug_assert_eq!(args.len() as u32, f.param_count);

        // Lay out the frame: locals packed downward from sp_in.
        let mut size = 0u32;
        let mut offsets = Vec::with_capacity(f.locals.len());
        for slot in &f.locals {
            size = align_up(size, slot.align);
            offsets.push(size);
            size += slot.size;
        }
        let frame_base = align_down(sp_in - align_up(size, 16), 16);
        let local_addr = |i: usize| frame_base + offsets[i];

        for (i, &arg) in args.iter().enumerate() {
            self.mem.write_u64(local_addr(i), arg);
        }

        let mut vals = vec![0u64; f.next_val as usize];
        let mut block = 0usize;
        loop {
            let b = &f.blocks[block];
            for op in &b.ops {
                self.burn()?;
                match op {
                    Op::Const { dst, value } => vals[dst.0 as usize] = *value,
                    Op::Bin { op, dst, a, b } => {
                        vals[dst.0 as usize] = op.eval(vals[a.0 as usize], vals[b.0 as usize]);
                    }
                    Op::BinImm { op, dst, a, imm } => {
                        vals[dst.0 as usize] = op.eval(vals[a.0 as usize], *imm as u64);
                    }
                    Op::LoadLocal { dst, local, offset } => {
                        vals[dst.0 as usize] =
                            self.mem.read_u64(local_addr(local.0 as usize) + offset);
                    }
                    Op::StoreLocal { local, offset, src } => {
                        self.mem
                            .write_u64(local_addr(local.0 as usize) + offset, vals[src.0 as usize]);
                    }
                    Op::AddrLocal { dst, local } => {
                        vals[dst.0 as usize] = u64::from(local_addr(local.0 as usize));
                    }
                    Op::AddrGlobal { dst, global } => {
                        vals[dst.0 as usize] = u64::from(self.global_addrs[global.0 as usize]);
                    }
                    Op::Load {
                        width,
                        dst,
                        addr,
                        offset,
                    } => {
                        let a = (vals[addr.0 as usize] as u32).wrapping_add(*offset as u32);
                        vals[dst.0 as usize] = self.mem.read_le(a, width.bytes());
                    }
                    Op::Store {
                        width,
                        addr,
                        offset,
                        src,
                    } => {
                        let a = (vals[addr.0 as usize] as u32).wrapping_add(*offset as u32);
                        self.mem.write_le(a, width.bytes(), vals[src.0 as usize]);
                    }
                    Op::Call { dst, func, args } => {
                        let argv: Vec<u64> = args.iter().map(|v| vals[v.0 as usize]).collect();
                        let ret = self.exec_function(*func, &argv, frame_base)?;
                        if let Some(d) = dst {
                            vals[d.0 as usize] = ret.unwrap_or(0);
                        }
                    }
                    Op::Chk { src } => {
                        self.checksum = checksum_fold(self.checksum, vals[src.0 as usize]);
                    }
                }
            }
            self.burn()?;
            match &b.term {
                Terminator::Jump(t) => block = t.0 as usize,
                Terminator::Branch {
                    cond,
                    a,
                    b: rhs,
                    then_block,
                    else_block,
                } => {
                    block = if cond.eval(vals[a.0 as usize], vals[rhs.0 as usize]) {
                        then_block.0 as usize
                    } else {
                        else_block.0 as usize
                    };
                }
                Terminator::Ret { value } => {
                    return Ok(value.map(|v: Val| vals[v.0 as usize]));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use biaslab_isa::{AluOp, Cond, Width};

    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::Global;

    #[test]
    fn returns_constant() {
        let mut mb = ModuleBuilder::new();
        mb.function("f", 0, true, |fb| {
            let v = fb.const_(42);
            fb.ret(Some(v));
        });
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m).call_by_name("f", &[]).unwrap();
        assert_eq!(out.return_value, Some(42));
        assert_eq!(out.checksum, 0);
    }

    #[test]
    fn loop_sums() {
        let mut mb = ModuleBuilder::new();
        mb.function("sum", 1, true, |fb| {
            let n = fb.param(0);
            let acc = fb.local_scalar();
            let z = fb.const_(0);
            fb.set(acc, z);
            let i = fb.local_scalar();
            fb.counted_loop(i, 0, n, 1, |fb, iv| {
                let a = fb.get(acc);
                let s = fb.add(a, iv);
                fb.set(acc, s);
            });
            let r = fb.get(acc);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m).call_by_name("sum", &[100]).unwrap();
        assert_eq!(out.return_value, Some(4950));
    }

    #[test]
    fn checksum_accumulates() {
        let mut mb = ModuleBuilder::new();
        mb.function("f", 0, false, |fb| {
            let a = fb.const_(1);
            fb.chk(a);
            let b = fb.const_(2);
            fb.chk(b);
            fb.ret(None);
        });
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m).call_by_name("f", &[]).unwrap();
        assert_eq!(out.checksum, checksum_fold(checksum_fold(0, 1), 2));
    }

    #[test]
    fn global_load_store() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global(Global::from_words("tbl", &[10, 20, 30]));
        mb.function("f", 1, true, |fb| {
            let idx = fb.param(0);
            let base = fb.addr_global(g);
            let iv = fb.get(idx);
            let off = fb.mul_imm(iv, 8);
            let addr = fb.add(base, off);
            let v = fb.load(Width::B8, addr, 0);
            let v2 = fb.add_imm(v, 1);
            fb.store(Width::B8, addr, 0, v2);
            fb.ret(Some(v2));
        });
        let m = mb.finish().unwrap();
        let mut interp = Interpreter::new(&m);
        assert_eq!(
            interp.call_by_name("f", &[1]).unwrap().return_value,
            Some(21)
        );
        // Store persisted.
        assert_eq!(
            interp.call_by_name("f", &[1]).unwrap().return_value,
            Some(22)
        );
    }

    #[test]
    fn recursion_works() {
        let mut mb = ModuleBuilder::new();
        let fib = mb.declare("fib", 1, true);
        mb.define(fib, |fb| {
            let n = fb.param(0);
            let nv = fb.get(n);
            let two = fb.const_(2);
            let out = fb.local_scalar();
            fb.if_then_else(
                Cond::Lt,
                nv,
                two,
                |fb| {
                    let v = fb.get(n);
                    fb.set(out, v);
                },
                |fb| {
                    let v = fb.get(n);
                    let a1 = fb.bin_imm(AluOp::Sub, v, 1);
                    let r1 = fb.call(fib, &[a1]);
                    fb.set(out, r1);
                    let v2 = fb.get(n);
                    let a2 = fb.bin_imm(AluOp::Sub, v2, 2);
                    let r2 = fb.call(fib, &[a2]);
                    let prev = fb.get(out);
                    let s = fb.add(prev, r2);
                    fb.set(out, s);
                },
            );
            let r = fb.get(out);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m).call_by_name("fib", &[10]).unwrap();
        assert_eq!(out.return_value, Some(55));
    }

    #[test]
    fn stack_buffers_are_frame_local() {
        let mut mb = ModuleBuilder::new();
        mb.function("f", 0, true, |fb| {
            let buf = fb.local_buffer(64);
            let base = fb.addr(buf);
            let v = fb.const_(7);
            fb.store(Width::B8, base, 16, v);
            let r = fb.load(Width::B8, base, 16);
            fb.ret(Some(r));
        });
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m).call_by_name("f", &[]).unwrap();
        assert_eq!(out.return_value, Some(7));
    }

    #[test]
    fn fuel_limit_stops_infinite_loops() {
        let mut mb = ModuleBuilder::new();
        mb.function("spin", 0, false, |fb| {
            let b = fb.new_block();
            fb.jump(b);
            fb.switch_to(b);
            fb.jump(b);
        });
        let m = mb.finish().unwrap();
        let mut interp = Interpreter::new(&m);
        interp.set_fuel(1000);
        assert_eq!(
            interp.call_by_name("spin", &[]),
            Err(InterpError::FuelExhausted)
        );
    }

    #[test]
    fn unknown_function_is_reported() {
        let m = ModuleBuilder::new().finish().unwrap();
        let mut interp = Interpreter::new(&m);
        let err = interp.call_by_name("missing", &[]).unwrap_err();
        assert_eq!(err, InterpError::UnknownFunction("missing".into()));
        assert!(err.to_string().contains("missing"));
    }
}
