//! # biaslab-bench — the reproduction harness
//!
//! One function per table and figure of the paper (as reconstructed in
//! `DESIGN.md`), each regenerating its rows or series from scratch through
//! the public APIs of the other crates. The `repro` binary dispatches on
//! experiment ids (`fig1`…`fig10`, `table1`, `table2`, ablations); the
//! Criterion benches run the same functions at reduced size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod parallel;

pub use experiments::{run_experiment, Effort, EXPERIMENTS};
