//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro list                    # available experiment ids
//! repro fig3                    # regenerate one experiment at full size
//! repro fig3 --effort quick     # reduced size (CI-friendly); --quick works too
//! repro all [--effort quick]    # everything, in paper order
//! repro all --jobs 4            # run experiments concurrently
//! repro all --serial            # one at a time, in-process
//! repro fig1 --trace            # also export a telemetry trace
//! repro fig1 --trace-profile    # trace + per-function cycle attribution
//! repro all --faults seed=7,save.io=0.5   # deterministic fault injection
//! ```
//!
//! Measurements persist under `results/measurements.jsonl` (set
//! `BIASLAB_RESULTS_DIR` to relocate): an interrupted `repro all` resumes
//! from what it already measured. `--no-resume` makes a run ephemeral — it
//! neither reads nor rewrites the results file. Cache and timing
//! instrumentation is reported per experiment on stderr; experiment output
//! on stdout is byte-identical with or without the cache.
//!
//! `repro all` runs experiments concurrently on the shared orchestrator
//! cache (`--jobs N` to pick the worker count, default the machine's
//! parallelism). Output is buffered per experiment and flushed in paper
//! order, so stdout is byte-identical to `--serial` at any worker count.
//!
//! `--faults <spec>` (or the `BIASLAB_FAULTS` environment variable; the
//! flag wins) installs a deterministic fault schedule — seeded I/O errors,
//! short writes, leader panics, and delays — to exercise the recovery
//! paths. Experiment output on stdout stays byte-identical under any
//! schedule; only stderr instrumentation and `fault.*` counters differ.
//!
//! `--trace` records the whole measurement procedure — phase spans, cache
//! hits/misses/evictions, worker attribution — and exports it as JSONL
//! under `results/traces/` (render it with `biaslab trace <file>`).
//! `--trace-profile` additionally attaches per-function cycle attribution
//! to every simulated run. Tracing never changes measurements: counters
//! and stdout are bit-identical with or without it.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use biaslab_bench::{parallel, run_experiment, Effort, EXPERIMENTS};
use biaslab_core::{faults, telemetry, Orchestrator};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment-id | all | list> [--effort quick|full] [--no-resume] \
         [--jobs N | --serial] [--trace | --trace-profile] [--faults <spec>]"
    );
    eprintln!(
        "env: BIASLAB_FAULTS=<spec> installs a fault schedule like --faults \
         (e.g. seed=7,save.io=0.5,leader.panic=@1)"
    );
    eprintln!(
        "     BIASLAB_EXEC=block|collapsed|event pins the simulator's \
         execution path (alias: BIASLAB_KERNEL); all are bit-identical"
    );
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:12} {}", e.id, e.title);
    }
    ExitCode::FAILURE
}

/// Parses `--quick` / `--effort quick|full` (the last one given wins).
fn parse_effort(args: &[String]) -> Option<Effort> {
    let mut effort = Effort::Full;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--effort" => match it.next().map(String::as_str) {
                Some("quick") => effort = Effort::Quick,
                Some("full") => effort = Effort::Full,
                other => {
                    eprintln!("--effort takes `quick` or `full`, got {other:?}");
                    return None;
                }
            },
            _ => {}
        }
    }
    Some(effort)
}

/// Installs the fault schedule from `--faults <spec>` (the last one given
/// wins), falling back to `BIASLAB_FAULTS` when the flag is absent.
fn install_faults(args: &[String]) -> Result<(), String> {
    let mut flag_spec = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--faults" {
            match it.next() {
                Some(s) => flag_spec = Some(s.clone()),
                None => {
                    return Err("--faults takes a spec, e.g. seed=7,save.io=0.5".to_string());
                }
            }
        }
    }
    match flag_spec {
        Some(s) => {
            faults::install(&faults::FaultSpec::parse(&s)?);
            Ok(())
        }
        None => faults::install_from_env().map(|_| ()),
    }
}

/// How `repro all` schedules experiments.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// One at a time, in-process — the reference for stdout byte-identity.
    Serial,
    /// Concurrent on this many workers, output flushed in paper order.
    Parallel(usize),
}

/// Parses `--serial` / `--jobs N` (the last one given wins; the default is
/// one worker per available core).
fn parse_mode(args: &[String]) -> Option<Mode> {
    let mut mode = Mode::Parallel(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serial" => mode = Mode::Serial,
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => mode = Mode::Parallel(n),
                _ => {
                    eprintln!("--jobs takes a positive integer");
                    return None;
                }
            },
            _ => {}
        }
    }
    Some(mode)
}

fn results_dir() -> PathBuf {
    std::env::var_os("BIASLAB_RESULTS_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

fn results_path() -> PathBuf {
    results_dir().join("measurements.jsonl")
}

fn effort_str(effort: Effort) -> &'static str {
    match effort {
        Effort::Quick => "quick",
        Effort::Full => "full",
    }
}

/// Exports the buffered trace (when tracing) and reports where it went.
fn export_trace(target: &str, effort: Effort) {
    if !telemetry::enabled() {
        return;
    }
    let path = results_dir()
        .join("traces")
        .join(format!("repro-{target}-{}.jsonl", effort_str(effort)));
    let label = format!("repro {target} --effort {}", effort_str(effort));
    match telemetry::export(&path, &label, &Orchestrator::global().metrics()) {
        Ok(n) => eprintln!("[repro] trace: {n} event(s) -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write trace to {}: {e}", path.display()),
    }
}

fn run_one(id: &str, title: &str, effort: Effort, persist: bool) {
    let orch = Orchestrator::global();
    let before = orch.stats();
    let start = std::time::Instant::now();
    let span = telemetry::enabled().then(|| {
        telemetry::set_scope(id);
        telemetry::metrics().counter("repro.experiments").add(1);
        telemetry::Span::open("experiment", id)
    });
    let output = run_experiment(id, effort).expect("registered experiment");
    if let Some(span) = span {
        span.close();
        telemetry::clear_scope();
    }
    println!("{output}");
    let spent = start.elapsed();
    if persist {
        orch.persist(&results_path());
    }
    eprintln!(
        "[repro] {id} ({title}): {:.2}s, {}",
        spent.as_secs_f64(),
        orch.stats().delta(&before)
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(effort) = parse_effort(&args) else {
        return usage();
    };
    let Some(mode) = parse_mode(&args) else {
        return usage();
    };
    let resume = !args.iter().any(|a| a == "--no-resume");
    if let Err(e) = install_faults(&args) {
        eprintln!("invalid fault spec: {e}\n");
        return usage();
    }
    let trace_profiles = args.iter().any(|a| a == "--trace-profile");
    if trace_profiles || args.iter().any(|a| a == "--trace") {
        telemetry::enable();
        if trace_profiles {
            telemetry::enable_profiles();
        }
    }
    let mut flag_value_next = false;
    let targets: Vec<&String> = args
        .iter()
        .filter(|a| {
            let is_flag_value = std::mem::replace(
                &mut flag_value_next,
                **a == "--effort" || **a == "--jobs" || **a == "--faults",
            );
            !a.starts_with("--") && !is_flag_value
        })
        .collect();

    let Some(&target) = targets.first() else {
        return usage();
    };

    if target != "list" && resume {
        let path = results_path();
        match Orchestrator::global().load(&path) {
            Ok(0) => {}
            Ok(n) => eprintln!("[repro] resumed {n} measurement(s) from {}", path.display()),
            Err(e) => eprintln!("warning: could not read {}: {e}", path.display()),
        }
    }

    match target.as_str() {
        "list" => {
            for e in EXPERIMENTS {
                println!("{:12} {}", e.id, e.title);
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let code = match mode {
                Mode::Serial => {
                    for e in EXPERIMENTS {
                        parallel::write_banner(&mut std::io::stdout(), e.id, e.title)
                            .expect("write to stdout");
                        run_one(e.id, e.title, effort, resume);
                    }
                    ExitCode::SUCCESS
                }
                Mode::Parallel(jobs) => {
                    let orch = Orchestrator::global();
                    let path = results_path();
                    let mut out = std::io::stdout().lock();
                    let failures = parallel::run_all(EXPERIMENTS, effort, jobs, &mut out, |run| {
                        if telemetry::enabled() {
                            telemetry::metrics().counter("repro.experiments").add(1);
                        }
                        match &run.outcome {
                            Ok(_) => {
                                eprintln!("[repro] {} ({}): {:.2}s", run.id, run.title, run.seconds)
                            }
                            Err(msg) => {
                                if telemetry::enabled() {
                                    telemetry::metrics().counter("repro.panics").add(1);
                                }
                                eprintln!(
                                    "[repro] {} ({}): PANICKED after {:.2}s: {msg}",
                                    run.id, run.title, run.seconds
                                );
                            }
                        }
                        if resume {
                            orch.persist(&path);
                        }
                    })
                    .expect("write to stdout");
                    out.flush().expect("flush stdout");
                    drop(out);
                    if failures > 0 {
                        eprintln!("[repro] {failures} experiment(s) panicked");
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
            };
            eprintln!("[repro] totals: {}", Orchestrator::global().stats());
            export_trace("all", effort);
            code
        }
        id => {
            if !EXPERIMENTS.iter().any(|e| e.id == id) {
                eprintln!("unknown experiment `{id}`\n");
                return usage();
            }
            let title = EXPERIMENTS
                .iter()
                .find(|e| e.id == id)
                .expect("checked")
                .title;
            run_one(id, title, effort, resume);
            export_trace(id, effort);
            ExitCode::SUCCESS
        }
    }
}
