//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro list              # available experiment ids
//! repro fig3              # regenerate one experiment at full size
//! repro fig3 --quick      # reduced size (CI-friendly)
//! repro all [--quick]     # everything, in paper order
//! ```

use std::process::ExitCode;

use biaslab_bench::{run_experiment, Effort, EXPERIMENTS};

fn usage() -> ExitCode {
    eprintln!("usage: repro <experiment-id | all | list> [--quick]");
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:12} {}", e.id, e.title);
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let effort = if quick { Effort::Quick } else { Effort::Full };

    let Some(&target) = targets.first() else {
        return usage();
    };

    match target.as_str() {
        "list" => {
            for e in EXPERIMENTS {
                println!("{:12} {}", e.id, e.title);
            }
            ExitCode::SUCCESS
        }
        "all" => {
            for e in EXPERIMENTS {
                println!("================================================================");
                println!("== {} — {}", e.id, e.title);
                println!("================================================================");
                println!("{}", (e.run)(effort));
            }
            ExitCode::SUCCESS
        }
        id => match run_experiment(id, effort) {
            Some(output) => {
                println!("{output}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment `{id}`\n");
                usage()
            }
        },
    }
}
