//! Figures 7, 8 and 10: why bias arises, established by intervention.

use std::fmt::Write as _;

use biaslab_core::causal::{CausalExperiment, Intervention, Mediator};
use biaslab_core::report::{render_series, sparkline, Table};
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;

use super::{base_setup, harness, Effort};

/// Fig. 7 ®: dose response of perlbench cycles (and the bank-conflict
/// mediator) to a *direct* loader stack shift on the simulator machine —
/// the environment bypassed entirely, periodic structure at cache-geometry
/// granularity.
pub(crate) fn fig7(effort: Effort) -> String {
    let h = harness("perlbench");
    let base = base_setup(MachineConfig::o3cpu(), OptLevel::O2);
    let steps = effort.points(64) as u32;
    let mut exp = CausalExperiment::new(base, Intervention::StackShift, 1024, steps);
    exp.mediator = Mediator::BankConflicts;
    let report = exp.run(&h, effort.input()).expect("experiment runs");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fig7: perlbench cycles vs direct stack shift (o3cpu)\n"
    );
    let cycles: Vec<f64> = report.curve.iter().map(|p| p.cycles as f64).collect();
    let conflicts: Vec<f64> = report
        .curve
        .iter()
        .map(|p| p.counters.bank_conflicts as f64)
        .collect();
    let _ = writeln!(out, "cycles:         {}", sparkline(&cycles));
    let _ = writeln!(out, "bank conflicts: {}", sparkline(&conflicts));
    let _ = writeln!(
        out,
        "effect {:.3}%  placebo {:.5}%  mediator correlation {:?}  confirmed: {}\n",
        100.0 * report.effect,
        100.0 * report.placebo_effect,
        report
            .mediator_correlation
            .map(|c| (c * 1000.0).round() / 1000.0),
        report.confirmed,
    );
    let pts: Vec<(f64, f64)> = report
        .curve
        .iter()
        .map(|p| (f64::from(p.dose), p.cycles as f64))
        .collect();
    out.push_str(&render_series("fig7-cycles-vs-stack-shift", &pts));
    out
}

/// Fig. 8 ®: dose response to a code-base shift (the link-order mechanism:
/// moving code addresses re-aliases branch-predictor and BTB entries).
pub(crate) fn fig8(effort: Effort) -> String {
    let h = harness("perlbench");
    let base = base_setup(MachineConfig::core2(), OptLevel::O2);
    let steps = effort.points(64) as u32;
    let mut exp = CausalExperiment::new(base, Intervention::CodeShift, 4096, steps);
    exp.mediator = Mediator::Mispredicts;
    let report = exp.run(&h, effort.input()).expect("experiment runs");

    let mut out = String::new();
    let _ = writeln!(out, "fig8: perlbench cycles vs code-base shift (core2)\n");
    let cycles: Vec<f64> = report.curve.iter().map(|p| p.cycles as f64).collect();
    let mispredicts: Vec<f64> = report
        .curve
        .iter()
        .map(|p| p.counters.mispredicts as f64)
        .collect();
    let _ = writeln!(out, "cycles:      {}", sparkline(&cycles));
    let _ = writeln!(out, "mispredicts: {}", sparkline(&mispredicts));
    let _ = writeln!(
        out,
        "effect {:.3}%  placebo {:.5}%  mediator correlation {:?}  confirmed: {}\n",
        100.0 * report.effect,
        100.0 * report.placebo_effect,
        report
            .mediator_correlation
            .map(|c| (c * 1000.0).round() / 1000.0),
        report.confirmed,
    );
    let pts: Vec<(f64, f64)> = report
        .curve
        .iter()
        .map(|p| (f64::from(p.dose), p.cycles as f64))
        .collect();
    out.push_str(&render_series("fig8-cycles-vs-code-shift", &pts));
    out
}

/// Fig. 10 ®: the full causal workflow on one page — for each candidate
/// mechanism, intervention effect vs placebo effect and the verdict.
pub(crate) fn fig10(effort: Effort) -> String {
    let h = harness("perlbench");
    let base = base_setup(MachineConfig::o3cpu(), OptLevel::O2);
    let steps = effort.points(24) as u32;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fig10: causal analysis of the environment-size effect (perlbench, o3cpu)\n"
    );
    let mut table = Table::new(vec![
        "intervention",
        "effect%",
        "placebo%",
        "mediator-r",
        "verdict",
    ]);
    for (intervention, mediator) in [
        (Intervention::EnvironmentSize, Mediator::BankConflicts),
        (Intervention::StackShift, Mediator::BankConflicts),
        (Intervention::CodeShift, Mediator::Mispredicts),
    ] {
        let mut exp = CausalExperiment::new(base.clone(), intervention, 1024, steps);
        exp.mediator = mediator;
        let r = exp.run(&h, effort.input()).expect("experiment runs");
        table.row(vec![
            intervention.name().to_owned(),
            format!("{:.4}", 100.0 * r.effect),
            format!("{:.5}", 100.0 * r.placebo_effect),
            r.mediator_correlation
                .map_or("n/a".to_owned(), |c| format!("{c:.3}")),
            if r.confirmed {
                "causal".to_owned()
            } else {
                "not shown".to_owned()
            },
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nReading: the stack-shift intervention reproduces the environment-size \
         effect with the environment held empty, and the content placebo is \
         silent — the stack placement, not the environment variables \
         themselves, is the cause."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_quick_mentions_mediator_and_series() {
        let out = fig7(Effort::Quick);
        assert!(out.contains("bank conflicts"));
        assert!(out.contains("# series: fig7-cycles-vs-stack-shift"));
    }

    #[test]
    fn fig10_quick_renders_verdict_table() {
        let out = fig10(Effort::Quick);
        assert!(out.contains("intervention"));
        assert!(out.contains("stack shift"));
        assert!(out.contains("placebo"));
    }
}
