//! Figures 1–4: the environment-size studies.

use std::fmt::Write as _;

use biaslab_core::bias::sweep_factor;
use biaslab_core::report::{render_series, sparkline, Table};
use biaslab_core::stats::ViolinSummary;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::suite;

use super::{base_setup, env_points, harness, Effort};

/// Fig. 1 ®: raw perlbench cycle counts at O2 and O3 as the environment
/// grows — the plot that first reveals that an "inert" variable moves the
/// measurement.
pub(crate) fn fig1(effort: Effort) -> String {
    let h = harness("perlbench");
    let n = effort.points(48);
    let envs = env_points(n, 112);
    let mut out = String::new();
    let _ = writeln!(out, "fig1: perlbench cycles vs environment size (core2)\n");
    for opt in [OptLevel::O2, OptLevel::O3] {
        let base = base_setup(MachineConfig::core2(), opt);
        let setups: Vec<_> = envs.iter().map(|e| base.with_env(e.clone())).collect();
        let results = biaslab_core::Orchestrator::global().sweep(&h, &setups, effort.input());
        let mut points = Vec::with_capacity(n);
        for (env, r) in envs.iter().zip(results) {
            let m = r.expect("measurement verified");
            points.push((f64::from(env.stack_bytes()), m.cycles() as f64));
        }
        let cycles: Vec<f64> = points.iter().map(|p| p.1).collect();
        let min = cycles.iter().copied().fold(f64::INFINITY, f64::min);
        let max = cycles.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let _ = writeln!(
            out,
            "{opt}: cycles in [{min:.0}, {max:.0}]  spread {:.3}%  {}",
            100.0 * (max / min - 1.0),
            sparkline(&cycles)
        );
        out.push_str(&render_series(&format!("perlbench-{opt}-cycles"), &points));
    }
    out
}

/// Fig. 2 ®: the same sweep as Fig. 3 on every machine model — bias is not
/// a property of one microarchitecture.
pub(crate) fn fig2(effort: Effort) -> String {
    let h = harness("perlbench");
    let n = effort.points(32);
    let envs = env_points(n, 176);
    let mut out = String::new();
    let _ = writeln!(out, "fig2: O3 speedup vs environment size, per machine\n");
    for machine in MachineConfig::all() {
        let base = base_setup(machine.clone(), OptLevel::O2);
        let setups: Vec<_> = envs.iter().map(|e| base.with_env(e.clone())).collect();
        let report = sweep_factor(
            &h,
            "environment size",
            &setups,
            OptLevel::O2,
            OptLevel::O3,
            effort.input(),
        )
        .expect("sweep succeeds");
        let speedups = report.speedups();
        let _ = writeln!(
            out,
            "{:9} speedup in [{:.4}, {:.4}]  bias {:.3}%  flips: {}  {}",
            machine.name,
            report.violin.min(),
            report.violin.max(),
            100.0 * report.bias_magnitude,
            report.conclusion_flips,
            sparkline(&speedups),
        );
        let points: Vec<(f64, f64)> = envs
            .iter()
            .map(|e| f64::from(e.stack_bytes()))
            .zip(speedups.iter().copied())
            .collect();
        out.push_str(&render_series(
            &format!("speedup-{}", machine.name),
            &points,
        ));
    }
    out
}

/// **Fig. 3** (the caption quoted in the source text): "The effect of UNIX
/// environment size on the speedup of O3 on Core 2."
pub(crate) fn fig3(effort: Effort) -> String {
    let h = harness("perlbench");
    let n = effort.points(64);
    let envs = env_points(n, 56);
    let base = base_setup(MachineConfig::core2(), OptLevel::O2);
    let setups: Vec<_> = envs.iter().map(|e| base.with_env(e.clone())).collect();
    let report = sweep_factor(
        &h,
        "environment size",
        &setups,
        OptLevel::O2,
        OptLevel::O3,
        effort.input(),
    )
    .expect("sweep succeeds");

    let speedups = report.speedups();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fig3: the effect of UNIX environment size on the speedup of O3 on Core 2\n"
    );
    let _ = writeln!(
        out,
        "speedup range [{:.4}, {:.4}], bias magnitude {:.3}%, conclusion flips: {}",
        report.violin.min(),
        report.violin.max(),
        100.0 * report.bias_magnitude,
        report.conclusion_flips,
    );
    let _ = writeln!(out, "shape: {}\n", sparkline(&speedups));
    let points: Vec<(f64, f64)> = envs
        .iter()
        .map(|e| f64::from(e.stack_bytes()))
        .zip(speedups.iter().copied())
        .collect();
    out.push_str(&render_series("fig3-speedup-vs-env", &points));
    out
}

/// Fig. 4 ®: per-benchmark violins of the O3 speedup across environment
/// sizes — measurement bias is commonplace, not a perlbench quirk.
pub(crate) fn fig4(effort: Effort) -> String {
    let n = effort.points(24);
    let envs = env_points(n, 176);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fig4: O3 speedup across environment sizes, all benchmarks (core2)\n"
    );
    let mut table = Table::new(vec![
        "benchmark",
        "min",
        "p25",
        "median",
        "p75",
        "max",
        "bias%",
        "flips",
    ]);
    for b in suite() {
        let name = b.name();
        let h = biaslab_core::harness::Harness::new(b);
        let base = base_setup(MachineConfig::core2(), OptLevel::O2);
        let setups: Vec<_> = envs.iter().map(|e| base.with_env(e.clone())).collect();
        let report = sweep_factor(
            &h,
            "environment size",
            &setups,
            OptLevel::O2,
            OptLevel::O3,
            effort.input(),
        )
        .expect("sweep succeeds");
        let v: &ViolinSummary = &report.violin;
        table.row(vec![
            name.to_owned(),
            format!("{:.4}", v.min()),
            format!("{:.4}", v.values[2]),
            format!("{:.4}", v.median()),
            format!("{:.4}", v.values[4]),
            format!("{:.4}", v.max()),
            format!("{:.3}", 100.0 * report.bias_magnitude),
            format!("{}", report.conclusion_flips),
        ]);
    }
    let _ = write!(out, "{table}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_produces_series_and_stats() {
        let out = fig3(Effort::Quick);
        assert!(out.contains("fig3"));
        assert!(out.contains("speedup range"));
        assert!(out.contains("# series: fig3-speedup-vs-env"));
        // At least 3 sweep points serialized.
        assert!(out.lines().filter(|l| l.contains(',')).count() >= 3);
    }

    #[test]
    fn fig2_quick_covers_all_machines() {
        let out = fig2(Effort::Quick);
        for m in ["pentium4", "core2", "o3cpu"] {
            assert!(out.contains(m), "{m} missing:\n{out}");
        }
    }
}
