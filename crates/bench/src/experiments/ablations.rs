//! Ablations: design-choice studies this reproduction adds on top of the
//! paper's figures (see DESIGN.md §4).

use std::fmt::Write as _;

use biaslab_core::bias::sweep_factor;
use biaslab_core::report::Table;
use biaslab_core::stats::Summary;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;

use super::{base_setup, env_points, harness, link_figs_orders, Effort};

/// `abl-align`: does the optimization level's code alignment (4/16/32
/// bytes) mask or amplify link-order sensitivity? Measured as the spread
/// of raw cycles across link orders at each level.
pub(crate) fn abl_align(effort: Effort) -> String {
    let h = harness("perlbench");
    let orders = link_figs_orders(effort.points(17));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "abl-align: link-order cycle spread per optimization level (core2)\n"
    );
    let mut table = Table::new(vec![
        "level",
        "align",
        "min-cycles",
        "max-cycles",
        "spread%",
    ]);
    for level in OptLevel::ALL {
        let base = base_setup(MachineConfig::core2(), level);
        let setups: Vec<_> = orders.iter().map(|&o| base.with_link_order(o)).collect();
        let results = biaslab_core::Orchestrator::global().sweep(&h, &setups, effort.input());
        let cycles: Vec<f64> = results
            .into_iter()
            .map(|r| r.expect("verified").cycles() as f64)
            .collect();
        let s = Summary::of(&cycles);
        table.row(vec![
            level.to_string(),
            format!("{}", level.function_align()),
            format!("{:.0}", s.min),
            format!("{:.0}", s.max),
            format!("{:.3}", 100.0 * (s.max / s.min - 1.0)),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nReading: coarser alignment quantizes function placement, changing \
         (not eliminating) which predictor/cache aliasing a link order lands on."
    );
    out
}

/// `abl-aslr`: does a random text-base offset (ASLR for code) behave like
/// an environment-size randomization for the stack? Compares the two
/// factors' bias on the same benchmark.
pub(crate) fn abl_aslr(effort: Effort) -> String {
    let h = harness("perlbench");
    let base = base_setup(MachineConfig::core2(), OptLevel::O2);
    let n = effort.points(24);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "abl-aslr: code-offset vs environment-size bias (perlbench, core2)\n"
    );

    // Environment sweep.
    let envs = env_points(n, 176);
    let env_setups: Vec<_> = envs.iter().map(|e| base.with_env(e.clone())).collect();
    let env_report = sweep_factor(
        &h,
        "environment size",
        &env_setups,
        OptLevel::O2,
        OptLevel::O3,
        effort.input(),
    )
    .expect("sweep succeeds");

    // Text-offset sweep (the linker intervention, in page-fraction steps).
    let text_setups: Vec<_> = (0..n as u32)
        .map(|i| {
            let mut s = base.clone();
            s.text_offset = i * 64;
            s
        })
        .collect();
    let text_report = sweep_factor(
        &h,
        "text offset",
        &text_setups,
        OptLevel::O2,
        OptLevel::O3,
        effort.input(),
    )
    .expect("sweep succeeds");

    let mut table = Table::new(vec!["factor", "min", "max", "bias%", "flips"]);
    for r in [&env_report, &text_report] {
        table.row(vec![
            r.factor.clone(),
            format!("{:.4}", r.violin.min()),
            format!("{:.4}", r.violin.max()),
            format!("{:.3}", 100.0 * r.bias_magnitude),
            format!("{}", r.conclusion_flips),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nReading: randomizing either address-space placement knob exposes \
         bias; a sound evaluation randomizes both (what ASLR does for free, \
         and what setup randomization does deliberately)."
    );
    out
}

/// `abl-machine`: bias magnitude as the L1D associativity shrinks — layout
/// conflicts are absorbed by high associativity and exposed by low.
pub(crate) fn abl_machine(effort: Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "abl-machine: env-size bias vs L1D associativity (perlbench)\n"
    );
    let n = effort.points(16);
    let envs = env_points(n, 256);
    let mut table = Table::new(vec!["l1d-ways", "min", "max", "bias%"]);
    for ways in [1u32, 2, 4, 8] {
        let mut machine = MachineConfig::o3cpu();
        machine.name = format!("o3cpu-{ways}way");
        machine.l1d.ways = ways;
        let h = harness("perlbench");
        let base = base_setup(machine, OptLevel::O2);
        let setups: Vec<_> = envs.iter().map(|e| base.with_env(e.clone())).collect();
        let report = sweep_factor(
            &h,
            "environment size",
            &setups,
            OptLevel::O2,
            OptLevel::O3,
            effort.input(),
        )
        .expect("sweep succeeds");
        table.row(vec![
            format!("{ways}"),
            format!("{:.4}", report.violin.min()),
            format!("{:.4}", report.violin.max()),
            format!("{:.3}", 100.0 * report.bias_magnitude),
        ]);
    }
    let _ = write!(out, "{table}");
    out
}

/// `abl-warmup`: cold-start vs steady-state measurement — how much of a
/// run is warm-up transient, and does warm-up change the O3 conclusion?
pub(crate) fn abl_warmup(effort: Effort) -> String {
    use biaslab_core::harness::CachePolicy;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "abl-warmup: cold vs warm repetitions (core2)
"
    );
    let mut table = Table::new(vec![
        "benchmark",
        "cold-cycles",
        "warm-cycles",
        "warmup%",
        "speedup-cold",
        "speedup-warm",
    ]);
    for name in ["perlbench", "milc", "mcf"] {
        let h = harness(name);
        let mut row = vec![name.to_owned()];
        let mut speedups = Vec::new();
        for level in [OptLevel::O2, OptLevel::O3] {
            let setup = base_setup(MachineConfig::core2(), level);
            let reps = h
                .measure_repeated(&setup, effort.input(), 3, CachePolicy::Warm)
                .expect("repetitions run");
            let cold = reps[0].counters.cycles;
            let warm = reps[2].counters.cycles;
            if level == OptLevel::O2 {
                row.push(format!("{cold}"));
                row.push(format!("{warm}"));
                row.push(format!("{:.3}", 100.0 * (cold as f64 / warm as f64 - 1.0)));
            }
            speedups.push((cold, warm));
        }
        let (o2c, o2w) = speedups[0];
        let (o3c, o3w) = speedups[1];
        row.push(format!("{:.4}", o2c as f64 / o3c as f64));
        row.push(format!("{:.4}", o2w as f64 / o3w as f64));
        table.row(row);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "
Reading: warm-up is a few percent here; cold/warm choice is one          more setup decision that belongs in the methodology section."
    );
    out
}

/// `abl-prefetch`: does a next-line L1D prefetcher (absent from the
/// recorded paper-machine presets) shrink the layout-conflict channel?
pub(crate) fn abl_prefetch(effort: Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "abl-prefetch: env-size bias with and without next-line prefetch (o3cpu)
"
    );
    let n = effort.points(16);
    let envs = env_points(n, 176);
    let mut table = Table::new(vec!["prefetch", "benchmark", "min", "max", "bias%"]);
    for prefetch in [false, true] {
        let mut machine = MachineConfig::o3cpu();
        machine.name = if prefetch {
            "o3cpu+pf".into()
        } else {
            "o3cpu".into()
        };
        machine.l1d_next_line_prefetch = prefetch;
        for name in ["perlbench", "mcf"] {
            let h = harness(name);
            let base = base_setup(machine.clone(), OptLevel::O2);
            let setups: Vec<_> = envs.iter().map(|e| base.with_env(e.clone())).collect();
            let report = sweep_factor(
                &h,
                "environment size",
                &setups,
                OptLevel::O2,
                OptLevel::O3,
                effort.input(),
            )
            .expect("sweep succeeds");
            table.row(vec![
                if prefetch { "on".into() } else { "off".into() },
                name.to_owned(),
                format!("{:.4}", report.violin.min()),
                format!("{:.4}", report.violin.max()),
                format!("{:.3}", 100.0 * report.bias_magnitude),
            ]);
        }
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "
Reading: the dominant env-bias channel here is bank conflicts, which next-line prefetching cannot absorb — the bias survives a better memory system. (Prefetching does shift absolute cycle counts, which is why it is held fixed across the recorded figures.)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abl_align_covers_all_levels() {
        let out = abl_align(Effort::Quick);
        for l in ["O0", "O1", "O2", "O3"] {
            assert!(out.contains(l));
        }
    }

    #[test]
    fn abl_warmup_reports_both_policies() {
        let out = abl_warmup(Effort::Quick);
        assert!(out.contains("warmup%"));
        assert!(out.contains("perlbench"));
    }

    #[test]
    fn abl_prefetch_compares_both_modes() {
        let out = abl_prefetch(Effort::Quick);
        assert!(out.contains("off"));
        assert!(out.contains("on"));
    }

    #[test]
    fn abl_machine_sweeps_associativity() {
        let out = abl_machine(Effort::Quick);
        assert!(out.contains("l1d-ways"));
        assert!(out.lines().count() > 5);
    }
}
