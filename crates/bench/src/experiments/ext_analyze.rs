//! `ext-analyze`: static-vs-dynamic validation of the bias analyzer.
//!
//! An extension, not a paper figure: the paper demonstrates bias by
//! sweeping real machines; `biaslab-analyze` claims the same sensitivity
//! is decidable from the linked image alone. This experiment runs the
//! static ranking (zero simulations, checked against the orchestrator's
//! instrumentation), then measures the O3/O2 speedup spread over a
//! setup grid for every benchmark and reports the Spearman rank
//! correlation per machine model.

use std::fmt::Write as _;

use biaslab_analyze::rank_suite;
use biaslab_core::report::Table;
use biaslab_core::setup::LinkOrder;
use biaslab_core::stats::spearman;
use biaslab_core::{ExperimentSetup, Orchestrator};
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;

use super::Effort;

/// The "careless experimenter" grid the measured side wanders over.
const ENV_SIZES: [u32; 4] = [0, 528, 1056, 1584];
const ORDERS: [LinkOrder; 2] = [LinkOrder::Default, LinkOrder::Reversed];

/// Measured sensitivity: the range of the O3/O2 cycle ratio over the
/// env-size × link-order grid.
fn measured_spread(bench: &str, machine: &MachineConfig, effort: Effort) -> f64 {
    let orch = Orchestrator::global();
    let harness = orch.harness(bench).expect("suite benchmark");
    let envs = &ENV_SIZES[..effort.points(ENV_SIZES.len()).min(ENV_SIZES.len())];
    let mut setups = Vec::new();
    for opt in [OptLevel::O2, OptLevel::O3] {
        for &env in envs {
            for order in ORDERS {
                let mut s = ExperimentSetup::default_on(machine.clone(), opt);
                s.link_order = order;
                if env > 0 {
                    s.env = Environment::of_total_size(env);
                }
                setups.push(s);
            }
        }
    }
    let results = orch.sweep(&harness, &setups, effort.input());
    let cycles: Vec<f64> = results
        .iter()
        .map(|r| r.as_ref().expect("measurable").counters.cycles as f64)
        .collect();
    let per_level = setups.len() / 2;
    let speedups: Vec<f64> = (0..per_level)
        .map(|i| cycles[i] / cycles[per_level + i])
        .collect();
    let lo = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// `ext-analyze`: predicted vs measured layout sensitivity per machine.
pub(crate) fn ext_analyze(effort: Effort) -> String {
    let machines = match effort {
        Effort::Quick => vec![MachineConfig::core2()],
        Effort::Full => MachineConfig::all(),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ext-analyze: static sensitivity ranking vs measured O3/O2 spread\n\
         (extension beyond the paper; the static side runs zero simulations)\n"
    );
    for machine in machines {
        // The static side's zero-simulation property is asserted by
        // `tests/static_vs_dynamic.rs` and the CLI `analyze` test, both on
        // serial orchestrators. It cannot be re-asserted here from global
        // orchestrator stats: under `repro all --jobs N` other experiments
        // simulate concurrently, so the counter moves for unrelated reasons.
        let ranking = rank_suite(&machine).expect("suite analyzes");

        let mut table = Table::new(vec!["rank", "benchmark", "predicted", "measured-spread"]);
        let (mut predicted, mut measured) = (Vec::new(), Vec::new());
        for (i, r) in ranking.iter().enumerate() {
            let m = measured_spread(&r.bench, &machine, effort);
            predicted.push(r.predicted_spread);
            measured.push(m);
            table.row(vec![
                format!("{}", i + 1),
                r.bench.clone(),
                format!("{:.4}", r.predicted_spread),
                format!("{m:.4}"),
            ]);
        }
        let rho = spearman(&predicted, &measured);
        let _ = writeln!(out, "machine {}:", machine.name);
        let _ = write!(out, "{table}");
        let _ = writeln!(out, "spearman(predicted, measured) = {rho:.3}\n");
    }
    let _ = writeln!(
        out,
        "Reading: a positive rho on every machine means the linked image \
         alone predicts which benchmarks the paper's setup factors can bias."
    );
    out
}
