//! Tables 1 and 2.

use std::fmt::Write as _;

use biaslab_core::report::Table;
use biaslab_survey::{corpus, tabulate};
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::{suite, InputSize};

use super::Effort;

/// Table 1 ®: the experimental setup — machines, optimization levels and
/// benchmarks — generated from the registries rather than hard-coded.
pub(crate) fn table1(_effort: Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "table1: experimental setup\n");

    let mut machines = Table::new(vec![
        "machine",
        "L1D",
        "ways",
        "L2",
        "DTLB",
        "BTB",
        "mispredict",
        "banks",
    ]);
    for m in MachineConfig::all() {
        machines.row(vec![
            m.name.clone(),
            format!("{}K", m.l1d.size >> 10),
            format!("{}", m.l1d.ways),
            format!("{}K", m.l2.size >> 10),
            format!("{}", m.dtlb.entries),
            format!("{}", m.branch.btb_entries),
            format!("{}", m.branch.mispredict_penalty),
            format!("{}", m.l1d_banks),
        ]);
    }
    let _ = writeln!(out, "{machines}");

    let _ = writeln!(
        out,
        "compiler: biaslab-toolchain at {}\n",
        OptLevel::ALL.map(|l| l.name()).join("/")
    );

    let mut benches = Table::new(vec!["benchmark", "behaviour", "functions", "ref-IR-ops"]);
    for b in suite() {
        let expected = b.expected(InputSize::Ref);
        benches.row(vec![
            b.name().to_owned(),
            b.description().to_owned(),
            format!("{}", b.module().functions.len()),
            format!("{}", expected.ir_ops),
        ]);
    }
    let _ = write!(out, "{benches}");
    out
}

/// Table 2 ®: the 133-paper literature survey, regenerated from the
/// record-level corpus (synthesized to the paper's aggregates — see
/// DESIGN.md).
pub(crate) fn table2(_effort: Effort) -> String {
    let records = corpus(2009);
    let table = tabulate(&records);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "table2: survey of {} papers (ASPLOS, PACT, PLDI, CGO)\n",
        records.len()
    );
    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "Headline rows: environment size and link order are reported by \
         ZERO of the surveyed papers, although either can bias a speedup \
         measurement by more than the effect under study."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_machines_and_benchmarks() {
        let out = table1(Effort::Quick);
        for s in [
            "pentium4",
            "core2",
            "o3cpu",
            "perlbench",
            "sphinx3",
            "O0/O1/O2/O3",
        ] {
            assert!(out.contains(s), "{s} missing");
        }
    }

    #[test]
    fn table2_has_zero_rows_for_the_headline_aspects() {
        let out = table2(Effort::Quick);
        assert!(out.contains("environment size"));
        assert!(out.contains("link order"));
        assert!(out.contains("133"));
    }
}
