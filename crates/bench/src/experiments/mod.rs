//! The experiment registry and shared sweep helpers.

mod ablations;
mod causal_figs;
mod env_figs;
mod ext_analyze;
mod ext_lint;
mod link_figs;
mod random_fig;
mod tables;

pub(crate) use link_figs::orders as link_figs_orders;

use biaslab_core::harness::Harness;
use biaslab_core::setup::ExperimentSetup;
use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::InputSize;

/// How much work to spend: `Full` regenerates the figure at measurement
/// size; `Quick` shrinks inputs and sweeps for CI and Criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced input size and sweep density.
    Quick,
    /// Paper-scale sweep.
    Full,
}

impl Effort {
    /// The benchmark input size for this effort.
    #[must_use]
    pub fn input(self) -> InputSize {
        match self {
            Effort::Quick => InputSize::Test,
            Effort::Full => InputSize::Ref,
        }
    }

    /// Scales a sweep-point count.
    #[must_use]
    pub fn points(self, full: usize) -> usize {
        match self {
            Effort::Quick => (full / 4).max(3),
            Effort::Full => full,
        }
    }
}

/// A registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentInfo {
    /// Experiment id, e.g. `"fig3"`.
    pub id: &'static str,
    /// One-line description (matches DESIGN.md's index).
    pub title: &'static str,
    /// The generator.
    pub run: fn(Effort) -> String,
}

/// Every reproducible table and figure, in the paper's order, followed by
/// the ablations this reproduction adds.
pub static EXPERIMENTS: &[ExperimentInfo] = &[
    ExperimentInfo {
        id: "table1",
        title: "experimental setup inventory",
        run: tables::table1,
    },
    ExperimentInfo {
        id: "fig1",
        title: "perlbench cycles (O2/O3) vs environment size, core2",
        run: env_figs::fig1,
    },
    ExperimentInfo {
        id: "fig2",
        title: "O3 speedup vs environment size on all three machines",
        run: env_figs::fig2,
    },
    ExperimentInfo {
        id: "fig3",
        title: "effect of UNIX environment size on the speedup of O3 on Core 2",
        run: env_figs::fig3,
    },
    ExperimentInfo {
        id: "fig4",
        title: "violin of O3 speedup across environment sizes, all benchmarks",
        run: env_figs::fig4,
    },
    ExperimentInfo {
        id: "fig5",
        title: "perlbench cycles across link orders (O2 and O3)",
        run: link_figs::fig5,
    },
    ExperimentInfo {
        id: "fig6",
        title: "violin of O3 speedup across link orders, all benchmarks",
        run: link_figs::fig6,
    },
    ExperimentInfo {
        id: "fig7",
        title: "cause of env-size bias: stack-shift dose response",
        run: causal_figs::fig7,
    },
    ExperimentInfo {
        id: "fig8",
        title: "cause of link-order bias: code-shift dose response",
        run: causal_figs::fig8,
    },
    ExperimentInfo {
        id: "table2",
        title: "literature survey of 133 papers",
        run: tables::table2,
    },
    ExperimentInfo {
        id: "fig9",
        title: "setup randomization: CI behaviour vs number of setups",
        run: random_fig::fig9,
    },
    ExperimentInfo {
        id: "fig10",
        title: "causal workflow: intervention vs placebo",
        run: causal_figs::fig10,
    },
    ExperimentInfo {
        id: "abl-align",
        title: "ablation: link-order bias vs optimization level (alignment)",
        run: ablations::abl_align,
    },
    ExperimentInfo {
        id: "abl-aslr",
        title: "ablation: ASLR-style text offset vs environment size",
        run: ablations::abl_aslr,
    },
    ExperimentInfo {
        id: "abl-machine",
        title: "ablation: bias magnitude vs L1D associativity",
        run: ablations::abl_machine,
    },
    ExperimentInfo {
        id: "abl-warmup",
        title: "ablation: cold-start vs steady-state measurement",
        run: ablations::abl_warmup,
    },
    ExperimentInfo {
        id: "abl-prefetch",
        title: "ablation: next-line prefetch vs the bias channels",
        run: ablations::abl_prefetch,
    },
    ExperimentInfo {
        id: "ext-analyze",
        title: "extension: static sensitivity ranking vs measured O3/O2 spread",
        run: ext_analyze::ext_analyze,
    },
    ExperimentInfo {
        id: "ext-lint",
        title: "extension: causal validation of biaslint findings (per-class precision)",
        run: ext_lint::ext_lint,
    },
];

/// Runs the experiment with the given id, if it exists.
#[must_use]
pub fn run_experiment(id: &str, effort: Effort) -> Option<String> {
    EXPERIMENTS
        .iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(effort))
}

// ---- shared helpers --------------------------------------------------------

/// The shared harness for a named suite benchmark: experiments draw from
/// the global orchestrator's registry, so compile/link caches and the
/// measurement cache carry across experiments in one `repro all` run.
///
/// # Panics
///
/// Panics on an unknown name (experiment code, not user input).
#[must_use]
pub(crate) fn harness(name: &str) -> std::sync::Arc<Harness> {
    biaslab_core::Orchestrator::global()
        .harness(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

/// Environment sizes `0, step, 2·step, …` with `n` points.
#[must_use]
pub(crate) fn env_points(n: usize, step: u32) -> Vec<Environment> {
    (0..n as u32)
        .map(|i| {
            let bytes = i * step;
            if bytes < 23 {
                Environment::new()
            } else {
                Environment::of_total_size(bytes)
            }
        })
        .collect()
}

/// The default base setup for a machine at an optimization level.
#[must_use]
pub(crate) fn base_setup(machine: MachineConfig, opt: OptLevel) -> ExperimentSetup {
    ExperimentSetup::default_on(machine, opt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        for required in ["table1", "table2"].iter().chain(
            [
                "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            ]
            .iter(),
        ) {
            assert!(ids.contains(required), "missing {required}");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig99", Effort::Quick).is_none());
    }

    #[test]
    fn effort_scaling() {
        assert_eq!(Effort::Full.points(64), 64);
        assert_eq!(Effort::Quick.points(64), 16);
        assert_eq!(Effort::Quick.points(8), 3);
        assert_eq!(Effort::Quick.input(), InputSize::Test);
    }

    #[test]
    fn env_points_start_empty_and_grow() {
        let envs = env_points(5, 100);
        assert_eq!(envs[0].stack_bytes(), Environment::new().stack_bytes());
        assert_eq!(envs[2].stack_bytes(), 200);
        assert!(envs[4].stack_bytes() > envs[2].stack_bytes());
    }
}
