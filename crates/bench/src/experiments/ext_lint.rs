//! `ext-lint`: causal validation of `biaslint` findings.
//!
//! An extension, not a paper figure. `biaslab-analyze`'s lint engine
//! emits findings that each name a layout mechanism and a remedy from
//! the paper's fig9/fig10 toolkit; this experiment closes the loop the
//! way Russo & Zou prescribe — every statically-flagged hazard gets the
//! targeted experiment it pre-registered. For each finding the remedy
//! is applied via toolchain layout ablations (`Linker::pad_symbol`,
//! `Linker::align_symbol`, a pinned link order, or compensating loader
//! stack shifts) and the predicted counter is measured in simulation.
//! The per-class *precision* — the fraction of findings whose remedy
//! moves the metric in the predicted direction — is the evidence that
//! lint output is diagnosis, not opinion.
//!
//! The lint pass itself runs zero simulations; that property is pinned
//! by `tests/lint_gate.rs` and the analyzer's unit suite (it cannot be
//! re-asserted from global orchestrator stats here, where other
//! experiments may simulate concurrently under `repro all --jobs N`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use biaslab_analyze::lint::order_token;
use biaslab_analyze::{lint_benchmark, Finding, FindingClass, Remedy};
use biaslab_core::report::Table;
use biaslab_core::setup::LinkOrder;
use biaslab_core::{ExperimentSetup, Harness, Orchestrator};
use biaslab_toolchain::link::Linker;
use biaslab_toolchain::load::{Environment, Loader};
use biaslab_toolchain::OptLevel;
use biaslab_uarch::{Counters, Machine, MachineConfig};
use biaslab_workloads::InputSize;

use super::Effort;

/// Environment sizes for the stack-residue validation: the analyzer's
/// 176-byte stride, clipped by effort.
fn env_points(effort: Effort) -> Vec<u32> {
    let n: u32 = match effort {
        Effort::Quick => 4,
        Effort::Full => 8,
    };
    (0..n).map(|i| i * 176).collect()
}

/// Runs one measurement with a layout ablation applied at link time —
/// the uncached path the orchestrator has no key for, mirroring the
/// CLI's `--profile` pipeline. Verifies the checksum so a remedy can
/// never silently change behavior.
fn run_ablated(
    harness: &Harness,
    level: OptLevel,
    machine: &MachineConfig,
    size: InputSize,
    ablate: impl FnOnce(Linker) -> Linker,
) -> Counters {
    let names = harness.object_names();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let order = LinkOrder::Default.resolve(&name_refs);
    let cm = harness.compiled(level);
    let exe = ablate(Linker::new().object_order(order))
        .link(&cm, harness.benchmark().entry())
        .expect("ablated link");
    let process = Loader::new()
        .load(&exe, &Environment::new(), harness.benchmark().args(size))
        .expect("load");
    let result = Machine::new(machine.clone())
        .run(&exe, process)
        .expect("run");
    let expected = harness.benchmark().expected(size);
    assert_eq!(
        result.checksum, expected.checksum,
        "a layout remedy must not change program behavior"
    );
    result.counters
}

/// Cycle range over the environment grid, optionally with the
/// compensating stack shifts that pin `sp` (the "setup randomization
/// nulls the channel" arm: if the residue classes are the mechanism,
/// pinning the residue must collapse the spread).
fn env_cycle_range(
    orch: &Orchestrator,
    harness: &Harness,
    machine: &MachineConfig,
    level: OptLevel,
    envs: &[u32],
    pin_sp: bool,
    size: InputSize,
) -> u64 {
    let stack_bytes: Vec<u32> = envs
        .iter()
        .map(|&e| Environment::of_total_size(e).stack_bytes())
        .collect();
    let b_max = stack_bytes.iter().copied().max().unwrap_or(0);
    let setups: Vec<ExperimentSetup> = envs
        .iter()
        .zip(&stack_bytes)
        .map(|(&e, &b)| {
            let mut s = ExperimentSetup::default_on(machine.clone(), level);
            s.env = Environment::of_total_size(e);
            if pin_sp {
                s.stack_shift = b_max - b;
            }
            s
        })
        .collect();
    let results = orch.sweep(harness, &setups, size);
    let cycles: Vec<u64> = results
        .iter()
        .map(|r| r.as_ref().expect("measurable").counters.cycles)
        .collect();
    let lo = cycles.iter().copied().min().unwrap_or(0);
    let hi = cycles.iter().copied().max().unwrap_or(0);
    hi - lo
}

/// Applies one finding's remedy and measures the predicted counter.
/// Returns `None` for findings with no layout remedy (`code-fix`),
/// `Some(confirmed)` otherwise.
fn validate(
    orch: &Orchestrator,
    harness: &Harness,
    machine: &MachineConfig,
    finding: &Finding,
    effort: Effort,
    base_cache: &mut BTreeMap<&'static str, Counters>,
) -> Option<bool> {
    let size = effort.input();
    let level = finding.level;
    match &finding.remedy {
        Remedy::Pad { symbol, bytes } => {
            let base = base_cache
                .entry(level.name())
                .or_insert_with(|| run_ablated(harness, level, machine, size, |l| l))
                .fetches;
            let remedied = run_ablated(harness, level, machine, size, |l| {
                l.pad_symbol(symbol, *bytes)
            });
            Some(remedied.fetches < base)
        }
        Remedy::Align { symbol, align } => {
            let base = base_cache
                .entry(level.name())
                .or_insert_with(|| run_ablated(harness, level, machine, size, |l| l))
                .fetches;
            let remedied = run_ablated(harness, level, machine, size, |l| {
                l.align_symbol(symbol, *align)
            });
            Some(remedied.fetches < base)
        }
        Remedy::LinkOrderPin { order } => {
            let base_setup = ExperimentSetup::default_on(machine.clone(), level);
            let mut pinned_setup = base_setup.clone();
            pinned_setup.link_order = *order;
            let base = orch
                .measure(harness, &base_setup, size)
                .expect("measurable")
                .counters
                .btb_misses;
            let pinned = orch
                .measure(harness, &pinned_setup, size)
                .expect("measurable")
                .counters
                .btb_misses;
            Some(pinned < base)
        }
        Remedy::SetupRandomization => {
            let envs = env_points(effort);
            let base = env_cycle_range(orch, harness, machine, level, &envs, false, size);
            let pinned = env_cycle_range(orch, harness, machine, level, &envs, true, size);
            // Predicted: the env-size channel is real (the grid moves
            // cycles) and acts through the stack residue (pinning sp
            // collapses the spread).
            Some(base > 0 && pinned < base)
        }
        Remedy::CodeFix => None,
    }
}

/// Per-class tallies: `(findings, validated, confirmed)`.
type Tally = BTreeMap<&'static str, (usize, usize, usize)>;

fn precision_cell(validated: usize, confirmed: usize) -> String {
    if validated == 0 {
        "n/a".to_owned()
    } else {
        format!("{:.2}", confirmed as f64 / validated as f64)
    }
}

/// `ext-lint`: per-class precision of biaslint's causal predictions.
pub(crate) fn ext_lint(effort: Effort) -> String {
    // All three machines in both efforts: the classes live on different
    // geometries (BTB collisions need pentium4's small BTB, entry
    // alignment needs o3cpu's 32-byte fetch), so one machine cannot
    // exercise the taxonomy. Effort scales input size and grid density.
    let machines = MachineConfig::all();
    let orch = Orchestrator::global();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "ext-lint: causal validation of biaslint findings\n\
         (each finding's remedy is applied as a layout ablation and the predicted\n\
         counter is measured; precision = confirmed / validated per class. The lint\n\
         pass itself is static — its zero-simulation property is pinned by\n\
         tests/lint_gate.rs and the analyzer unit suite.)\n"
    );

    let mut overall: Tally = BTreeMap::new();
    for machine in machines {
        let mut tally: Tally = BTreeMap::new();
        let mut examples: Vec<String> = Vec::new();
        for bench in biaslab_workloads::suite() {
            let report = lint_benchmark(bench.name(), &machine).expect("suite lints");
            let harness = orch.harness(bench.name()).expect("suite benchmark");
            let mut base_cache: BTreeMap<&'static str, Counters> = BTreeMap::new();
            for finding in &report.findings {
                let class = finding.class.name();
                let t = tally.entry(class).or_default();
                t.0 += 1;
                let Some(confirmed) =
                    validate(orch, &harness, &machine, finding, effort, &mut base_cache)
                else {
                    continue;
                };
                t.1 += 1;
                t.2 += usize::from(confirmed);
                if !confirmed && examples.len() < 3 {
                    examples.push(format!(
                        "  refuted: {}/{} {} — {} ({})",
                        bench.name(),
                        finding.level.name(),
                        class,
                        finding.function,
                        match &finding.remedy {
                            Remedy::LinkOrderPin { order } => order_token(*order),
                            r => r.arg(),
                        },
                    ));
                }
            }
        }

        let mut table = Table::new(vec![
            "class",
            "findings",
            "validated",
            "confirmed",
            "precision",
        ]);
        for (class, (n, v, c)) in &tally {
            table.row(vec![
                (*class).to_owned(),
                n.to_string(),
                v.to_string(),
                c.to_string(),
                precision_cell(*v, *c),
            ]);
            let o = overall.entry(class).or_default();
            o.0 += n;
            o.1 += v;
            o.2 += c;
        }
        let _ = writeln!(out, "machine {}:", machine.name);
        let _ = write!(out, "{table}");
        for e in examples {
            let _ = writeln!(out, "{e}");
        }
        let _ = writeln!(out);
    }

    let mut table = Table::new(vec![
        "class",
        "findings",
        "validated",
        "confirmed",
        "precision",
    ]);
    let mut passing = 0;
    let mut causal_classes = 0;
    for (class, (n, v, c)) in &overall {
        table.row(vec![
            (*class).to_owned(),
            n.to_string(),
            v.to_string(),
            c.to_string(),
            precision_cell(*v, *c),
        ]);
        if *v > 0 {
            causal_classes += 1;
            if *c as f64 / *v as f64 >= 0.7 {
                passing += 1;
            }
        }
    }
    let _ = writeln!(out, "all machines pooled:");
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "classes with precision >= 0.7: {passing} of {causal_classes} causally validated\n"
    );
    let _ = writeln!(
        out,
        "Reading: a high-precision class means its static detector identifies a real\n\
         mechanism — applying the suggested remedy moves the predicted counter the\n\
         predicted way. Lint findings are measurements waiting to happen, not style\n\
         opinions; classes validate or they are dropped."
    );
    let _ = writeln!(
        out,
        "(dead-store / uninit-read findings are pure dataflow defects with no layout\n\
         remedy; they are lint-only and excluded from causal validation. {} such\n\
         findings on this suite.)",
        overall
            .iter()
            .filter(|(k, _)| FindingClass::parse(k).is_some_and(|c| c.predicted_metric() == "none"))
            .map(|(_, (n, _, _))| n)
            .sum::<usize>()
    );
    out
}
