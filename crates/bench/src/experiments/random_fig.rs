//! Figure 9: experimental setup randomization.

use std::fmt::Write as _;

use biaslab_core::randomize::{randomized_eval, single_setup_disagreement_rate, RandomizedFactors};
use biaslab_core::report::Table;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;

use super::{harness, Effort};

/// Fig. 9 ®: as the number of randomized setups grows, the confidence
/// interval narrows around the setup-population mean while a single-setup
/// experiment keeps a fixed risk of reaching the opposite conclusion.
pub(crate) fn fig9(effort: Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fig9: randomized-setup evaluation of O3 vs O2 (o3cpu)\n"
    );
    let counts: &[usize] = match effort {
        Effort::Quick => &[2, 4, 8],
        Effort::Full => &[2, 4, 8, 16, 32, 64],
    };
    for bench in ["perlbench", "sjeng", "gcc"] {
        let h = harness(bench);
        let mut table = Table::new(vec![
            "setups",
            "mean-speedup",
            "ci-lo",
            "ci-hi",
            "ci-width",
            "verdict",
            "single-setup-disagree%",
        ]);
        let mut last_mean = 1.0;
        for &n in counts {
            let eval = randomized_eval(
                &h,
                &MachineConfig::o3cpu(),
                OptLevel::O2,
                OptLevel::O3,
                RandomizedFactors::default(),
                n,
                0xF19 + n as u64,
                effort.input(),
            )
            .expect("evaluation runs");
            let speedups: Vec<f64> = eval.observations.iter().map(|o| o.speedup).collect();
            let disagree = single_setup_disagreement_rate(&speedups, eval.mean_speedup);
            table.row(vec![
                format!("{n}"),
                format!("{:.4}", eval.mean_speedup),
                format!("{:.4}", eval.ci.lo),
                format!("{:.4}", eval.ci.hi),
                format!("{:.5}", eval.ci.width()),
                match eval.verdict() {
                    Some(true) => "O3 helps".to_owned(),
                    Some(false) => "O3 hurts".to_owned(),
                    None => "cannot tell".to_owned(),
                },
                format!("{:.1}", 100.0 * disagree),
            ]);
            last_mean = eval.mean_speedup;
        }
        let _ = writeln!(out, "{bench} (pooled mean at largest N: {last_mean:.4})");
        let _ = writeln!(out, "{table}");
    }
    let _ = writeln!(
        out,
        "Reading: a single setup lands anywhere in the bias range; sampling \
         setups gives an interval that honestly includes the remaining \
         uncertainty and narrows as setups are added."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_quick_renders_tables_per_benchmark() {
        let out = fig9(Effort::Quick);
        for b in ["perlbench", "sjeng", "gcc"] {
            assert!(out.contains(b), "{b} missing");
        }
        assert!(out.contains("ci-width"));
    }
}
