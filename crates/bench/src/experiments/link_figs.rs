//! Figures 5–6: the link-order studies.

use std::fmt::Write as _;

use biaslab_core::bias::sweep_factor;
use biaslab_core::report::{sparkline, Table};
use biaslab_core::setup::LinkOrder;
use biaslab_core::stats::Summary;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::suite;

use super::{base_setup, harness, Effort};

/// The link orders a sweep visits: the three "somebody's Makefile" orders
/// plus seeded random permutations.
pub(crate) fn orders(n_random: usize) -> Vec<LinkOrder> {
    let mut v = vec![
        LinkOrder::Default,
        LinkOrder::Reversed,
        LinkOrder::Alphabetical,
    ];
    v.extend((0..n_random as u64).map(LinkOrder::Random));
    v
}

/// Fig. 5 ®: perlbench cycle counts across link orders at O2 and O3 — the
/// spread within one level rivals the gap between levels.
pub(crate) fn fig5(effort: Effort) -> String {
    let h = harness("perlbench");
    let all_orders = orders(effort.points(29));
    let mut out = String::new();
    let _ = writeln!(out, "fig5: perlbench cycles across link orders (core2)\n");
    let mut per_level: Vec<(OptLevel, Summary)> = Vec::new();
    for opt in [OptLevel::O2, OptLevel::O3] {
        let base = base_setup(MachineConfig::core2(), opt);
        let setups: Vec<_> = all_orders
            .iter()
            .map(|&o| base.with_link_order(o))
            .collect();
        let results = biaslab_core::Orchestrator::global().sweep(&h, &setups, effort.input());
        let cycles: Vec<f64> = results
            .into_iter()
            .map(|r| r.expect("verified").cycles() as f64)
            .collect();
        let s = Summary::of(&cycles);
        let _ = writeln!(
            out,
            "{opt}: cycles [{:.0}, {:.0}]  spread {:.3}%  {}",
            s.min,
            s.max,
            100.0 * (s.max / s.min - 1.0),
            sparkline(&cycles)
        );
        per_level.push((opt, s));
    }
    let gap = (per_level[0].1.mean - per_level[1].1.mean).abs();
    let spread = per_level[0].1.max - per_level[0].1.min;
    let _ = writeln!(
        out,
        "\nO2→O3 mean gap: {gap:.0} cycles; O2 link-order spread: {spread:.0} cycles \
         (ratio {:.2})",
        spread / gap.max(1.0)
    );
    out
}

/// Fig. 6 ®: per-benchmark violins of the O3 speedup across link orders.
pub(crate) fn fig6(effort: Effort) -> String {
    let all_orders = orders(effort.points(29));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fig6: O3 speedup across link orders, all benchmarks (core2)\n"
    );
    let mut table = Table::new(vec![
        "benchmark",
        "min",
        "p25",
        "median",
        "p75",
        "max",
        "bias%",
        "flips",
    ]);
    for b in suite() {
        let name = b.name();
        let h = biaslab_core::harness::Harness::new(b);
        let base = base_setup(MachineConfig::core2(), OptLevel::O2);
        let setups: Vec<_> = all_orders
            .iter()
            .map(|&o| base.with_link_order(o))
            .collect();
        let report = sweep_factor(
            &h,
            "link order",
            &setups,
            OptLevel::O2,
            OptLevel::O3,
            effort.input(),
        )
        .expect("sweep succeeds");
        let v = &report.violin;
        table.row(vec![
            name.to_owned(),
            format!("{:.4}", v.min()),
            format!("{:.4}", v.values[2]),
            format!("{:.4}", v.median()),
            format!("{:.4}", v.values[4]),
            format!("{:.4}", v.max()),
            format!("{:.3}", 100.0 * report.bias_magnitude),
            format!("{}", report.conclusion_flips),
        ]);
    }
    let _ = write!(out, "{table}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_include_named_and_random() {
        let o = orders(4);
        assert_eq!(o.len(), 7);
        assert!(matches!(o[0], LinkOrder::Default));
        assert!(matches!(o[3], LinkOrder::Random(0)));
    }

    #[test]
    fn fig5_quick_reports_both_levels() {
        let out = fig5(Effort::Quick);
        assert!(out.contains("O2:"));
        assert!(out.contains("O3:"));
        assert!(out.contains("spread"));
    }
}
