//! Cross-experiment parallel driver for `repro all`.
//!
//! Experiments are independent generators over the process-global
//! [`biaslab_core::Orchestrator`] cache, so they can run concurrently; the
//! only observable ordering is stdout. The driver therefore buffers each
//! experiment's output block and flushes blocks strictly in registry
//! (paper) order as they complete, which keeps stdout byte-identical to
//! the serial path whatever the worker count or completion order.
//!
//! A panicking experiment is confined to its block: the worker catches the
//! unwind, the block reports the panic in place of the figure, and the
//! remaining experiments still run and flush. [`run_all`] returns how many
//! experiments panicked so the caller can exit nonzero.

use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use biaslab_core::{faults, telemetry};

use crate::experiments::{Effort, ExperimentInfo};

/// The outcome of one experiment under the driver.
#[derive(Debug)]
pub struct ExperimentRun {
    /// Experiment id, e.g. `"fig3"`.
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The experiment's output, or the panic message if it panicked.
    pub outcome: Result<String, String>,
    /// Wall time the experiment spent on its worker.
    pub seconds: f64,
}

/// Writes the banner that precedes each experiment in `repro all` output.
///
/// # Errors
///
/// Propagates write errors from `w`.
pub fn write_banner<W: Write>(w: &mut W, id: &str, title: &str) -> io::Result<()> {
    writeln!(w, "{}", "=".repeat(64))?;
    writeln!(w, "== {id} — {title}")?;
    writeln!(w, "{}", "=".repeat(64))
}

/// Writes one experiment's complete stdout block: banner, then the output
/// (or a one-line panic notice).
///
/// # Errors
///
/// Propagates write errors from `w`.
pub fn write_block<W: Write>(w: &mut W, run: &ExperimentRun) -> io::Result<()> {
    write_banner(w, run.id, run.title)?;
    match &run.outcome {
        Ok(output) => writeln!(w, "{output}"),
        Err(msg) => writeln!(w, "!! {} panicked: {msg}", run.id),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `experiments` on up to `jobs` worker threads, writing each block to
/// `out` in registry order as soon as it and all its predecessors are done.
/// `on_flush` fires after each block is written (in the same order) — the
/// `repro` binary uses it for stderr instrumentation and persistence.
///
/// Returns the number of experiments that panicked.
///
/// # Errors
///
/// Propagates write errors from `out`.
pub fn run_all<W, F>(
    experiments: &[ExperimentInfo],
    effort: Effort,
    jobs: usize,
    out: &mut W,
    mut on_flush: F,
) -> io::Result<usize>
where
    W: Write,
    F: FnMut(&ExperimentRun),
{
    let jobs = jobs.clamp(1, experiments.len().max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, ExperimentRun)>();
    let mut failures = 0;
    std::thread::scope(|s| -> io::Result<()> {
        for w in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let wid = w as u64 + 1;
            s.spawn(move || {
                if telemetry::enabled() {
                    telemetry::set_worker(wid);
                }
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(e) = experiments.get(i) else { break };
                    if faults::active() {
                        // Perturb worker scheduling so completion order varies
                        // under chaos runs; the in-order flush below must keep
                        // stdout byte-identical regardless.
                        faults::delay(faults::site::WORKER_DELAY);
                    }
                    let start = Instant::now();
                    // Scope every event this experiment generates to its id,
                    // and record the block itself as an "experiment" span.
                    let span = telemetry::enabled().then(|| {
                        telemetry::set_scope(e.id);
                        telemetry::Span::open("experiment", e.id)
                    });
                    let outcome = catch_unwind(AssertUnwindSafe(|| (e.run)(effort)))
                        .map_err(|p| panic_message(p.as_ref()));
                    if let Some(span) = span {
                        span.close();
                        telemetry::clear_scope();
                    }
                    let run = ExperimentRun {
                        id: e.id,
                        title: e.title,
                        outcome,
                        seconds: start.elapsed().as_secs_f64(),
                    };
                    if tx.send((i, run)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Flush completed blocks in order; hold out-of-order completions.
        let mut pending: Vec<Option<ExperimentRun>> =
            (0..experiments.len()).map(|_| None).collect();
        let mut cursor = 0;
        for (i, run) in rx {
            pending[i] = Some(run);
            while let Some(slot) = pending.get_mut(cursor) {
                let Some(run) = slot.take() else { break };
                if run.outcome.is_err() {
                    failures += 1;
                }
                write_block(out, &run)?;
                on_flush(&run);
                cursor += 1;
            }
        }
        Ok(())
    })?;
    Ok(failures)
}
