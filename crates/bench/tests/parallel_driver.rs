//! The cross-experiment parallel driver's two contracts: stdout is
//! byte-identical to the serial path at any worker count, and one
//! panicking experiment is confined to its own output block.

use std::time::Duration;

use biaslab_bench::experiments::{Effort, ExperimentInfo};
use biaslab_bench::parallel::{run_all, write_banner};
use biaslab_bench::EXPERIMENTS;

fn tortoise(_: Effort) -> String {
    // Finishes last when scheduled first, so in-order flushing is exercised.
    std::thread::sleep(Duration::from_millis(60));
    "tortoise: slow and steady\nsecond line".to_owned()
}

fn hare(_: Effort) -> String {
    "hare: done immediately".to_owned()
}

fn achilles(_: Effort) -> String {
    std::thread::sleep(Duration::from_millis(20));
    "achilles: finishes mid-pack".to_owned()
}

fn boom(_: Effort) -> String {
    panic!("injected failure")
}

type RunFn = fn(Effort) -> String;

fn registry(entries: &[(&'static str, RunFn)]) -> Vec<ExperimentInfo> {
    entries
        .iter()
        .map(|&(id, run)| ExperimentInfo {
            id,
            title: "driver test experiment",
            run,
        })
        .collect()
}

/// The serial reference: banner + output + newline per experiment, in
/// registry order — exactly what `repro all --serial` writes to stdout.
fn serial_reference(experiments: &[ExperimentInfo], effort: Effort) -> Vec<u8> {
    let mut out = Vec::new();
    for e in experiments {
        write_banner(&mut out, e.id, e.title).expect("write");
        let output = (e.run)(effort);
        out.extend_from_slice(output.as_bytes());
        out.push(b'\n');
    }
    out
}

#[test]
fn parallel_stdout_is_byte_identical_to_serial() {
    let exps = registry(&[
        ("tortoise", tortoise),
        ("hare", hare),
        ("achilles", achilles),
        ("hare2", hare),
    ]);
    let reference = serial_reference(&exps, Effort::Quick);
    for jobs in [1, 2, 8] {
        let mut out = Vec::new();
        let mut flushed: Vec<&str> = Vec::new();
        let failures = run_all(&exps, Effort::Quick, jobs, &mut out, |r| flushed.push(r.id))
            .expect("write to Vec");
        assert_eq!(failures, 0);
        assert_eq!(out, reference, "jobs={jobs}");
        assert_eq!(
            flushed,
            ["tortoise", "hare", "achilles", "hare2"],
            "flush order is registry order at jobs={jobs}"
        );
    }
}

#[test]
fn real_experiment_output_matches_serial_path() {
    // A cheap real experiment through the driver equals the serial path.
    let exps: Vec<ExperimentInfo> = EXPERIMENTS
        .iter()
        .filter(|e| e.id == "table1")
        .copied()
        .collect();
    assert_eq!(exps.len(), 1);
    let reference = serial_reference(&exps, Effort::Quick);
    let mut out = Vec::new();
    let failures = run_all(&exps, Effort::Quick, 4, &mut out, |_| {}).expect("write to Vec");
    assert_eq!(failures, 0);
    assert_eq!(out, reference);
}

#[test]
fn panicking_experiment_does_not_wedge_the_others() {
    let exps = registry(&[
        ("tortoise", tortoise),
        ("boom", boom),
        ("hare", hare),
        ("achilles", achilles),
    ]);
    let mut out = Vec::new();
    let mut flushed: Vec<&str> = Vec::new();
    let failures =
        run_all(&exps, Effort::Quick, 2, &mut out, |r| flushed.push(r.id)).expect("write to Vec");
    assert_eq!(failures, 1, "exactly the injected panic is reported");
    assert_eq!(
        flushed,
        ["tortoise", "boom", "hare", "achilles"],
        "every experiment still flushes, in order"
    );
    let text = String::from_utf8(out).expect("utf8");
    assert!(
        text.contains("!! boom panicked: injected failure"),
        "{text}"
    );
    assert!(text.contains("tortoise: slow and steady"), "{text}");
    assert!(
        text.contains("achilles: finishes mid-pack"),
        "experiments after the panic still run: {text}"
    );
}
