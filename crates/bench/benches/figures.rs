//! Criterion benches: one group per paper table/figure, running the
//! experiment generators at `Quick` effort. These track the wall-clock
//! cost of regenerating each artifact (the "how long does the repro take"
//! number), not the simulated cycle counts the artifacts themselves report.

use biaslab_bench::{run_experiment, Effort, EXPERIMENTS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for e in EXPERIMENTS {
        group.bench_function(e.id, |b| {
            b.iter(|| {
                let out = run_experiment(e.id, Effort::Quick).expect("registered");
                std::hint::black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
