//! Criterion micro-benchmarks of the substrates: compilation, linking,
//! loading and simulation throughput. These guard the harness's own
//! performance — a slow simulator makes setup sweeps impractical.

use biaslab_core::harness::Harness;
use biaslab_core::setup::ExperimentSetup;
use biaslab_toolchain::codegen::compile;
use biaslab_toolchain::link::Linker;
use biaslab_toolchain::load::{Environment, Loader};
use biaslab_toolchain::opt::{optimize, OptLevel};
use biaslab_uarch::{Machine, MachineConfig};
use biaslab_workloads::{benchmark_by_name, InputSize};
use criterion::{criterion_group, criterion_main, Criterion};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

fn bench_toolchain(c: &mut Criterion) {
    let bench = benchmark_by_name("hmmer").expect("known");
    let module = bench.module().clone();

    c.bench_function("optimize-O3", |b| {
        b.iter(|| std::hint::black_box(optimize(&module, OptLevel::O3)))
    });

    let optimized = optimize(&module, OptLevel::O3);
    c.bench_function("codegen-O3", |b| {
        b.iter(|| std::hint::black_box(compile(&optimized, OptLevel::O3)))
    });

    let cm = compile(&optimized, OptLevel::O3);
    c.bench_function("link", |b| {
        b.iter(|| std::hint::black_box(Linker::new().link(&cm, "main").expect("links")))
    });

    let exe = Linker::new().link(&cm, "main").expect("links");
    let env = Environment::of_total_size(512);
    c.bench_function("load", |b| {
        b.iter(|| std::hint::black_box(Loader::new().load(&exe, &env, &[1]).expect("loads")))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let bench = benchmark_by_name("hmmer").expect("known");
    let module = bench.module().clone();
    let cm = compile(&optimize(&module, OptLevel::O2), OptLevel::O2);
    let exe = Linker::new().link(&cm, "main").expect("links");
    let env = Environment::new();

    c.bench_function("simulate-hmmer-test", |b| {
        b.iter(|| {
            let process = Loader::new().load(&exe, &env, &[2]).expect("loads");
            let mut machine = Machine::new(MachineConfig::core2());
            std::hint::black_box(machine.run(&exe, process).expect("runs"))
        })
    });
}

fn bench_harness(c: &mut Criterion) {
    let harness = Harness::new(benchmark_by_name("milc").expect("known"));
    let setup = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
    // Warm caches so the bench isolates the per-measurement cost.
    harness.measure(&setup, InputSize::Test).expect("measures");
    c.bench_function("harness-measure-cached", |b| {
        b.iter(|| std::hint::black_box(harness.measure(&setup, InputSize::Test).expect("measures")))
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_toolchain, bench_simulator, bench_harness
}
criterion_main!(benches);
