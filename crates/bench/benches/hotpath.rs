//! Micro-benchmarks of the measure path's hot loops: paged-memory access,
//! cache/TLB way scans, the simulator with and without attribution, and a
//! cold orchestrator sweep. `scripts/bench.sh` records these per PR so the
//! perf trajectory is visible; `simulate` throughput is the number every
//! figure's wall time hangs on.

use biaslab_core::setup::ExperimentSetup;
use biaslab_core::telemetry;
use biaslab_core::Orchestrator;
use biaslab_toolchain::codegen::compile;
use biaslab_toolchain::link::Linker;
use biaslab_toolchain::load::{Environment, Loader};
use biaslab_toolchain::mem::PagedMem;
use biaslab_toolchain::opt::{optimize, OptLevel};
use biaslab_uarch::cache::{Cache, CacheConfig};
use biaslab_uarch::{Machine, MachineConfig};
use biaslab_workloads::{benchmark_by_name, InputSize};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn configured() -> Criterion {
    // The harness reports the fastest of `sample_size` iterations; 150
    // samples keep that minimum stable against interference bursts on a
    // shared host while the whole suite stays under a second.
    Criterion::default()
        .sample_size(150)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

fn bench_mem(c: &mut Criterion) {
    // Sequential word traffic on one page: the last-page cache's best case.
    c.bench_function("mem-seq-u32-rw", |b| {
        let mut mem = PagedMem::new();
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1024u32 {
                mem.write_u32(0x1000_0000 + i * 4, i);
                acc = acc.wrapping_add(mem.read_u32(0x1000_0000 + i * 4));
            }
            std::hint::black_box(acc)
        })
    });

    // Strided traffic across many pages, including stack-height addresses:
    // exercises the two-level table walk rather than the last-page cache.
    c.bench_function("mem-page-stride-rw", |b| {
        let mut mem = PagedMem::new();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..256u32 {
                let addr = 0x1000_0000 + i * 0x1_1000;
                mem.write_u64(addr, u64::from(i));
                acc = acc.wrapping_add(mem.read_u64(addr));
                acc = acc.wrapping_add(mem.read_u64(0x7FFE_0000 + i * 8));
            }
            std::hint::black_box(acc)
        })
    });

    // Fresh process image at stack height: page mapping must stay cheap.
    c.bench_function("mem-fresh-image", |b| {
        b.iter(|| {
            let mut mem = PagedMem::new();
            mem.write_u64(0x7FFE_FFF0, 1);
            mem.write_u64(0x0040_0000, 2);
            std::hint::black_box(mem.mapped_pages())
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    // A conflict-heavy scan: hits and LRU evictions in one loop.
    c.bench_function("cache-way-scan", |b| {
        let mut cache = Cache::new(CacheConfig {
            size: 32 * 1024,
            ways: 8,
            line: 64,
            hit_latency: 3,
        });
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..4096u32 {
                hits += u32::from(cache.access(i * 64 * 7));
            }
            std::hint::black_box(hits)
        })
    });
}

fn bench_machine(c: &mut Criterion) {
    let bench = benchmark_by_name("hmmer").expect("known");
    let module = bench.module().clone();
    let cm = compile(&optimize(&module, OptLevel::O2), OptLevel::O2);
    let exe = Linker::new().link(&cm, "main").expect("links");
    let env = Environment::new();

    // The unprofiled run: attribution bookkeeping compiled out.
    c.bench_function("simulate-unprofiled", |b| {
        b.iter(|| {
            let process = Loader::new().load(&exe, &env, &[2]).expect("loads");
            let mut machine = Machine::new(MachineConfig::core2());
            std::hint::black_box(machine.run(&exe, process).expect("runs"))
        })
    });

    // The profiled run pays for per-instruction attribution.
    c.bench_function("simulate-profiled", |b| {
        b.iter(|| {
            let process = Loader::new().load(&exe, &env, &[2]).expect("loads");
            let mut machine = Machine::new(MachineConfig::core2());
            std::hint::black_box(machine.run_profiled(&exe, process).expect("runs"))
        })
    });

    // Block-cache behaviour over one run, for `scripts/bench.sh` to record
    // beside the timings (`stat` lines are counts, not microseconds).
    let process = Loader::new().load(&exe, &env, &[2]).expect("loads");
    let mut machine = Machine::new(MachineConfig::core2());
    machine.run(&exe, process).expect("runs");
    let stats = machine.block_stats();
    let dispatches = stats.hits + stats.misses;
    println!("stat blockcache-hits {}", stats.hits);
    println!("stat blockcache-misses {}", stats.misses);
    println!("stat blockcache-blocks-live {}", machine.blocks_live());
    if dispatches > 0 {
        #[allow(clippy::cast_precision_loss)]
        let rate = stats.hits as f64 / dispatches as f64;
        println!("stat blockcache-hit-rate {rate:.4}");
    }
}

fn bench_sweep(c: &mut Criterion) {
    // A cold cross-setup sweep on a fresh orchestrator: the macro number
    // behind every figure (compile + link + load + simulate × setups).
    let mut group = c.benchmark_group("orchestrator");
    group.sample_size(5);
    group.bench_function("cold-sweep-8", |b| {
        b.iter(|| {
            let orch = Orchestrator::new();
            let h = orch.harness("hmmer").expect("known");
            let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
            let setups: Vec<ExperimentSetup> = (0..8)
                .map(|i| base.with_env(Environment::of_total_size(64 * i + 64)))
                .collect();
            std::hint::black_box(orch.sweep(&h, &setups, InputSize::Test))
        })
    });
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // The same cold measurement with tracing off and on: the gap between
    // the two numbers is the whole cost of `--trace`, which the design
    // promises stays in the noise (one relaxed flag load when off, a few
    // buffered events per measurement when on). Each iteration gets a
    // fresh orchestrator via `iter_batched` so every measure is a cold
    // miss rather than a cache hit.
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    let fresh = || {
        let orch = Orchestrator::new();
        let setup = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
        (orch, setup)
    };
    let measure = |(orch, setup): (Orchestrator, ExperimentSetup)| {
        let h = orch.harness("hmmer").expect("known");
        std::hint::black_box(orch.measure(&h, &setup, InputSize::Test).expect("measures"))
    };

    group.bench_function("measure-untraced", |b| {
        telemetry::disable();
        b.iter_batched(fresh, measure, BatchSize::SmallInput);
    });

    group.bench_function("measure-traced", |b| {
        telemetry::enable();
        b.iter_batched(
            || {
                let _ = telemetry::drain();
                fresh()
            },
            measure,
            BatchSize::SmallInput,
        );
        telemetry::disable();
        let _ = telemetry::drain();
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_mem, bench_cache, bench_machine, bench_sweep, bench_telemetry
}
criterion_main!(benches);
