//! Experimental setup randomization — the paper's first remedy.
//!
//! Instead of measuring in one (arbitrary, possibly lucky or unlucky)
//! setup, sample many randomized setups, measure the effect in each, and
//! report the distribution with a confidence interval. A single setup can
//! land anywhere in the bias range; the randomized estimate converges on
//! the setup-population mean and its interval communicates the remaining
//! uncertainty honestly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::InputSize;

use crate::bias::{speedup, SpeedupObservation};
use crate::harness::{Harness, MeasureError};
use crate::setup::{ExperimentSetup, LinkOrder};
use crate::stats::{bootstrap_ci_mean, Ci, Summary};

/// Which factors the sampler randomizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomizedFactors {
    /// Randomize environment size uniformly in `0..=max_env_bytes`.
    pub environment: bool,
    /// Randomize the link order.
    pub link_order: bool,
    /// Randomize the text-segment base offset (what address-space layout
    /// randomization does for code, and what Stabilizer does per run) in
    /// `0..4096`, instruction-aligned.
    pub code_offset: bool,
    /// Upper bound for random environment sizes (the paper sweeps ~4 KiB,
    /// one page of stack shift).
    pub max_env_bytes: u32,
}

impl Default for RandomizedFactors {
    fn default() -> Self {
        RandomizedFactors {
            environment: true,
            link_order: true,
            code_offset: false,
            max_env_bytes: 4096,
        }
    }
}

impl RandomizedFactors {
    /// Every supported factor at once — the Stabilizer-style full
    /// layout randomization.
    #[must_use]
    pub fn all() -> RandomizedFactors {
        RandomizedFactors {
            code_offset: true,
            ..RandomizedFactors::default()
        }
    }
}

/// Draws one random setup.
#[must_use]
pub fn random_setup(
    rng: &mut StdRng,
    machine: MachineConfig,
    opt: OptLevel,
    factors: RandomizedFactors,
) -> ExperimentSetup {
    let mut setup = ExperimentSetup::default_on(machine, opt);
    if factors.environment {
        let bytes = rng.gen_range(0..=factors.max_env_bytes);
        // Sizes below the minimum non-empty footprint collapse to empty.
        setup.env = if bytes < 23 {
            Environment::new()
        } else {
            Environment::of_total_size(bytes)
        };
    }
    if factors.link_order {
        setup.link_order = LinkOrder::Random(rng.gen());
    }
    if factors.code_offset {
        setup.text_offset = rng.gen_range(0..1024u32) * 4;
    }
    setup
}

/// The result of a randomized evaluation of `test_opt` against `base_opt`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomizedEval {
    /// Per-setup observations.
    pub observations: Vec<SpeedupObservation>,
    /// Mean speedup across setups.
    pub mean_speedup: f64,
    /// Bootstrap confidence interval for the mean speedup.
    pub ci: Ci,
}

impl RandomizedEval {
    /// The evaluation's conclusion: `Some(true)` if the optimization helps
    /// (the whole interval is above 1), `Some(false)` if it hurts, and
    /// `None` if the interval straddles 1 — the honest "cannot tell".
    #[must_use]
    pub fn verdict(&self) -> Option<bool> {
        if self.ci.lo > 1.0 {
            Some(true)
        } else if self.ci.hi < 1.0 {
            Some(false)
        } else {
            None
        }
    }

    /// Descriptive summary of the per-setup speedups.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::of(
            &self
                .observations
                .iter()
                .map(|o| o.speedup)
                .collect::<Vec<_>>(),
        )
    }
}

/// Runs a randomized evaluation: `n_setups` random setups, the effect
/// measured *within* each setup (both levels share the setup), then a
/// bootstrap CI over the per-setup speedups.
///
/// # Errors
///
/// Propagates the first [`MeasureError`].
///
/// # Panics
///
/// Panics if `n_setups == 0`.
#[allow(clippy::too_many_arguments)]
pub fn randomized_eval(
    harness: &Harness,
    machine: &MachineConfig,
    base_opt: OptLevel,
    test_opt: OptLevel,
    factors: RandomizedFactors,
    n_setups: usize,
    seed: u64,
    size: InputSize,
) -> Result<RandomizedEval, MeasureError> {
    assert!(n_setups > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let setups: Vec<ExperimentSetup> = (0..n_setups)
        .map(|_| random_setup(&mut rng, machine.clone(), base_opt, factors))
        .collect();

    let mut all = Vec::with_capacity(n_setups * 2);
    for s in &setups {
        all.push(s.clone());
        all.push(s.with_opt(test_opt));
    }
    let results = crate::orchestrator::Orchestrator::global().sweep(harness, &all, size);
    let mut observations = Vec::with_capacity(n_setups);
    let mut iter = results.into_iter();
    for s in &setups {
        let base = iter.next().expect("paired")?;
        let test = iter.next().expect("paired")?;
        observations.push(SpeedupObservation {
            setup: s.summary(),
            base_cycles: base.cycles(),
            test_cycles: test.cycles(),
            speedup: speedup(base.cycles(), test.cycles()),
        });
    }
    let speedups: Vec<f64> = observations.iter().map(|o| o.speedup).collect();
    let mean_speedup = Summary::of(&speedups).mean;
    let ci = bootstrap_ci_mean(&speedups, 0.95, 2000, seed ^ 0x5EED);
    Ok(RandomizedEval {
        observations,
        mean_speedup,
        ci,
    })
}

/// How often a single-setup experiment reaches a different conclusion than
/// the pooled mean: the paper's "you might conclude the opposite" risk.
///
/// # Panics
///
/// Panics if `speedups` is empty.
#[must_use]
pub fn single_setup_disagreement_rate(speedups: &[f64], pooled_mean: f64) -> f64 {
    assert!(!speedups.is_empty());
    let pooled_helps = pooled_mean > 1.0;
    let disagree = speedups
        .iter()
        .filter(|&&s| (s > 1.0) != pooled_helps)
        .count();
    disagree as f64 / speedups.len() as f64
}

#[cfg(test)]
mod tests {
    use biaslab_workloads::benchmark_by_name;

    use super::*;

    #[test]
    fn random_setups_are_seeded_and_varied() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let f = RandomizedFactors::default();
        let a = random_setup(&mut rng1, MachineConfig::core2(), OptLevel::O2, f);
        let b = random_setup(&mut rng2, MachineConfig::core2(), OptLevel::O2, f);
        assert_eq!(a.summary(), b.summary());
        let c = random_setup(&mut rng1, MachineConfig::core2(), OptLevel::O2, f);
        assert_ne!(a.summary(), c.summary(), "successive draws differ");
    }

    #[test]
    fn factors_can_be_disabled() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = RandomizedFactors {
            environment: false,
            link_order: false,
            code_offset: false,
            max_env_bytes: 4096,
        };
        let s = random_setup(&mut rng, MachineConfig::core2(), OptLevel::O2, f);
        assert_eq!(s.env.stack_bytes(), Environment::new().stack_bytes());
        assert_eq!(s.link_order, LinkOrder::Default);
        assert_eq!(s.text_offset, 0);
    }

    #[test]
    fn full_randomization_includes_code_offsets() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen_nonzero = false;
        for _ in 0..8 {
            let s = random_setup(
                &mut rng,
                MachineConfig::core2(),
                OptLevel::O2,
                RandomizedFactors::all(),
            );
            assert_eq!(s.text_offset % 4, 0);
            seen_nonzero |= s.text_offset != 0;
        }
        assert!(seen_nonzero);
    }

    #[test]
    fn randomized_eval_end_to_end() {
        let h = Harness::new(benchmark_by_name("hmmer").expect("known"));
        let eval = randomized_eval(
            &h,
            &MachineConfig::o3cpu(),
            OptLevel::O2,
            OptLevel::O3,
            RandomizedFactors::default(),
            6,
            11,
            InputSize::Test,
        )
        .unwrap();
        assert_eq!(eval.observations.len(), 6);
        assert!(eval.ci.contains(eval.mean_speedup));
        // Deterministic under the same seed.
        let eval2 = randomized_eval(
            &h,
            &MachineConfig::o3cpu(),
            OptLevel::O2,
            OptLevel::O3,
            RandomizedFactors::default(),
            6,
            11,
            InputSize::Test,
        )
        .unwrap();
        assert_eq!(eval.mean_speedup, eval2.mean_speedup);
    }

    #[test]
    fn disagreement_rate_counts_sign_mismatches() {
        let rate = single_setup_disagreement_rate(&[1.02, 1.01, 0.99, 1.03], 1.01);
        assert!((rate - 0.25).abs() < 1e-12);
        let rate = single_setup_disagreement_rate(&[1.02, 1.01], 1.015);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn verdicts_follow_the_interval() {
        let mk = |lo: f64, hi: f64| RandomizedEval {
            observations: vec![],
            mean_speedup: (lo + hi) / 2.0,
            ci: Ci {
                lo,
                hi,
                confidence: 0.95,
            },
        };
        assert_eq!(mk(1.01, 1.05).verdict(), Some(true));
        assert_eq!(mk(0.91, 0.95).verdict(), Some(false));
        assert_eq!(mk(0.99, 1.05).verdict(), None);
    }
}
