//! Hand-rolled JSON-lines primitives shared by the persistence
//! ([`crate::orchestrator`]) and telemetry ([`crate::telemetry`]) writers.
//!
//! The offline `serde` stand-in has no JSON backend, so both subsystems
//! write and read their line formats by hand. The helpers here are exact
//! for the lines *these writers* produce: string values never contain
//! `"`, `\`, `,` or brackets (benchmark ids, experiment ids, symbol
//! names and setup summaries are all bracket-free), so field extraction
//! can scan for delimiters instead of tokenizing. Foreign lines simply
//! fail to parse and are skipped by the callers.

/// FNV-1a over a string — the digest used to fold free-form values
/// (machine config, environment, measurement keys) into fixed-width ids.
pub(crate) fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extracts the raw text of `"key":<value>` from a record line. Scalar
/// values end at the next `,"` or the closing brace; array and object
/// values are matched bracket-depth-aware, so nested arrays (telemetry
/// profile entries) and nested objects (telemetry metrics) extract
/// whole.
pub(crate) fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let first = rest.as_bytes().first()?;
    let end = if *first == b'[' || *first == b'{' {
        let mut depth = 0usize;
        let mut end = None;
        for (i, b) in rest.bytes().enumerate() {
            match b {
                b'[' | b'{' => depth += 1,
                b']' | b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        end?
    } else {
        rest.find(",\"")
            .unwrap_or_else(|| rest.rfind('}').unwrap_or(rest.len()))
    };
    Some(&rest[..end])
}

/// A `"key":<u64>` field.
pub(crate) fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

/// A `"key":"<string>"` field, unquoted.
pub(crate) fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field(line, key)?.strip_prefix('"')?.strip_suffix('"')
}

/// Fsyncs `path`'s parent directory so a just-renamed file survives a
/// crash (the rename itself is atomic, but its durability needs the
/// directory entry flushed). Best-effort: directory handles cannot be
/// synced on every platform, and the rename has already succeeded, so
/// errors are swallowed.
pub(crate) fn sync_parent_dir(path: &std::path::Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_fields_extract() {
        let line = "{\"a\":1,\"b\":\"two\",\"c\":3}";
        assert_eq!(field_u64(line, "a"), Some(1));
        assert_eq!(field_str(line, "b"), Some("two"));
        assert_eq!(field_u64(line, "c"), Some(3));
        assert_eq!(field(line, "missing"), None);
    }

    #[test]
    fn nested_arrays_extract_whole() {
        let line = "{\"entries\":[[\"main\",10,2],[\"f\",3,1]],\"tail\":7}";
        assert_eq!(
            field(line, "entries"),
            Some("[[\"main\",10,2],[\"f\",3,1]]")
        );
        assert_eq!(field_u64(line, "tail"), Some(7));
    }

    #[test]
    fn nested_objects_extract_whole() {
        let line = "{\"counters\":{\"orch.hits\":4,\"x\":5},\"v\":1}";
        assert_eq!(field(line, "counters"), Some("{\"orch.hits\":4,\"x\":5}"));
        assert_eq!(field_u64(line, "v"), Some(1));
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64("a"), fnv64("b"));
    }
}
