//! Deterministic, seeded fault injection (failpoints) for the measure path.
//!
//! The paper's thesis is that unexamined properties of the experimental
//! setup corrupt conclusions; the same holds for the measurement
//! *infrastructure*. A torn results file, a dead single-flight leader or a
//! runaway simulation produces wrong figures without doing anything
//! obviously wrong. This module makes those failures **injectable on
//! demand and reproducible by seed**, so the recovery paths the
//! orchestrator and harness grew (leader takeover, torn-write quarantine,
//! persistence retry/degradation, the watchdog) are exercised by tests
//! and CI instead of waiting for production to exercise them.
//!
//! # Failpoint sites
//!
//! Each site is a named point in the measure path where a fault can fire
//! (see [`site`]). What firing *means* is fixed per site — an I/O error,
//! a short write, a panic, a delay — and every consumer recovers, so an
//! all-recoverable schedule leaves figures byte-identical to a fault-free
//! run (`tests/chaos.rs` pins exactly that).
//!
//! # Spec grammar
//!
//! Faults are enabled via `BIASLAB_FAULTS=<spec>` or programmatically
//! ([`install`], [`scoped`]):
//!
//! ```text
//! spec    := entry (',' entry)*
//! entry   := 'seed=' u64            -- schedule seed (default 0)
//!          | site '=' trigger
//! trigger := float                  -- fire with this probability per hit
//!          | '@' n                  -- fire exactly on the n-th hit (1-based)
//! ```
//!
//! Example: `seed=7,save.io=0.4,leader.panic=0.1,measure.delay=@3`.
//!
//! # Determinism
//!
//! Probabilistic triggers hash `(seed, site, hit-index)` — not a clock,
//! not a thread id — so one spec produces one fire-set per site: the same
//! hit indices fire on every run (`proptest` pins this). Under
//! parallelism the *assignment* of hit indices to threads can vary, but
//! every injected fault is recoverable, so results never depend on it.
//!
//! # Zero cost when off
//!
//! Like [`crate::telemetry`], the layer is off by default and gated on
//! one relaxed atomic load ([`active`]); instrumented call sites check it
//! before touching anything else.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::jsonl::fnv64;
use crate::sync::lock_unpoisoned;
use crate::telemetry::{self, FaultKind};

/// The failpoint sites threaded through the stack. Each constant names
/// one injection point; the action is fixed per site.
pub mod site {
    /// I/O error while writing the results file ([`crate::Orchestrator`]
    /// persistence). Recovered by bounded retry, then by degradation to
    /// in-memory-only operation.
    pub const SAVE_IO: &str = "save.io";
    /// Short write: a record line is cut mid-byte and the write fails,
    /// modelling a torn write. The temp-file discipline keeps the real
    /// results file intact; retry rewrites from scratch.
    pub const SAVE_SHORT: &str = "save.short";
    /// I/O error while reading the results file on resume. Recovered by
    /// retry, then by starting cold (re-simulation).
    pub const LOAD_IO: &str = "load.io";
    /// The single-flight leader panics before publishing its result. The
    /// leader recovers by retiring its in-flight cell and re-requesting;
    /// concurrent waiters elect a new leader either way.
    pub const LEADER_PANIC: &str = "leader.panic";
    /// Like [`LEADER_PANIC`], but the panic is rethrown after cleanup —
    /// the leader thread genuinely dies, as an arbitrary bug would make
    /// it. Waiters still recover by takeover. Not byte-identity-safe (the
    /// panicking caller observes the panic); tests use it to pin the
    /// takeover protocol under real leader death.
    pub const LEADER_PANIC_HARD: &str = "leader.panic.hard";
    /// A short scheduling delay at the head of [`crate::Harness::measure`].
    pub const MEASURE_DELAY: &str = "measure.delay";
    /// The simulation "runs away": the attempt reports watchdog budget
    /// exhaustion instead of running. Recovered by the orchestrator's
    /// retry-once; the retry attempt never re-injects, so an injected
    /// runaway is always recoverable (a *real* budget exhaustion is
    /// deterministic and quarantines the key instead).
    pub const MEASURE_RUNAWAY: &str = "measure.runaway";
    /// A short scheduling delay in sweep / `repro` driver workers.
    pub const WORKER_DELAY: &str = "worker.delay";
    /// The `biaslab serve` acceptor drops a just-accepted connection
    /// before handing it to a reader thread, as a transient accept
    /// failure would. The client recovers by reconnecting.
    pub const SERVE_ACCEPT: &str = "serve.accept";
    /// A short write on a serve connection: half of one response line
    /// reaches the socket, then the connection dies — the classic torn
    /// JSONL. The client detects the truncated line (no newline, or a
    /// `crc` that does not verify) and recovers by reconnect-and-retry.
    pub const SERVE_WRITE_SHORT: &str = "serve.write.short";
    /// The serve connection is dropped after a request is admitted but
    /// before its response is written (a mid-exchange disconnect). The
    /// client sees EOF instead of a response and retries.
    pub const SERVE_DROP: &str = "serve.drop";
    /// A slow client: the serve reader stalls briefly before handling a
    /// request line, modelling a peer that trickles its bytes. A
    /// scheduling perturbation only — responses never depend on it.
    pub const SERVE_SLOW: &str = "serve.slow";
    /// A serve pool worker dies mid-job, as an arbitrary bug in request
    /// handling would make it. The job's client still receives a typed
    /// `panic` error, and the supervisor respawns the worker under its
    /// restart budget — the pool shrinks, then recovers.
    pub const SERVE_WORKER_PANIC: &str = "serve.worker_panic";
    /// The daemon "crashes" (the worker dies unrecoverably) after writing
    /// half of a sweep-journal line and before the fsync, modelling a kill
    /// mid-append. The torn line fails its crc on reload and only that
    /// item is re-simulated; every fully journaled item is replayed.
    pub const SERVE_CRASH_JOURNAL: &str = "serve.crash_before_journal_fsync";

    /// Every known site, for spec validation and docs.
    pub const ALL: &[&str] = &[
        SAVE_IO,
        SAVE_SHORT,
        LOAD_IO,
        LEADER_PANIC,
        LEADER_PANIC_HARD,
        MEASURE_DELAY,
        MEASURE_RUNAWAY,
        WORKER_DELAY,
        SERVE_ACCEPT,
        SERVE_WRITE_SHORT,
        SERVE_DROP,
        SERVE_SLOW,
        SERVE_WORKER_PANIC,
        SERVE_CRASH_JOURNAL,
    ];
}

/// When a site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire with this probability on every hit (seeded, deterministic).
    Prob(f64),
    /// Fire exactly on the n-th hit of the site (1-based), never again.
    Nth(u64),
}

/// A parsed fault schedule: a seed plus per-site triggers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Seed for the probabilistic schedule.
    pub seed: u64,
    entries: Vec<(&'static str, Trigger)>,
}

impl FaultSpec {
    /// Parses the spec grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry or unknown
    /// site.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (name, value) = raw
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{raw}` is not `name=value`"))?;
            let (name, value) = (name.trim(), value.trim());
            if name == "seed" {
                out.seed = value
                    .parse()
                    .map_err(|_| format!("bad seed `{value}` (want a u64)"))?;
                continue;
            }
            let site = *site::ALL
                .iter()
                .find(|s| **s == name)
                .ok_or_else(|| format!("unknown fault site `{name}` (known: {:?})", site::ALL))?;
            let trigger = if let Some(n) = value.strip_prefix('@') {
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("bad hit index `{value}` for `{name}` (want @<n>)"))?;
                if n == 0 {
                    return Err(format!("hit index for `{name}` is 1-based, got @0"));
                }
                Trigger::Nth(n)
            } else {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("bad probability `{value}` for `{name}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!(
                        "probability for `{name}` must be in [0,1], got {p}"
                    ));
                }
                Trigger::Prob(p)
            };
            out.entries.retain(|(s, _)| *s != site); // last entry wins
            out.entries.push((site, trigger));
        }
        Ok(out)
    }

    /// The configured `(site, trigger)` entries, in spec order.
    #[must_use]
    pub fn entries(&self) -> &[(&'static str, Trigger)] {
        &self.entries
    }

    /// Adds (or replaces) one site's trigger — the programmatic spelling
    /// of a spec entry.
    #[must_use]
    pub fn with(mut self, site: &'static str, trigger: Trigger) -> FaultSpec {
        self.entries.retain(|(s, _)| *s != site);
        self.entries.push((site, trigger));
        self
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for (site, trigger) in &self.entries {
            match trigger {
                Trigger::Prob(p) => write!(f, ",{site}={p}")?,
                Trigger::Nth(n) => write!(f, ",{site}=@{n}")?,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Runtime state

/// One installed schedule: the spec plus a per-site hit counter.
#[derive(Debug)]
struct Installed {
    seed: u64,
    sites: HashMap<&'static str, (Trigger, AtomicU64)>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<Option<Arc<Installed>>> {
    static STATE: OnceLock<Mutex<Option<Arc<Installed>>>> = OnceLock::new();
    STATE.get_or_init(Mutex::default)
}

/// Whether any fault schedule is installed. One relaxed atomic load —
/// every injection point checks this before doing anything else, so with
/// faults off the measure path pays exactly this load.
#[inline]
#[must_use]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs a schedule process-wide (hit counters start at zero).
pub fn install(spec: &FaultSpec) {
    let installed = Installed {
        seed: spec.seed,
        sites: spec
            .entries
            .iter()
            .map(|&(site, trigger)| (site, (trigger, AtomicU64::new(0))))
            .collect(),
    };
    *lock_unpoisoned(state()) = Some(Arc::new(installed));
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Removes any installed schedule (the layer returns to zero-cost off).
pub fn clear() {
    ACTIVE.store(false, Ordering::Relaxed);
    *lock_unpoisoned(state()) = None;
}

/// Installs the schedule named by `BIASLAB_FAULTS`, if set. Returns
/// whether one was installed.
///
/// # Errors
///
/// Returns the parse error for a malformed spec (and installs nothing).
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("BIASLAB_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install(&FaultSpec::parse(&spec).map_err(|e| format!("BIASLAB_FAULTS: {e}"))?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// A scoped installation for tests: holds a process-wide lock (so
/// concurrent fault-injecting tests serialize), installs on entry, and
/// clears on drop whatever the test outcome.
#[derive(Debug)]
pub struct ScopedFaults(#[allow(dead_code)] MutexGuard<'static, ()>);

/// Installs `spec` for the lifetime of the returned guard (see
/// [`ScopedFaults`]).
#[must_use]
pub fn scoped(spec: &FaultSpec) -> ScopedFaults {
    static SCOPE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = lock_unpoisoned(SCOPE_LOCK.get_or_init(Mutex::default));
    install(spec);
    ScopedFaults(guard)
}

impl Drop for ScopedFaults {
    fn drop(&mut self) {
        clear();
    }
}

// ---------------------------------------------------------------------------
// Evaluation

/// Finalizes a hash with full avalanche (murmur3's 64-bit finalizer).
/// FNV-1a alone is not enough here: its final multiply spreads a change
/// in the last input byte (the hit index) only into the low ~40 bits, so
/// consecutive hit indices would map to nearly identical unit values and
/// a probability trigger would fire in long runs instead of
/// independently per hit.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Maps a hash to [0, 1).
fn unit(h: u64) -> f64 {
    (mix(h) >> 11) as f64 / (1u64 << 53) as f64
}

/// Evaluates one hit of `site` against the installed schedule: advances
/// the site's hit counter and decides, deterministically in
/// `(seed, site, hit index)`, whether the fault fires. Counts every fire
/// in `fault.injected.<site>` and emits a trace event when telemetry is
/// on. Always `false` when no schedule is installed or the site is not
/// scheduled.
#[must_use]
pub fn fire(site: &str) -> bool {
    if !active() {
        return false;
    }
    let Some(installed) = lock_unpoisoned(state()).clone() else {
        return false;
    };
    let Some((trigger, hits)) = installed.sites.get(site) else {
        return false;
    };
    let n = hits.fetch_add(1, Ordering::Relaxed);
    let fired = match *trigger {
        Trigger::Nth(k) => n + 1 == k,
        Trigger::Prob(p) => unit(fnv64(&format!("{}:{site}:{n}", installed.seed))) < p,
    };
    if fired {
        telemetry::metrics()
            .counter(&format!("fault.injected.{site}"))
            .add(1);
        if telemetry::enabled() {
            telemetry::emit_fault(FaultKind::Injected, site);
        }
    }
    fired
}

/// Counts one recovery from an injected or real fault: bumps
/// `fault.recovered.<kind>` and emits a trace event when telemetry is
/// on. `kind` names the recovery mechanism (`leader.takeover`,
/// `io.retry`, `watchdog.retry`, `persist.degraded`, …), not the fault.
pub fn recovered(kind: &str) {
    telemetry::metrics()
        .counter(&format!("fault.recovered.{kind}"))
        .add(1);
    if telemetry::enabled() {
        telemetry::emit_fault(FaultKind::Recovered, kind);
    }
}

/// An injected I/O error for `site`, if the site fires on this hit.
#[must_use]
pub fn io_error(site: &str) -> Option<std::io::Error> {
    fire(site).then(|| std::io::Error::other(format!("injected fault: {site}")))
}

/// Sleeps briefly if the delay site fires on this hit. The delay is a
/// scheduling perturbation only — results can never depend on it.
pub fn delay(site: &str) {
    if fire(site) {
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The payload of an injected panic. The single-flight leader
/// distinguishes it from a real panic: a recoverable injected panic is
/// swallowed (the leader retires its cell and re-requests); anything
/// else is rethrown after cleanup, and the waiters recover by takeover.
#[derive(Debug)]
pub struct InjectedPanic {
    /// Whether the panicking thread may recover by retrying (true for
    /// [`site::LEADER_PANIC`], false for [`site::LEADER_PANIC_HARD`]).
    pub recoverable: bool,
}

/// Panics with an [`InjectedPanic`] payload if either leader-panic site
/// fires on this hit.
pub fn maybe_panic_leader() {
    if fire(site::LEADER_PANIC) {
        std::panic::panic_any(InjectedPanic { recoverable: true });
    }
    if fire(site::LEADER_PANIC_HARD) {
        std::panic::panic_any(InjectedPanic { recoverable: false });
    }
}

/// Downcasts a panic payload to its injected marker, if it is one.
#[must_use]
pub fn injected_panic(payload: &(dyn std::any::Any + Send)) -> Option<&InjectedPanic> {
    payload.downcast_ref::<InjectedPanic>()
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use proptest::sample::select;

    use super::*;

    #[test]
    fn specs_parse_and_roundtrip() {
        let spec = FaultSpec::parse("seed=7, save.io=0.25,leader.panic=@3").expect("parses");
        assert_eq!(spec.seed, 7);
        assert_eq!(
            spec.entries(),
            &[
                (site::SAVE_IO, Trigger::Prob(0.25)),
                (site::LEADER_PANIC, Trigger::Nth(3)),
            ]
        );
        let again = FaultSpec::parse(&spec.to_string()).expect("canonical form parses");
        assert_eq!(spec, again);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "save.io",           // no value
            "seed=x",            // bad seed
            "nonesuch=0.5",      // unknown site
            "save.io=1.5",       // probability out of range
            "save.io=@0",        // 0 is not a 1-based index
            "save.io=@x",        // bad index
            "leader.panic=high", // bad probability
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
        // Empty specs install nothing but are not errors.
        assert_eq!(FaultSpec::parse("").expect("ok").entries().len(), 0);
    }

    #[test]
    fn last_entry_per_site_wins() {
        let spec = FaultSpec::parse("save.io=0.1,save.io=@2").expect("parses");
        assert_eq!(spec.entries(), &[(site::SAVE_IO, Trigger::Nth(2))]);
    }

    #[test]
    fn inactive_layer_never_fires() {
        let _guard = scoped(&FaultSpec::default());
        clear();
        assert!(!active());
        assert!(!fire(site::SAVE_IO));
        assert!(io_error(site::SAVE_IO).is_none());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let spec = FaultSpec::default().with(site::SAVE_IO, Trigger::Nth(3));
        let _guard = scoped(&spec);
        let fires: Vec<bool> = (0..6).map(|_| fire(site::SAVE_IO)).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        // Unscheduled sites never fire even while a schedule is active.
        assert!(!fire(site::LOAD_IO));
    }

    #[test]
    fn probability_bounds_are_exact() {
        let _guard = scoped(&FaultSpec::default().with(site::SAVE_IO, Trigger::Prob(1.0)));
        assert!((0..32).all(|_| fire(site::SAVE_IO)), "p=1 always fires");
        drop(_guard);
        let _guard = scoped(&FaultSpec::default().with(site::SAVE_IO, Trigger::Prob(0.0)));
        assert!((0..32).all(|_| !fire(site::SAVE_IO)), "p=0 never fires");
    }

    #[test]
    fn injected_panics_carry_their_marker() {
        let _guard = scoped(&FaultSpec::default().with(site::LEADER_PANIC, Trigger::Nth(1)));
        let payload = std::panic::catch_unwind(maybe_panic_leader).expect_err("panics");
        let marker = injected_panic(payload.as_ref()).expect("injected marker");
        assert!(marker.recoverable);
        drop(_guard);
        let _guard = scoped(&FaultSpec::default().with(site::LEADER_PANIC_HARD, Trigger::Nth(1)));
        let payload = std::panic::catch_unwind(maybe_panic_leader).expect_err("panics");
        assert!(
            !injected_panic(payload.as_ref())
                .expect("marker")
                .recoverable
        );
    }

    /// The determinism contract: one spec produces one fire-set, so a
    /// failure under `BIASLAB_FAULTS=<spec>` replays exactly.
    fn fire_set(spec: &FaultSpec, site: &str, hits: usize) -> Vec<bool> {
        let _guard = scoped(spec);
        (0..hits).map(|_| fire(site)).collect()
    }

    proptest! {
        #[test]
        fn seeded_schedules_replay_exactly(
            seed in 0u64..1_000_000,
            p_mille in 0u64..=1000,
            s in select(site::ALL.to_vec()),
        ) {
            let p = p_mille as f64 / 1000.0;
            let spec = FaultSpec { seed, ..FaultSpec::default() }.with(s, Trigger::Prob(p));
            let first = fire_set(&spec, s, 64);
            let second = fire_set(&spec, s, 64);
            prop_assert_eq!(first, second, "same spec, same schedule");
        }

        #[test]
        fn seeds_change_probabilistic_schedules(
            seed in 0u64..1_000_000,
            s in select(site::ALL.to_vec()),
        ) {
            // With p=0.5 over 64 hits, two different seeds agreeing on
            // every decision is a 2^-64 event — treat it as failure.
            let a = FaultSpec { seed, ..FaultSpec::default() }.with(s, Trigger::Prob(0.5));
            let b = FaultSpec { seed: seed.wrapping_add(1), ..FaultSpec::default() }
                .with(s, Trigger::Prob(0.5));
            prop_assert_ne!(fire_set(&a, s, 64), fire_set(&b, s, 64));
        }

        #[test]
        fn specs_roundtrip_through_display(
            seed in 0u64..=u64::MAX,
            s in select(site::ALL.to_vec()),
            n in 1u64..1000,
        ) {
            let spec = FaultSpec { seed, ..FaultSpec::default() }.with(s, Trigger::Nth(n));
            prop_assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }
}
