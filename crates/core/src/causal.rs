//! Causal analysis — the paper's second remedy.
//!
//! Correlation ("performance varies with environment size") is not an
//! explanation. The paper recommends *intervening* on the suspected
//! mechanism directly and checking three things:
//!
//! 1. **Dose response** — manipulating the mechanism (e.g. shifting the
//!    stack directly in the loader, bypassing the environment entirely)
//!    reproduces the effect;
//! 2. **Placebo control** — manipulating everything *except* the mechanism
//!    (e.g. changing the environment's contents but not its size) produces
//!    no effect;
//! 3. **Mediator movement** — a hardware counter implementing the proposed
//!    mechanism (here, L1D bank conflicts or cache misses) moves with the
//!    effect.
//!
//! [`CausalExperiment::run`] packages all three.

use serde::{Deserialize, Serialize};

use biaslab_toolchain::load::Environment;
use biaslab_uarch::Counters;
use biaslab_workloads::InputSize;

use crate::harness::{Harness, MeasureError};
use crate::setup::ExperimentSetup;

/// An intervention: a family of setups indexed by a dose in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Intervention {
    /// Shift the initial stack pointer down by the dose, directly in the
    /// loader (no environment involved): the suspected *mechanism* of the
    /// environment-size bias.
    StackShift,
    /// Grow the environment to the dose (the observable the experimenter
    /// originally varied).
    EnvironmentSize,
    /// Shift the text segment base by the dose: the suspected mechanism
    /// of the link-order bias (moving code addresses).
    CodeShift,
    /// Placebo: keep a fixed-size environment and vary only its *content*
    /// with the dose. Stack placement is unchanged, so a mechanism based
    /// on stack placement predicts **no** effect.
    EnvironmentContent,
}

impl Intervention {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Intervention::StackShift => "stack shift",
            Intervention::EnvironmentSize => "environment size",
            Intervention::CodeShift => "code shift",
            Intervention::EnvironmentContent => "environment content (placebo)",
        }
    }

    /// Applies a dose to a base setup.
    #[must_use]
    pub fn apply(self, base: &ExperimentSetup, dose: u32) -> ExperimentSetup {
        let mut s = base.clone();
        match self {
            Intervention::StackShift => s.stack_shift = dose,
            Intervention::EnvironmentSize => {
                s.env = if dose < 23 {
                    Environment::new()
                } else {
                    Environment::of_total_size(dose)
                };
            }
            Intervention::CodeShift => s.text_offset = dose & !3,
            Intervention::EnvironmentContent => {
                let fill = char::from(b'a' + (dose % 26) as u8);
                s.env = Environment::of_total_size_with_fill(512, fill);
            }
        }
        s
    }
}

/// One point of a dose-response curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DosePoint {
    /// The dose in bytes.
    pub dose: u32,
    /// Cycles measured at this dose.
    pub cycles: u64,
    /// Full counters at this dose (for mediator analysis).
    pub counters: Counters,
}

/// The outcome of a causal experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalReport {
    /// The intervention tested.
    pub intervention_name: String,
    /// The dose-response curve.
    pub curve: Vec<DosePoint>,
    /// Relative cycle spread across doses: `max/min − 1`.
    pub effect: f64,
    /// Same spread under the placebo intervention.
    pub placebo_effect: f64,
    /// Pearson correlation between the chosen mediator counter and cycles
    /// across doses (`None` when either series is constant).
    pub mediator_correlation: Option<f64>,
    /// The verdict: the intervention's effect exceeds the placebo's by at
    /// least the required ratio.
    pub confirmed: bool,
}

/// A hardware counter proposed as the mechanism's mediator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mediator {
    /// L1D bank conflicts.
    BankConflicts,
    /// L1D misses.
    L1dMisses,
    /// Branch mispredictions.
    Mispredicts,
    /// BTB misses.
    BtbMisses,
    /// Instruction-fetch window count.
    Fetches,
}

impl Mediator {
    /// Reads the mediator from a counter set.
    #[must_use]
    pub fn read(self, c: &Counters) -> u64 {
        match self {
            Mediator::BankConflicts => c.bank_conflicts,
            Mediator::L1dMisses => c.l1d_misses,
            Mediator::Mispredicts => c.mispredicts,
            Mediator::BtbMisses => c.btb_misses,
            Mediator::Fetches => c.fetches,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mediator::BankConflicts => "L1D bank conflicts",
            Mediator::L1dMisses => "L1D misses",
            Mediator::Mispredicts => "branch mispredicts",
            Mediator::BtbMisses => "BTB misses",
            Mediator::Fetches => "fetch windows",
        }
    }
}

/// A causal experiment: an intervention, its doses, and a mediator.
#[derive(Debug, Clone)]
pub struct CausalExperiment {
    /// The setup everything else is held fixed at.
    pub base: ExperimentSetup,
    /// The intervention under test.
    pub intervention: Intervention,
    /// Doses to apply.
    pub doses: Vec<u32>,
    /// The counter proposed as the mechanism.
    pub mediator: Mediator,
    /// How many times larger than the placebo the effect must be.
    pub required_ratio: f64,
}

impl CausalExperiment {
    /// A conventional experiment: doses `0..max` in `steps` steps,
    /// mediator and ratio defaulted.
    #[must_use]
    pub fn new(
        base: ExperimentSetup,
        intervention: Intervention,
        max_dose: u32,
        steps: u32,
    ) -> Self {
        let doses = (0..=steps).map(|i| i * max_dose / steps.max(1)).collect();
        CausalExperiment {
            base,
            intervention,
            doses,
            mediator: Mediator::BankConflicts,
            required_ratio: 3.0,
        }
    }

    /// Runs the experiment (and the placebo alongside).
    ///
    /// # Errors
    ///
    /// Propagates the first [`MeasureError`].
    pub fn run(&self, harness: &Harness, size: InputSize) -> Result<CausalReport, MeasureError> {
        let curve = self.dose_response(harness, self.intervention, size)?;
        let placebo = self.dose_response(harness, Intervention::EnvironmentContent, size)?;

        let effect = relative_spread(&curve);
        let placebo_effect = relative_spread(&placebo);

        let med: Vec<f64> = curve
            .iter()
            .map(|p| self.mediator.read(&p.counters) as f64)
            .collect();
        let cyc: Vec<f64> = curve.iter().map(|p| p.cycles as f64).collect();
        let mediator_correlation = pearson(&med, &cyc);

        let confirmed = effect > self.required_ratio * placebo_effect.max(1e-9) && effect > 1e-4;
        Ok(CausalReport {
            intervention_name: self.intervention.name().to_owned(),
            curve,
            effect,
            placebo_effect,
            mediator_correlation,
            confirmed,
        })
    }

    fn dose_response(
        &self,
        harness: &Harness,
        intervention: Intervention,
        size: InputSize,
    ) -> Result<Vec<DosePoint>, MeasureError> {
        let setups: Vec<ExperimentSetup> = self
            .doses
            .iter()
            .map(|&d| intervention.apply(&self.base, d))
            .collect();
        let results = crate::orchestrator::Orchestrator::global().sweep(harness, &setups, size);
        let mut curve = Vec::with_capacity(self.doses.len());
        for (dose, result) in self.doses.iter().zip(results) {
            let m = result?;
            curve.push(DosePoint {
                dose: *dose,
                cycles: m.counters.cycles,
                counters: m.counters,
            });
        }
        Ok(curve)
    }
}

fn relative_spread(curve: &[DosePoint]) -> f64 {
    let min = curve.iter().map(|p| p.cycles).min().unwrap_or(1);
    let max = curve.iter().map(|p| p.cycles).max().unwrap_or(1);
    max as f64 / min as f64 - 1.0
}

/// Pearson correlation; `None` when a series is (numerically) constant.
///
/// # Examples
///
/// ```
/// use biaslab_core::causal::pearson;
///
/// let r = pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).expect("varies");
/// assert!((r - 1.0).abs() < 1e-9);
/// assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
/// ```
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if x.is_empty() {
        return None;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
    if vx < 1e-12 || vy < 1e-12 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

#[cfg(test)]
mod tests {
    use biaslab_toolchain::OptLevel;
    use biaslab_uarch::MachineConfig;
    use biaslab_workloads::benchmark_by_name;

    use super::*;

    #[test]
    fn interventions_modify_the_right_knob() {
        let base = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O2);
        let s = Intervention::StackShift.apply(&base, 64);
        assert_eq!(s.stack_shift, 64);
        let s = Intervention::EnvironmentSize.apply(&base, 512);
        assert_eq!(s.env.stack_bytes(), 512);
        let s = Intervention::CodeShift.apply(&base, 66);
        assert_eq!(s.text_offset, 64, "code shifts are instruction-aligned");
        let a = Intervention::EnvironmentContent.apply(&base, 0);
        let b = Intervention::EnvironmentContent.apply(&base, 1);
        assert_eq!(a.env.stack_bytes(), b.env.stack_bytes());
        assert_ne!(a.env.vars()[0].value, b.env.vars()[0].value);
    }

    #[test]
    fn pearson_limits() {
        assert!(pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap() > 0.999);
        assert!(pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]).unwrap() < -0.999);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn placebo_has_no_effect_on_cycles() {
        // The placebo intervention changes only environment bytes' values;
        // the loader writes them to the same addresses, so the simulated
        // machine must produce identical timing.
        let h = Harness::new(benchmark_by_name("hmmer").expect("known"));
        let base = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
        let exp = CausalExperiment {
            base,
            intervention: Intervention::EnvironmentContent,
            doses: vec![0, 1, 2, 3],
            mediator: Mediator::BankConflicts,
            required_ratio: 3.0,
        };
        let curve = exp
            .dose_response(&h, Intervention::EnvironmentContent, InputSize::Test)
            .unwrap();
        let cycles: Vec<u64> = curve.iter().map(|p| p.cycles).collect();
        assert!(cycles.windows(2).all(|w| w[0] == w[1]), "{cycles:?}");
    }

    #[test]
    fn stack_shift_experiment_runs_and_reports() {
        let h = Harness::new(benchmark_by_name("sphinx3").expect("known"));
        let base = ExperimentSetup::default_on(MachineConfig::pentium4(), OptLevel::O2);
        let exp = CausalExperiment::new(base, Intervention::StackShift, 128, 8);
        let report = exp.run(&h, InputSize::Test).unwrap();
        assert_eq!(report.curve.len(), 9);
        assert!(report.placebo_effect < 1e-9, "placebo must be silent");
    }
}
