//! Plain-text rendering of experiment results: aligned tables, series
//! dumps (CSV-ish, for replotting) and unicode sparklines for a quick look
//! at a figure's shape in the terminal.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use biaslab_core::report::Table;
///
/// let mut t = Table::new(vec!["benchmark", "speedup"]);
/// t.row(vec!["perlbench".into(), "1.013".into()]);
/// let text = t.to_string();
/// assert!(text.contains("perlbench"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                // Right-align numeric-looking cells, left-align the rest.
                if cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+')
                {
                    write!(f, "{cell:>w$}")?;
                } else {
                    write!(f, "{cell:<w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders an `(x, y)` series as `name: x,y` lines — trivially replottable.
#[must_use]
pub fn render_series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# series: {name}");
    for (x, y) in points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// A unicode sparkline of a series' shape (eight levels).
///
/// # Examples
///
/// ```
/// use biaslab_core::report::sparkline;
///
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Formats a speedup with its sign-of-conclusion marker, e.g. `1.023 (+)`.
#[must_use]
pub fn fmt_speedup(s: f64) -> String {
    let marker = if s > 1.0 {
        "+"
    } else if s < 1.0 {
        "-"
    } else {
        "="
    };
    format!("{s:.4} ({marker})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a-long-name".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn series_roundtrips_points() {
        let s = render_series("fig3", &[(0.0, 1.01), (16.0, 0.99)]);
        assert!(s.contains("# series: fig3"));
        assert!(s.contains("16,0.99"));
    }

    #[test]
    fn sparkline_shape() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[1.0, 1.0, 1.0]);
        assert_eq!(s.chars().count(), 3);
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
    }

    #[test]
    fn speedup_markers() {
        assert!(fmt_speedup(1.05).ends_with("(+)"));
        assert!(fmt_speedup(0.95).ends_with("(-)"));
        assert!(fmt_speedup(1.0).ends_with("(=)"));
    }
}
