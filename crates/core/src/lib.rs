//! # biaslab-core — the measurement-bias laboratory
//!
//! The primary contribution of the `biaslab` reproduction of *Producing
//! Wrong Data Without Doing Anything Obviously Wrong!* (Mytkowicz, Diwan,
//! Hauswirth, Sweeney; ASPLOS 2009), as a reusable library:
//!
//! * [`setup`] — experimental setups and the two "innocuous" factors the
//!   paper shows to matter: **UNIX environment size** and **link order**
//!   (plus the loader/linker interventions used for causal analysis);
//! * [`harness`] — verified measurement: compile → link → load → simulate,
//!   with every run checked against the IR interpreter's reference
//!   outcome, plus caching and parallel sweeps;
//! * [`orchestrator`] — cross-experiment sweep orchestration: a
//!   process-wide measurement cache, work-stealing execution, persistence
//!   under `results/` and per-experiment instrumentation;
//! * [`stats`] — bootstrap confidence intervals, permutation tests,
//!   quantiles and violin summaries;
//! * [`bias`] — factor sweeps, bias magnitude, and conclusion-flip
//!   detection; [`audit`] packages the whole check as one call;
//! * [`randomize`] — the paper's first remedy: evaluate over many
//!   randomized setups and report a confidence interval;
//! * [`causal`] — the paper's second remedy: intervene on the suspected
//!   mechanism (dose response + placebo control + counter mediation);
//! * [`report`] — plain-text tables, series and sparklines used by the
//!   `repro` binary to regenerate every figure and table.
//!
//! # Examples
//!
//! Measure the O2→O3 speedup of one benchmark under two environment sizes
//! and see the bias:
//!
//! ```
//! use biaslab_core::bias::sweep_factor;
//! use biaslab_core::harness::Harness;
//! use biaslab_core::setup::ExperimentSetup;
//! use biaslab_toolchain::load::Environment;
//! use biaslab_toolchain::OptLevel;
//! use biaslab_uarch::MachineConfig;
//! use biaslab_workloads::{benchmark_by_name, InputSize};
//!
//! let harness = Harness::new(benchmark_by_name("hmmer").expect("known benchmark"));
//! let base = ExperimentSetup::default_on(MachineConfig::o3cpu(), OptLevel::O2);
//! let setups = vec![
//!     base.with_env(Environment::new()),
//!     base.with_env(Environment::of_total_size(1000)),
//! ];
//! let report = sweep_factor(&harness, "environment size", &setups,
//!                           OptLevel::O2, OptLevel::O3, InputSize::Test)?;
//! println!("speedups: {:?} (bias {:.2}%)",
//!          report.speedups(), 100.0 * report.bias_magnitude);
//! # Ok::<(), biaslab_core::harness::MeasureError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod bias;
pub mod causal;
pub mod faults;
pub mod harness;
mod jsonl;
pub mod orchestrator;
pub mod randomize;
pub mod report;
pub mod serve;
pub mod setup;
pub mod stats;
pub(crate) mod sync;
pub mod telemetry;
pub mod trace_report;

pub use bias::BiasReport;
pub use harness::{CachePolicy, Harness, MeasureError, Measurement};
pub use orchestrator::{MeasureKey, Orchestrator, OrchestratorStats};
pub use setup::{ExperimentSetup, LinkOrder};
