//! Reports over exported telemetry traces — the `biaslab trace` backend.
//!
//! A trace file (written by [`crate::telemetry::export`]) is a complete
//! record of one session's measurement procedure. This module renders it
//! for humans: a summary (top-N slowest measurements, cache
//! effectiveness per experiment, worker utilization, phase breakdown,
//! final metrics) and a folded flame view of any attached profiles.
//! Reports are pure functions of the trace text, so their output is
//! deterministic given a trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::telemetry::{
    CacheEvent, CacheOutcome, FaultEvent, FaultKind, SpanEvent, TraceEvent, TraceLine,
};

/// How many slowest measurements the summary lists.
const TOP_N: usize = 10;

/// A parsed trace, ready for reporting.
#[derive(Debug, Default)]
pub struct Trace {
    /// Session label from the `trace_start` record.
    pub label: String,
    /// Trace duration at export, microseconds.
    pub clock_us: u64,
    /// Every span, in file order.
    pub spans: Vec<SpanEvent>,
    /// Every cache event, in file order.
    pub cache: Vec<CacheEvent>,
    /// Every fault event (injections and recoveries), in file order.
    pub faults: Vec<FaultEvent>,
    /// Per-function `(cycles, instructions)` merged across every attached
    /// profile.
    pub profile: BTreeMap<String, (u64, u64)>,
    /// The final metrics snapshot.
    pub metrics: Vec<(String, u64)>,
    /// Lines that did not parse (foreign versions, corruption).
    pub skipped: usize,
}

/// Parses a trace file's text. Unparsable lines are counted, not fatal:
/// a report over a partially-foreign file says so instead of refusing.
#[must_use]
pub fn parse(text: &str) -> Trace {
    let mut t = Trace::default();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match crate::telemetry::parse_line(line) {
            Some(TraceLine::Start { label, clock_us }) => {
                t.label = label;
                t.clock_us = clock_us;
            }
            Some(TraceLine::Event(TraceEvent::Span(s))) => t.spans.push(s),
            Some(TraceLine::Event(TraceEvent::Cache(c))) => t.cache.push(c),
            Some(TraceLine::Event(TraceEvent::Fault(f))) => t.faults.push(f),
            Some(TraceLine::Event(TraceEvent::Profile(p))) => {
                for (name, cycles, instructions) in p.entries {
                    let slot = t.profile.entry(name).or_insert((0, 0));
                    slot.0 += cycles;
                    slot.1 += instructions;
                }
            }
            Some(TraceLine::Metrics(m)) => t.metrics = m,
            None => t.skipped += 1,
        }
    }
    t
}

fn scope_label(scope: &str) -> &str {
    if scope.is_empty() {
        "(none)"
    } else {
        scope
    }
}

/// Renders the summary report: header, top-N slowest measurements, cache
/// effectiveness per experiment, worker utilization, phase breakdown and
/// the final metrics.
#[must_use]
pub fn summary(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} ({} spans, {} cache events, {:.3}s)",
        if trace.label.is_empty() {
            "(unlabeled)"
        } else {
            &trace.label
        },
        trace.spans.len(),
        trace.cache.len(),
        trace.clock_us as f64 / 1e6,
    );
    if trace.skipped > 0 {
        let _ = writeln!(out, "warning: {} unparsable line(s) skipped", trace.skipped);
    }

    // --- Top-N slowest measurements -------------------------------------
    let mut measures: Vec<&SpanEvent> =
        trace.spans.iter().filter(|s| s.name == "measure").collect();
    measures.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.id.cmp(&b.id)));
    let _ = writeln!(
        out,
        "\nslowest measurements (top {}):",
        TOP_N.min(measures.len())
    );
    let _ = writeln!(
        out,
        "  {:>9}  {:<12} {:<10} {:>6}  {:<6} {:>16}",
        "dur", "bench", "scope", "worker", "cache", "key"
    );
    for s in measures.iter().take(TOP_N) {
        let _ = writeln!(
            out,
            "  {:>7}us  {:<12} {:<10} {:>6}  {:<6} {:>016x}",
            s.dur_us,
            s.bench,
            scope_label(&s.scope),
            s.worker,
            s.outcome.map_or("", CacheOutcome::as_str),
            s.key,
        );
    }

    // --- Cache effectiveness per experiment ------------------------------
    let mut per_scope: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for c in &trace.cache {
        let slot = per_scope
            .entry(scope_label(&c.scope).to_owned())
            .or_default();
        match c.outcome {
            CacheOutcome::Hit => slot.0 += 1,
            CacheOutcome::Miss => slot.1 += 1,
            CacheOutcome::Evict => slot.2 += 1,
        }
    }
    let _ = writeln!(out, "\ncache effectiveness by experiment:");
    let _ = writeln!(
        out,
        "  {:<12} {:>8} {:>8} {:>8} {:>9}",
        "experiment", "hits", "misses", "evicted", "hit rate"
    );
    for (scope, (hits, misses, evicted)) in &per_scope {
        let requests = hits + misses;
        let rate = if requests == 0 {
            0.0
        } else {
            100.0 * *hits as f64 / requests as f64
        };
        let _ = writeln!(
            out,
            "  {:<12} {:>8} {:>8} {:>8} {:>8.1}%",
            scope, hits, misses, evicted, rate
        );
    }

    // --- Worker utilization ----------------------------------------------
    let mut per_worker: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for s in &measures {
        let slot = per_worker.entry(s.worker).or_default();
        slot.0 += 1;
        slot.1 += s.dur_us;
    }
    let total_busy: u64 = per_worker.values().map(|(_, us)| us).sum();
    let _ = writeln!(out, "\nworker utilization (measurement spans):");
    let _ = writeln!(
        out,
        "  {:>6} {:>9} {:>11} {:>7}",
        "worker", "measures", "busy", "share"
    );
    for (worker, (count, busy)) in &per_worker {
        let share = if total_busy == 0 {
            0.0
        } else {
            100.0 * *busy as f64 / total_busy as f64
        };
        let _ = writeln!(
            out,
            "  {:>6} {:>9} {:>9}us {:>6.1}%",
            worker, count, busy, share
        );
    }

    // --- Phase breakdown ---------------------------------------------------
    let mut per_phase: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in &trace.spans {
        if matches!(s.name, "compile" | "link" | "load" | "run" | "stat") {
            let slot = per_phase.entry(s.name).or_default();
            slot.0 += 1;
            slot.1 += s.dur_us;
        }
    }
    if !per_phase.is_empty() {
        let _ = writeln!(out, "\nphase breakdown:");
        let _ = writeln!(out, "  {:<8} {:>7} {:>11}", "phase", "spans", "total");
        for phase in ["compile", "link", "load", "run", "stat"] {
            if let Some((count, us)) = per_phase.get(phase) {
                let _ = writeln!(out, "  {:<8} {:>7} {:>9}us", phase, count, us);
            }
        }
    }

    // --- Failure summary ---------------------------------------------------
    if !trace.faults.is_empty() {
        let mut per_site: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        let mut injected = 0u64;
        let mut recovered = 0u64;
        for f in &trace.faults {
            let slot = per_site.entry(f.site.as_str()).or_default();
            match f.kind {
                FaultKind::Injected => {
                    slot.0 += 1;
                    injected += 1;
                }
                FaultKind::Recovered => {
                    slot.1 += 1;
                    recovered += 1;
                }
            }
        }
        let _ = writeln!(
            out,
            "\nfailure summary ({injected} injected, {recovered} recovered):"
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>9} {:>10}",
            "site/mechanism", "injected", "recovered"
        );
        for (site, (inj, rec)) in &per_site {
            let _ = writeln!(out, "  {:<24} {:>9} {:>10}", site, inj, rec);
        }
    }

    // --- Metrics -----------------------------------------------------------
    if !trace.metrics.is_empty() {
        let _ = writeln!(out, "\nfinal metrics:");
        for (name, value) in &trace.metrics {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    out
}

/// Renders the merged attached profiles in folded-stacks form (`function
/// cycles`, hottest first) — pipe into flamegraph tooling or read
/// directly. Empty when the trace carried no profiles (run with
/// `--trace-profile` to attach them).
#[must_use]
pub fn flame(trace: &Trace) -> String {
    let mut entries: Vec<(&str, u64)> = trace
        .profile
        .iter()
        .map(|(name, (cycles, _))| (name.as_str(), *cycles))
        .collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut out = String::new();
    for (name, cycles) in entries {
        let _ = writeln!(out, "{name} {cycles}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{ProfileEvent, TRACE_VERSION};

    fn sample_trace() -> String {
        let mut lines = vec![format!(
            "{{\"v\":{TRACE_VERSION},\"ev\":\"trace_start\",\"label\":\"test\",\"clock_us\":5000}}"
        )];
        let span = |id: u64, name: &'static str, scope: &str, worker: u64, dur: u64, outcome| {
            TraceEvent::Span(SpanEvent {
                id,
                parent: 0,
                name,
                scope: scope.to_owned(),
                bench: "hmmer".to_owned(),
                worker,
                key: id * 31,
                outcome,
                start_us: 0,
                dur_us: dur,
            })
            .to_line()
        };
        lines.push(span(1, "measure", "fig1", 1, 900, Some(CacheOutcome::Miss)));
        lines.push(span(2, "measure", "fig1", 2, 100, Some(CacheOutcome::Hit)));
        lines.push(span(3, "measure", "fig2", 1, 500, Some(CacheOutcome::Miss)));
        lines.push(span(4, "run", "fig1", 1, 800, None));
        let cache = |outcome, scope: &str| {
            TraceEvent::Cache(CacheEvent {
                outcome,
                key: 7,
                bench: "hmmer".to_owned(),
                scope: scope.to_owned(),
                worker: 0,
                t_us: 1,
            })
            .to_line()
        };
        lines.push(cache(CacheOutcome::Miss, "fig1"));
        lines.push(cache(CacheOutcome::Hit, "fig1"));
        lines.push(cache(CacheOutcome::Hit, "fig1"));
        lines.push(cache(CacheOutcome::Miss, "fig2"));
        lines.push(cache(CacheOutcome::Evict, "fig2"));
        lines.push(
            TraceEvent::Profile(ProfileEvent {
                span: 4,
                bench: "hmmer".to_owned(),
                scope: "fig1".to_owned(),
                entries: vec![("main".to_owned(), 60, 6), ("kernel".to_owned(), 40, 4)],
            })
            .to_line(),
        );
        lines.push(
            TraceEvent::Profile(ProfileEvent {
                span: 4,
                bench: "hmmer".to_owned(),
                scope: "fig1".to_owned(),
                entries: vec![("kernel".to_owned(), 100, 10)],
            })
            .to_line(),
        );
        let fault = |kind, site: &str| {
            TraceEvent::Fault(FaultEvent {
                kind,
                site: site.to_owned(),
                scope: "fig1".to_owned(),
                worker: 1,
                t_us: 2,
            })
            .to_line()
        };
        lines.push(fault(FaultKind::Injected, "save.io"));
        lines.push(fault(FaultKind::Injected, "save.io"));
        lines.push(fault(FaultKind::Recovered, "io.retry"));
        lines.push(format!(
            "{{\"v\":{TRACE_VERSION},\"ev\":\"metrics\",\"counters\":{{\"orch.hits\":2,\"orch.misses\":2}}}}"
        ));
        lines.join("\n")
    }

    #[test]
    fn summary_reports_every_section() {
        let trace = parse(&sample_trace());
        assert_eq!(trace.skipped, 0);
        let text = summary(&trace);
        assert!(text.contains("trace: test (4 spans, 5 cache events"));
        assert!(text.contains("slowest measurements (top 3)"));
        // Slowest first: the 900us miss on worker 1.
        let slow_at = text.find("900us").expect("slowest listed");
        let next_at = text.find("500us").expect("second listed");
        assert!(slow_at < next_at, "sorted by duration descending");
        assert!(text.contains("cache effectiveness by experiment"));
        assert!(text.contains("fig1"), "per-experiment rows present");
        assert!(text.contains("66.7%"), "fig1 hit rate = 2/3");
        assert!(text.contains("worker utilization"));
        assert!(text.contains("phase breakdown"));
        assert!(text.contains("failure summary (2 injected, 1 recovered)"));
        assert!(text.contains("save.io"));
        assert!(text.contains("io.retry"));
        assert!(text.contains("orch.hits = 2"));
    }

    #[test]
    fn fault_free_traces_render_no_failure_summary() {
        let text = format!(
            "{{\"v\":{TRACE_VERSION},\"ev\":\"trace_start\",\"label\":\"t\",\"clock_us\":1}}"
        );
        let trace = parse(&text);
        assert!(trace.faults.is_empty());
        assert!(!summary(&trace).contains("failure summary"));
    }

    #[test]
    fn flame_merges_profiles_hottest_first() {
        let trace = parse(&sample_trace());
        assert_eq!(flame(&trace), "kernel 140\nmain 60\n");
    }

    #[test]
    fn unparsable_lines_are_counted_not_fatal() {
        let text = format!("{}\nnot json\n{{\"v\":99}}\n", sample_trace());
        let trace = parse(&text);
        assert_eq!(trace.skipped, 2);
        assert!(summary(&trace).contains("2 unparsable line(s) skipped"));
    }
}
