//! Experimental setups and the factors that (should not, but do) matter.
//!
//! An [`ExperimentSetup`] captures everything about how a measurement is
//! taken: the machine model, the optimization level, and — the paper's
//! subjects — the **link order** and the **UNIX environment**, plus two
//! loader/linker interventions used by the causal-analysis experiments.

use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How the benchmark's object files are ordered at link time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkOrder {
    /// Declaration order (what a Makefile author happened to write).
    Default,
    /// Reverse declaration order.
    Reversed,
    /// Objects sorted by symbol name (what `ls` would give you).
    Alphabetical,
    /// A seeded random permutation.
    Random(u64),
}

impl LinkOrder {
    /// Resolves the order to a permutation of `0..names.len()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use biaslab_core::setup::LinkOrder;
    ///
    /// let names = ["zeta", "alpha", "mid"];
    /// assert_eq!(LinkOrder::Default.resolve(&names), vec![0, 1, 2]);
    /// assert_eq!(LinkOrder::Reversed.resolve(&names), vec![2, 1, 0]);
    /// assert_eq!(LinkOrder::Alphabetical.resolve(&names), vec![1, 2, 0]);
    /// ```
    #[must_use]
    pub fn resolve(&self, names: &[&str]) -> Vec<usize> {
        let n = names.len();
        match self {
            LinkOrder::Default => (0..n).collect(),
            LinkOrder::Reversed => (0..n).rev().collect(),
            LinkOrder::Alphabetical => {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by_key(|&i| names[i]);
                idx
            }
            LinkOrder::Random(seed) => {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(&mut StdRng::seed_from_u64(*seed));
                idx
            }
        }
    }
}

/// A complete experimental setup.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// The machine model to run on.
    pub machine: MachineConfig,
    /// The optimization level under measurement.
    pub opt: OptLevel,
    /// Link order of the benchmark's objects.
    pub link_order: LinkOrder,
    /// The process environment (its *size* is the paper's factor).
    pub env: Environment,
    /// Extra loader-level stack shift in bytes (causal-analysis
    /// intervention; 0 in ordinary experiments).
    pub stack_shift: u32,
    /// Extra linker-level text-base offset in bytes (causal-analysis
    /// intervention; 0 in ordinary experiments).
    pub text_offset: u32,
}

impl ExperimentSetup {
    /// The setup a careless experimenter gets by default: Core 2, default
    /// link order, empty environment.
    #[must_use]
    pub fn default_on(machine: MachineConfig, opt: OptLevel) -> ExperimentSetup {
        ExperimentSetup {
            machine,
            opt,
            link_order: LinkOrder::Default,
            env: Environment::new(),
            stack_shift: 0,
            text_offset: 0,
        }
    }

    /// Returns this setup with a different optimization level — the
    /// comparison the O2-vs-O3 experiments make.
    #[must_use]
    pub fn with_opt(&self, opt: OptLevel) -> ExperimentSetup {
        ExperimentSetup {
            opt,
            ..self.clone()
        }
    }

    /// Returns this setup with the environment replaced.
    #[must_use]
    pub fn with_env(&self, env: Environment) -> ExperimentSetup {
        ExperimentSetup {
            env,
            ..self.clone()
        }
    }

    /// Returns this setup with the link order replaced.
    #[must_use]
    pub fn with_link_order(&self, link_order: LinkOrder) -> ExperimentSetup {
        ExperimentSetup {
            link_order,
            ..self.clone()
        }
    }

    /// A short human-readable summary, e.g. `core2/O3/env=612B/order=rand(7)`.
    #[must_use]
    pub fn summary(&self) -> String {
        let order = match self.link_order {
            LinkOrder::Default => "default".to_owned(),
            LinkOrder::Reversed => "reversed".to_owned(),
            LinkOrder::Alphabetical => "alpha".to_owned(),
            LinkOrder::Random(s) => format!("rand({s})"),
        };
        format!(
            "{}/{}/env={}B/order={}",
            self.machine.name,
            self.opt,
            self.env.stack_bytes(),
            order
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_are_permutations() {
        let names = ["f", "a", "q", "b", "z"];
        for order in [
            LinkOrder::Default,
            LinkOrder::Reversed,
            LinkOrder::Alphabetical,
            LinkOrder::Random(3),
            LinkOrder::Random(99),
        ] {
            let mut p = order.resolve(&names);
            p.sort_unstable();
            assert_eq!(p, vec![0, 1, 2, 3, 4], "{order:?}");
        }
    }

    #[test]
    fn random_orders_differ_by_seed_and_repeat_by_seed() {
        let names = ["a", "b", "c", "d", "e", "f", "g"];
        assert_eq!(
            LinkOrder::Random(5).resolve(&names),
            LinkOrder::Random(5).resolve(&names)
        );
        let distinct = (0..20)
            .map(|s| LinkOrder::Random(s).resolve(&names))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 10, "most seeds give distinct orders");
    }

    #[test]
    fn summary_mentions_the_factors() {
        let s = ExperimentSetup::default_on(MachineConfig::core2(), OptLevel::O3)
            .with_env(Environment::of_total_size(612))
            .with_link_order(LinkOrder::Random(7));
        let text = s.summary();
        assert!(text.contains("core2"));
        assert!(text.contains("O3"));
        assert!(text.contains("612"));
        assert!(text.contains("rand(7)"));
    }
}
