//! The full bias audit: one call that answers "can I trust a speedup
//! measurement of this benchmark?" across machines and setup factors.
//!
//! This is the packaged form of the paper's recommendation — before
//! reporting an effect, measure how much the effect moves under factors
//! that should not matter.

use std::fmt;

use biaslab_toolchain::load::Environment;
use biaslab_toolchain::OptLevel;
use biaslab_uarch::MachineConfig;
use biaslab_workloads::InputSize;

use crate::bias::{sweep_factor, BiasReport};
use crate::harness::{Harness, MeasureError};
use crate::report::{sparkline, Table};
use crate::setup::{ExperimentSetup, LinkOrder};

/// Configuration of a full audit.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Machines to audit on.
    pub machines: Vec<MachineConfig>,
    /// The baseline optimization level.
    pub base_opt: OptLevel,
    /// The optimization level under test.
    pub test_opt: OptLevel,
    /// Environment sizes to sweep (bytes). Defaults avoid multiples of the
    /// cache-line size so every alignment phase is visited.
    pub env_sizes: Vec<u32>,
    /// Link orders to sweep.
    pub link_orders: Vec<LinkOrder>,
    /// Input size for every measurement.
    pub size: InputSize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            machines: MachineConfig::all(),
            base_opt: OptLevel::O2,
            test_opt: OptLevel::O3,
            env_sizes: (0..16).map(|i| i * 176).collect(),
            link_orders: [
                LinkOrder::Default,
                LinkOrder::Reversed,
                LinkOrder::Alphabetical,
            ]
            .into_iter()
            .chain((0..9).map(LinkOrder::Random))
            .collect(),
            size: InputSize::Test,
        }
    }
}

/// One (machine, factor) row of an audit.
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// Machine name.
    pub machine: String,
    /// The underlying factor report.
    pub report: BiasReport,
}

/// The outcome of a full audit.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Benchmark name.
    pub benchmark: String,
    /// The compared levels, e.g. `("O2", "O3")`.
    pub levels: (OptLevel, OptLevel),
    /// One row per machine × factor.
    pub rows: Vec<AuditRow>,
}

impl AuditReport {
    /// The largest bias magnitude any factor showed on any machine.
    #[must_use]
    pub fn worst_bias(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.report.bias_magnitude)
            .fold(0.0, f64::max)
    }

    /// Whether any factor on any machine flips the conclusion.
    #[must_use]
    pub fn any_flip(&self) -> bool {
        self.rows.iter().any(|r| r.report.conclusion_flips)
    }

    /// The audit's one-line verdict.
    #[must_use]
    pub fn verdict(&self) -> String {
        if self.any_flip() {
            format!(
                "UNSAFE: an innocuous setup factor flips the {}-vs-{} conclusion",
                self.levels.1, self.levels.0
            )
        } else {
            format!(
                "bias up to {:.2}% without flipping; report it alongside the effect",
                100.0 * self.worst_bias()
            )
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bias audit: {} ({} vs {})\n",
            self.benchmark, self.levels.1, self.levels.0
        )?;
        let mut table = Table::new(vec![
            "machine", "factor", "min", "max", "bias%", "flips", "shape",
        ]);
        for row in &self.rows {
            table.row(vec![
                row.machine.clone(),
                row.report.factor.clone(),
                format!("{:.4}", row.report.violin.min()),
                format!("{:.4}", row.report.violin.max()),
                format!("{:.3}", 100.0 * row.report.bias_magnitude),
                format!("{}", row.report.conclusion_flips),
                sparkline(&row.report.speedups()),
            ]);
        }
        writeln!(f, "{table}")?;
        writeln!(f, "verdict: {}", self.verdict())
    }
}

/// Runs the full audit for one benchmark.
///
/// # Errors
///
/// Propagates the first [`MeasureError`].
pub fn full_audit(harness: &Harness, config: &AuditConfig) -> Result<AuditReport, MeasureError> {
    let mut rows = Vec::new();
    for machine in &config.machines {
        let base = ExperimentSetup::default_on(machine.clone(), config.base_opt);

        let env_setups: Vec<_> = config
            .env_sizes
            .iter()
            .map(|&bytes| {
                let env = if bytes < 23 {
                    Environment::new()
                } else {
                    Environment::of_total_size(bytes)
                };
                base.with_env(env)
            })
            .collect();
        let env_report = sweep_factor(
            harness,
            "environment size",
            &env_setups,
            config.base_opt,
            config.test_opt,
            config.size,
        )?;
        rows.push(AuditRow {
            machine: machine.name.clone(),
            report: env_report,
        });

        let order_setups: Vec<_> = config
            .link_orders
            .iter()
            .map(|&o| base.with_link_order(o))
            .collect();
        let link_report = sweep_factor(
            harness,
            "link order",
            &order_setups,
            config.base_opt,
            config.test_opt,
            config.size,
        )?;
        rows.push(AuditRow {
            machine: machine.name.clone(),
            report: link_report,
        });
    }
    Ok(AuditReport {
        benchmark: harness.benchmark().name().to_owned(),
        levels: (config.base_opt, config.test_opt),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use biaslab_workloads::benchmark_by_name;

    use super::*;

    fn small_config() -> AuditConfig {
        AuditConfig {
            machines: vec![MachineConfig::o3cpu()],
            env_sizes: vec![0, 176, 352, 528],
            link_orders: vec![
                LinkOrder::Default,
                LinkOrder::Reversed,
                LinkOrder::Random(1),
            ],
            ..AuditConfig::default()
        }
    }

    #[test]
    fn audit_produces_two_rows_per_machine() {
        let h = Harness::new(benchmark_by_name("hmmer").expect("known"));
        let report = full_audit(&h, &small_config()).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.benchmark, "hmmer");
        assert!(report.worst_bias() >= 0.0);
        let text = report.to_string();
        assert!(text.contains("environment size"));
        assert!(text.contains("link order"));
        assert!(text.contains("verdict:"));
    }

    #[test]
    fn verdict_flags_flips() {
        use crate::bias::SpeedupObservation;
        use crate::stats::ViolinSummary;
        let mk = |speedups: &[f64]| BiasReport {
            factor: "t".into(),
            observations: speedups
                .iter()
                .map(|&s| SpeedupObservation {
                    setup: "s".into(),
                    base_cycles: 100,
                    test_cycles: (100.0 / s) as u64,
                    speedup: s,
                })
                .collect(),
            violin: ViolinSummary::of(speedups),
            bias_magnitude: 0.02,
            conclusion_flips: speedups.iter().any(|&s| s < 1.0)
                && speedups.iter().any(|&s| s > 1.0),
        };
        let flipping = AuditReport {
            benchmark: "x".into(),
            levels: (OptLevel::O2, OptLevel::O3),
            rows: vec![AuditRow {
                machine: "m".into(),
                report: mk(&[0.99, 1.01]),
            }],
        };
        assert!(flipping.any_flip());
        assert!(flipping.verdict().contains("UNSAFE"));
        let stable = AuditReport {
            benchmark: "x".into(),
            levels: (OptLevel::O2, OptLevel::O3),
            rows: vec![AuditRow {
                machine: "m".into(),
                report: mk(&[1.01, 1.02]),
            }],
        };
        assert!(!stable.any_flip());
        assert!(stable.verdict().contains("report it alongside"));
    }
}
